pub const DOC: &str = "integration test host crate";
