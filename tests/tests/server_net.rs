//! Network-level integration: many concurrent client sessions against one
//! server over real TCP sockets.
//!
//! These are the wire mirrors of the in-process `SharedStore` tests: the
//! paper's instant-visibility semantics and the store's reader-parallel
//! concurrency must survive serialization, the bounded queue, and the
//! worker pool without losing or corrupting a single response.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ccdb_core::domain::Domain;
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::shared::SharedStore;
use ccdb_core::Value;
use ccdb_server::{Client, Server, ServerConfig};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![AttrDef::new("X", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["X".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Impl".into(),
        inheritor_in: vec!["AllOf_If".into()],
        attributes: vec![AttrDef::new("Local", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c
}

fn start(workers: usize, queue_depth: usize) -> Server {
    Server::start(
        ServerConfig {
            workers,
            queue_depth,
            ..ServerConfig::default()
        },
        SharedStore::new(catalog()).unwrap(),
    )
    .expect("server binds")
}

/// 64 concurrent sessions, each creating its own object with a unique
/// value and reading it back repeatedly: zero lost and zero corrupted
/// responses (the E12 acceptance criterion, as a test).
#[test]
fn sixty_four_sessions_zero_lost_or_corrupted_responses() {
    const SESSIONS: u64 = 64;
    const READS_PER_SESSION: u64 = 20;

    // Queue sized below the session count so admission control is
    // exercised; clients retry on Overloaded (that is the contract).
    let server = start(4, 32);
    let addr = server.local_addr();

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            thread::spawn(move || -> Result<(), String> {
                let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
                c.set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(|e| e.to_string())?;
                let marker = 1_000 + i;
                let retry = |c: &mut Client,
                             verb_fn: &mut dyn FnMut(
                    &mut Client,
                )
                    -> Result<Value, ccdb_server::ClientError>|
                 -> Result<Value, String> {
                    loop {
                        match verb_fn(c) {
                            Ok(v) => return Ok(v),
                            Err(e) if e.is_overloaded() => {
                                thread::sleep(Duration::from_millis(2));
                            }
                            Err(e) => return Err(e.to_string()),
                        }
                    }
                };
                // create can also be rejected at admission under load.
                let obj = loop {
                    match c.create("If", &[("X", Value::Int(marker as i64))]) {
                        Ok(o) => break o,
                        Err(e) if e.is_overloaded() => thread::sleep(Duration::from_millis(2)),
                        Err(e) => return Err(e.to_string()),
                    }
                };
                for _ in 0..READS_PER_SESSION {
                    let got = retry(&mut c, &mut |c| c.attr(obj, "X"))?;
                    if got != Value::Int(marker as i64) {
                        return Err(format!(
                            "session {i}: read {got:?}, expected Int({marker}) — corrupted response"
                        ));
                    }
                }
                Ok(())
            })
        })
        .collect();

    let mut failures = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => failures.push(msg),
            Err(_) => failures.push(format!("session {i}: client thread panicked")),
        }
    }
    assert!(failures.is_empty(), "{failures:?}");
    server.shutdown();
}

/// Wire mirror of the in-process staleness test: one writer bumps the
/// transmitter while reader sessions hammer the inheritor's resolved
/// attribute. Every read must see a value the writer actually wrote,
/// and the final value must be visible to everyone.
#[test]
fn transmitter_update_is_visible_across_sessions_under_contention() {
    const READERS: usize = 8;
    const WRITES: i64 = 50;

    let server = start(4, 64);
    let addr = server.local_addr();

    let mut setup = Client::connect(addr).unwrap();
    setup
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let interface = setup.create("If", &[("X", Value::Int(0))]).unwrap();
    let imp = setup.create("Impl", &[]).unwrap();
    setup.bind("AllOf_If", interface, imp).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || -> Result<u64, String> {
                let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
                c.set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(|e| e.to_string())?;
                let mut reads = 0u64;
                let mut last_seen = -1i64;
                while !stop.load(Ordering::Relaxed) {
                    match c.attr(imp, "X") {
                        Ok(Value::Int(v)) => {
                            // The writer only increments: values may repeat
                            // but must never go backwards on one session's
                            // lock-step connection.
                            if v < last_seen {
                                return Err(format!("read went backwards: {v} after {last_seen}"));
                            }
                            if !(0..=WRITES).contains(&v) {
                                return Err(format!("impossible value {v}"));
                            }
                            last_seen = v;
                            reads += 1;
                        }
                        Ok(other) => return Err(format!("non-int read: {other:?}")),
                        Err(e) if e.is_overloaded() => {
                            thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => return Err(e.to_string()),
                    }
                }
                Ok(reads)
            })
        })
        .collect();

    for v in 1..=WRITES {
        loop {
            match setup.set_attr(interface, "X", Value::Int(v)) {
                Ok(()) => break,
                Err(e) if e.is_overloaded() => thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("writer failed: {e}"),
            }
        }
    }
    stop.store(true, Ordering::Relaxed);

    let mut total_reads = 0;
    for r in readers {
        total_reads += r.join().unwrap().expect("reader session clean");
    }
    assert!(total_reads > 0, "readers never completed a read");

    // The last write is visible to a brand-new session.
    let mut fresh = Client::connect(addr).unwrap();
    fresh
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(fresh.attr(imp, "X").unwrap(), Value::Int(WRITES));
    server.shutdown();
}

/// The full-registry Prometheus scrape is reachable over the protocol
/// and includes the server's own counters.
#[test]
fn metrics_scrape_over_the_wire_reports_server_counters() {
    let server = start(2, 16);
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.ping().unwrap();
    let obj = c.create("If", &[("X", Value::Int(7))]).unwrap();
    let _ = c.attr(obj, "X").unwrap();

    let scrape = c.metrics().unwrap();
    for metric in [
        "ccdb_server_requests_total",
        "ccdb_server_connections_total",
        "ccdb_server_sessions_active",
        "ccdb_server_request_latency_ns",
    ] {
        assert!(
            scrape.contains(metric),
            "scrape missing {metric}:\n{scrape}"
        );
    }
    // Store-level metrics ride along in the same registry scrape.
    assert!(
        scrape.contains("ccdb_server_requests_attr_total"),
        "per-verb counter missing:\n{scrape}"
    );
    server.shutdown();
}
