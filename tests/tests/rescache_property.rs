//! Property test for the resolution value cache: a cached store and a
//! cache-disabled shadow store receive the same random operation stream,
//! and after every operation every resolvable attribute must read the same
//! through both. This is the §4.1 instant-visibility guarantee — the memo
//! may never serve a stale value past a write, a (re)bind, an unbind, or a
//! delete/undelete.

use ccdb_core::domain::Domain;
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use proptest::prelude::*;

/// Two-hop abstraction chain: `If` transmits X/Y to `Mid`, which re-exports
/// both to `Leaf`.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![
            AttrDef::new("X", Domain::Int),
            AttrDef::new("Y", Domain::Int),
        ],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["X".into(), "Y".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Mid".into(),
        inheritor_in: vec!["AllOf_If".into()],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_Mid".into(),
        transmitter_type: "Mid".into(),
        inheritor_type: None,
        inheriting: vec!["X".into(), "Y".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Leaf".into(),
        inheritor_in: vec!["AllOf_Mid".into()],
        ..Default::default()
    })
    .unwrap();
    c
}

struct Population {
    ifs: Vec<Surrogate>,
    mids: Vec<Surrogate>,
    leafs: Vec<Surrogate>,
}

fn populate(st: &mut ObjectStore) -> Population {
    let ifs: Vec<Surrogate> = (0..2)
        .map(|k| {
            st.create_object("If", vec![("X", Value::Int(k)), ("Y", Value::Int(k + 10))])
                .unwrap()
        })
        .collect();
    let mids: Vec<Surrogate> = (0..2)
        .map(|_| st.create_object("Mid", vec![]).unwrap())
        .collect();
    let leafs: Vec<Surrogate> = (0..2)
        .map(|_| st.create_object("Leaf", vec![]).unwrap())
        .collect();
    for k in 0..2 {
        st.bind("AllOf_If", ifs[k], mids[k], vec![]).unwrap();
        st.bind("AllOf_Mid", mids[k], leafs[k], vec![]).unwrap();
    }
    Population { ifs, mids, leafs }
}

/// Apply one op to a store. Decisions (e.g. bind vs unbind) depend only on
/// store state, which is identical in both stores by induction.
fn apply(st: &mut ObjectStore, p: &Population, op: usize, t: usize, v: i64) {
    match op {
        0 => st.set_attr(p.ifs[t], "X", Value::Int(v)).unwrap(),
        1 => st.set_attr(p.ifs[t], "Y", Value::Int(v)).unwrap(),
        2 => {
            // Toggle the mid-level binding (invalidate the whole sub-chain).
            match st.binding_of(p.mids[t], "AllOf_If") {
                Some(rel) => st.unbind(rel).unwrap(),
                None => {
                    st.bind("AllOf_If", p.ifs[t], p.mids[t], vec![]).unwrap();
                }
            }
        }
        3 => {
            // Toggle the leaf-level binding.
            match st.binding_of(p.leafs[t], "AllOf_Mid") {
                Some(rel) => st.unbind(rel).unwrap(),
                None => {
                    st.bind("AllOf_Mid", p.mids[t], p.leafs[t], vec![]).unwrap();
                }
            }
        }
        _ => {
            // Recorded delete + undelete of a leaf: the restored binding
            // must resolve the *current* transmitter values afterwards.
            let rec = st.delete_recorded(p.leafs[t]).unwrap();
            st.undelete(rec).unwrap();
        }
    }
}

/// Read every attribute of every object, as comparable values (errors are
/// part of the observable behavior and must match too).
fn observe(st: &ObjectStore, p: &Population) -> Vec<Result<Value, String>> {
    let mut out = Vec::new();
    for s in p.ifs.iter().chain(&p.mids).chain(&p.leafs) {
        for name in ["X", "Y"] {
            out.push(st.attr(*s, name).map_err(|e| e.to_string()));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_store_always_agrees_with_uncached(
        ops in proptest::collection::vec((0usize..5, 0usize..2, -100i64..100), 1..50)
    ) {
        // Shard count is a pure performance knob: the same stream must
        // agree with the cache-disabled shadow at one shard (the old
        // single-lock shape), a few, and the default-scale sixteen.
        for shards in [1usize, 4, 16] {
            let mut cached =
                ObjectStore::with_resolution_cache_shards(catalog(), shards).unwrap();
            let mut shadow = ObjectStore::new(catalog()).unwrap();
            shadow.set_resolution_cache(false);
            prop_assert!(cached.resolution_cache_enabled());
            prop_assert_eq!(cached.resolution_cache_shards(), shards);

            // Deterministic surrogate generation keeps the two populations
            // aligned: the k-th create in each store yields the same
            // surrogate.
            let p_cached = populate(&mut cached);
            let p_shadow = populate(&mut shadow);
            prop_assert_eq!(&p_cached.ifs, &p_shadow.ifs);
            prop_assert_eq!(&p_cached.leafs, &p_shadow.leafs);

            for (op, t, v) in &ops {
                apply(&mut cached, &p_cached, *op, *t, *v);
                apply(&mut shadow, &p_shadow, *op, *t, *v);
                prop_assert_eq!(
                    observe(&cached, &p_cached),
                    observe(&shadow, &p_shadow),
                    "divergence after op {} on target {} with {} shards", op, t, shards
                );
            }
            prop_assert!(cached.verify_integrity().is_empty());
            // The shadow never cached anything; the cached store's stats
            // add up.
            prop_assert_eq!(shadow.stats().rescache_hits, 0);
            prop_assert_eq!(shadow.stats().rescache_misses, 0);
        }
    }
}
