//! "Versioned versions" (paper §6): by generalizing interfaces into an
//! abstraction hierarchy, interfaces themselves get versions whose versions
//! are the implementations — two version dimensions organized by the
//! inheritance relationship.

use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use ccdb_lang::paper::chip_catalog;
use ccdb_version::{VersionId, VersionManager, VersionStatus};

struct World {
    st: ObjectStore,
    vm: VersionManager,
    /// Interface versions (of the abstract design object "NAND").
    if_versions: Vec<(VersionId, Surrogate)>,
    /// Implementation versions per interface version.
    impl_versions: Vec<Vec<(VersionId, Surrogate)>>,
}

fn build() -> World {
    let mut st = ObjectStore::new(chip_catalog().unwrap()).unwrap();
    let mut vm = VersionManager::new();

    // The most abstract level: the pin layout, shared by all interface
    // versions (GateInterface_I).
    let pins = st.create_object("GateInterface_I", vec![]).unwrap();
    for io in ["IN", "IN", "OUT"] {
        st.create_subobject(
            pins,
            "Pins",
            vec![
                ("InOut", Value::Enum(io.into())),
                ("PinLocation", Value::Point { x: 0, y: 0 }),
            ],
        )
        .unwrap();
    }

    // Interface versions: same pins, different expansions (§4.2: "interfaces
    // of gates may possess the same pins, but their expansion may be
    // different").
    vm.create_set("NAND-interface").unwrap();
    let mut if_versions = Vec::new();
    let mut prev: Vec<VersionId> = vec![];
    for len in [4i64, 5] {
        let iface = st
            .create_object(
                "GateInterface",
                vec![("Length", Value::Int(len)), ("Width", Value::Int(2))],
            )
            .unwrap();
        st.bind("AllOf_GateInterface_I", pins, iface, vec![])
            .unwrap();
        let vid = vm.add_version("NAND-interface", iface, &prev).unwrap();
        prev = vec![vid];
        if_versions.push((vid, iface));
    }

    // Implementation versions per interface version: each interface version
    // has its own set of realizations — the versions of versions.
    let mut impl_versions = Vec::new();
    for (i, (_, iface)) in if_versions.iter().enumerate() {
        let set = format!("NAND-impl-of-ifv{}", i + 1);
        vm.create_set(&set).unwrap();
        let mut impls = Vec::new();
        let mut prev: Vec<VersionId> = vec![];
        for tb in [10i64, 7] {
            let imp = st
                .create_object(
                    "GateImplementation",
                    vec![
                        ("Function", Value::Matrix(vec![vec![Value::Bool(true)]])),
                        ("TimeBehavior", Value::Int(tb)),
                    ],
                )
                .unwrap();
            st.bind("AllOf_GateInterface", *iface, imp, vec![]).unwrap();
            let vid = vm.add_version(&set, imp, &prev).unwrap();
            prev = vec![vid];
            impls.push((vid, imp));
        }
        impl_versions.push(impls);
    }
    World {
        st,
        vm,
        if_versions,
        impl_versions,
    }
}

#[test]
fn two_version_dimensions_coexist() {
    let w = build();
    // 1 pin level + 2 interface versions + 2×2 implementation versions.
    assert_eq!(w.vm.set_names().len(), 3);
    assert_eq!(w.vm.set("NAND-interface").unwrap().entries().len(), 2);
    for i in 0..2 {
        let set = format!("NAND-impl-of-ifv{}", i + 1);
        assert_eq!(w.vm.set(&set).unwrap().entries().len(), 2);
    }
    // Every implementation sees its interface version's expansion AND the
    // shared abstract pins, through two inheritance hops.
    for (i, impls) in w.impl_versions.iter().enumerate() {
        let expected_len = [4i64, 5][i];
        for (_, imp) in impls {
            assert_eq!(w.st.attr(*imp, "Length").unwrap(), Value::Int(expected_len));
            assert_eq!(w.st.subclass_members(*imp, "Pins").unwrap().len(), 3);
        }
    }
}

#[test]
fn abstract_level_update_reaches_every_version() {
    let mut w = build();
    // Adding a pin at the most abstract level becomes visible in all 2
    // interface versions and all 4 implementation versions instantly.
    let pins_owner =
        w.st.surrogates()
            .find(|s| w.st.object(*s).unwrap().type_name == "GateInterface_I")
            .unwrap();
    w.st.create_subobject(
        pins_owner,
        "Pins",
        vec![
            ("InOut", Value::Enum("OUT".into())),
            ("PinLocation", Value::Point { x: 9, y: 9 }),
        ],
    )
    .unwrap();
    for (_, iface) in &w.if_versions {
        assert_eq!(w.st.subclass_members(*iface, "Pins").unwrap().len(), 4);
    }
    for impls in &w.impl_versions {
        for (_, imp) in impls {
            assert_eq!(w.st.subclass_members(*imp, "Pins").unwrap().len(), 4);
        }
    }
}

#[test]
fn statuses_progress_independently_per_dimension() {
    let mut w = build();
    let (if_v1, _) = w.if_versions[0];
    w.vm.set_status("NAND-interface", if_v1, VersionStatus::Frozen)
        .unwrap();
    // Freezing an interface version does not constrain its implementations'
    // lifecycle (managed per set).
    let (impl_v1, _) = w.impl_versions[0][0];
    w.vm.set_status("NAND-impl-of-ifv1", impl_v1, VersionStatus::Released)
        .unwrap();
    assert_eq!(
        w.vm.set("NAND-impl-of-ifv1")
            .unwrap()
            .entry(impl_v1)
            .unwrap()
            .status,
        VersionStatus::Released
    );
}
