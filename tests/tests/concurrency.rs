//! Concurrency integration tests: many designers against one Database,
//! exercising lock inheritance, deadlock recovery, and serializability of
//! the final state.

use std::sync::Arc;
use std::time::Duration;

use ccdb_core::domain::Domain;
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use ccdb_txn::lock::LockManager;
use ccdb_txn::txn::{Database, TxnError};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![
            AttrDef::new("A", Domain::Int),
            AttrDef::new("B", Domain::Int),
        ],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["A".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Impl".into(),
        inheritor_in: vec!["AllOf_If".into()],
        attributes: vec![AttrDef::new("Counter", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c
}

fn setup(n_impls: usize) -> (Database, Surrogate, Vec<Surrogate>) {
    let mut st = ObjectStore::new(catalog()).unwrap();
    let interface = st
        .create_object("If", vec![("A", Value::Int(0)), ("B", Value::Int(0))])
        .unwrap();
    let imps: Vec<Surrogate> = (0..n_impls)
        .map(|_| {
            let i = st
                .create_object("Impl", vec![("Counter", Value::Int(0))])
                .unwrap();
            st.bind("AllOf_If", interface, i, vec![]).unwrap();
            i
        })
        .collect();
    let db = Database::with_lock_manager(st, LockManager::with_timeout(Duration::from_millis(200)));
    (db, interface, imps)
}

/// Lost-update check: concurrent increments of distinct objects all land.
#[test]
fn concurrent_increments_no_lost_updates() {
    let (db, _interface, imps) = setup(4);
    let db = Arc::new(db);
    let per_thread = 100;
    let handles: Vec<_> = imps
        .iter()
        .map(|imp| {
            let db = Arc::clone(&db);
            let imp = *imp;
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let tx = db.begin("worker");
                        let cur = match db.read_attr(&tx, imp, "Counter") {
                            Ok(v) => v.as_int().unwrap(),
                            Err(_) => {
                                db.abort(tx);
                                continue;
                            }
                        };
                        match db.write_attr(&tx, imp, "Counter", Value::Int(cur + 1)) {
                            Ok(()) => {
                                db.commit(tx);
                                break;
                            }
                            Err(_) => db.abort(tx),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for imp in imps {
        assert_eq!(
            db.with_store(|s| s.attr(imp, "Counter").unwrap()),
            Value::Int(per_thread)
        );
    }
}

/// Deadlock-prone workload: two objects locked in opposite orders. All
/// transactions eventually succeed through abort-and-retry, and at least
/// one deadlock is detected (not a timeout storm).
#[test]
fn deadlocks_are_detected_and_recovered() {
    let (db, _interface, imps) = setup(2);
    let db = Arc::new(db);
    let a = imps[0];
    let b = imps[1];

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let (first, second) = if t % 2 == 0 { (a, b) } else { (b, a) };
            for n in 0..30 {
                loop {
                    let tx = db.begin(&format!("t{t}"));
                    let r1 = db.write_attr(&tx, first, "Counter", Value::Int(n));
                    if r1.is_err() {
                        db.abort(tx);
                        continue;
                    }
                    let r2 = db.write_attr(&tx, second, "Counter", Value::Int(n));
                    match r2 {
                        Ok(()) => {
                            db.commit(tx);
                            break;
                        }
                        Err(TxnError::Lock(_)) => db.abort(tx),
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Both objects ended at the final value of some thread.
    let va = db.with_store(|s| s.attr(a, "Counter").unwrap());
    let vb = db.with_store(|s| s.attr(b, "Counter").unwrap());
    assert_eq!(va, Value::Int(29));
    assert_eq!(vb, Value::Int(29));
}

/// Readers of inherited data and writers of non-permeable data proceed in
/// parallel; writers of permeable data serialize with the readers.
#[test]
fn lock_inheritance_allows_disjoint_parallelism() {
    let (db, interface, imps) = setup(1);
    let db = Arc::new(db);
    let imp = imps[0];

    let reader_db = Arc::clone(&db);
    let reader = std::thread::spawn(move || {
        let mut sum = 0i64;
        for _ in 0..200 {
            let tx = reader_db.begin("reader");
            if let Ok(v) = reader_db.read_attr(&tx, imp, "A") {
                sum += v.as_int().unwrap_or(0);
            }
            reader_db.commit(tx);
        }
        sum
    });
    // Writer on the NON-permeable attribute B never conflicts.
    let writer_db = Arc::clone(&db);
    let writer = std::thread::spawn(move || {
        let mut failures = 0;
        for n in 0..200 {
            let tx = writer_db.begin("writer");
            match writer_db.write_attr(&tx, interface, "B", Value::Int(n)) {
                Ok(()) => writer_db.commit(tx),
                Err(_) => {
                    failures += 1;
                    writer_db.abort(tx);
                }
            }
        }
        failures
    });
    reader.join().unwrap();
    let failures = writer.join().unwrap();
    assert_eq!(
        failures, 0,
        "non-permeable writes never conflict with view readers"
    );
}

/// Durable concurrent workload: several writers through a
/// PersistentDatabase; after a crash every committed write is present.
#[test]
fn persistent_database_durability_under_concurrency() {
    use ccdb_txn::PersistentDatabase;

    let dir = tempfile::tempdir().unwrap();
    let imps: Vec<Surrogate>;
    {
        let mut st = ObjectStore::new(catalog()).unwrap();
        let interface = st
            .create_object("If", vec![("A", Value::Int(0)), ("B", Value::Int(0))])
            .unwrap();
        imps = (0..4)
            .map(|_| {
                let i = st
                    .create_object("Impl", vec![("Counter", Value::Int(0))])
                    .unwrap();
                st.bind("AllOf_If", interface, i, vec![]).unwrap();
                i
            })
            .collect();
        let pdb = Arc::new(PersistentDatabase::create(dir.path(), st).unwrap());
        let handles: Vec<_> = imps
            .iter()
            .map(|imp| {
                let pdb = Arc::clone(&pdb);
                let imp = *imp;
                std::thread::spawn(move || {
                    for n in 1..=25i64 {
                        loop {
                            let tx = pdb.begin("w");
                            match pdb.write_attr(&tx, imp, "Counter", Value::Int(n)) {
                                Ok(()) => {
                                    pdb.commit(tx).unwrap();
                                    break;
                                }
                                Err(_) => pdb.abort(tx),
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Crash without checkpoint.
    }
    let pdb = PersistentDatabase::open(dir.path()).unwrap();
    for imp in imps {
        assert_eq!(
            pdb.db().with_store(|s| s.attr(imp, "Counter").unwrap()),
            Value::Int(25)
        );
    }
}
