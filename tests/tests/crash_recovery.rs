//! Crash-recovery integration: object-model state persisted through the
//! WAL-protected KV store survives crashes at various points.

use ccdb_core::persist::{load_store, object_key, save_object, save_store};
use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use ccdb_lang::compile_str;
use ccdb_storage::kv::DurableKv;

fn schema() -> ccdb_core::schema::Catalog {
    let mut c = ccdb_core::schema::Catalog::new();
    compile_str(
        r#"
        obj-type If =
            attributes:
                Length: integer;
        end If;
        inher-rel-type AllOf_If =
            transmitter: object-of-type If;
            inheritor: object;
            inheriting: Length;
        end AllOf_If;
        obj-type Impl =
            inheritor-in: AllOf_If;
            attributes:
                Cost: integer;
        end Impl;
        "#,
        &mut c,
    )
    .unwrap();
    c
}

fn populated() -> (ObjectStore, Surrogate, Surrogate) {
    let mut st = ObjectStore::new(schema()).unwrap();
    let interface = st
        .create_object("If", vec![("Length", Value::Int(5))])
        .unwrap();
    let imp = st
        .create_object("Impl", vec![("Cost", Value::Int(1))])
        .unwrap();
    st.bind("AllOf_If", interface, imp, vec![]).unwrap();
    (st, interface, imp)
}

#[test]
fn committed_incremental_updates_survive_crash() {
    let (mut st, interface, imp) = populated();
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&st, &kv).unwrap();
        // Incremental committed update.
        st.set_attr(interface, "Length", Value::Int(42)).unwrap();
        let tx = kv.begin().unwrap();
        save_object(&st, &kv, tx, interface).unwrap();
        kv.commit(tx).unwrap();
        // Crash without checkpoint.
    }
    let kv = DurableKv::open(dir.path()).unwrap();
    let reloaded = load_store(&kv).unwrap();
    assert_eq!(reloaded.attr(interface, "Length").unwrap(), Value::Int(42));
    assert_eq!(
        reloaded.attr(imp, "Length").unwrap(),
        Value::Int(42),
        "inheritance survives"
    );
}

#[test]
fn uncommitted_updates_roll_back_on_crash() {
    let (mut st, interface, imp) = populated();
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&st, &kv).unwrap();
        kv.checkpoint().unwrap();
        // An update written but never committed…
        st.set_attr(interface, "Length", Value::Int(99)).unwrap();
        let tx = kv.begin().unwrap();
        save_object(&st, &kv, tx, interface).unwrap();
        // …crash before commit.
    }
    let kv = DurableKv::open(dir.path()).unwrap();
    let reloaded = load_store(&kv).unwrap();
    assert_eq!(
        reloaded.attr(interface, "Length").unwrap(),
        Value::Int(5),
        "loser transaction undone"
    );
    assert_eq!(reloaded.attr(imp, "Length").unwrap(), Value::Int(5));
}

#[test]
fn aborted_transactions_stay_aborted_across_crash() {
    let (mut st, interface, _imp) = populated();
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&st, &kv).unwrap();
        st.set_attr(interface, "Length", Value::Int(77)).unwrap();
        let tx = kv.begin().unwrap();
        save_object(&st, &kv, tx, interface).unwrap();
        kv.abort(tx).unwrap();
        // Crash after abort.
    }
    let kv = DurableKv::open(dir.path()).unwrap();
    let reloaded = load_store(&kv).unwrap();
    assert_eq!(reloaded.attr(interface, "Length").unwrap(), Value::Int(5));
}

#[test]
fn repeated_crashes_are_idempotent() {
    let (st, interface, _) = populated();
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&st, &kv).unwrap();
    }
    // Crash-reopen several times; state must be stable.
    for _ in 0..3 {
        let kv = DurableKv::open(dir.path()).unwrap();
        let reloaded = load_store(&kv).unwrap();
        assert_eq!(reloaded.attr(interface, "Length").unwrap(), Value::Int(5));
        assert_eq!(reloaded.object_count(), 3); // if + impl + binding rel object
        drop(kv);
    }
}

#[test]
fn object_deletion_is_durable() {
    let (mut st, interface, imp) = populated();
    let dir = tempfile::tempdir().unwrap();
    {
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&st, &kv).unwrap();
        // Delete the implementation (and its binding) transactionally.
        let rel = st.binding_of(imp, "AllOf_If").unwrap();
        st.delete(imp).unwrap();
        let tx = kv.begin().unwrap();
        kv.delete(tx, object_key(imp)).unwrap();
        kv.delete(tx, object_key(rel)).unwrap();
        kv.commit(tx).unwrap();
    }
    let kv = DurableKv::open(dir.path()).unwrap();
    let mut reloaded = load_store(&kv).unwrap();
    assert!(reloaded.object(imp).is_err());
    // The interface no longer transmits: deleting it succeeds.
    reloaded.delete(interface).unwrap();
}
