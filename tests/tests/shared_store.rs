//! Integration tests for the concurrent shared-store read path: parallel
//! scans must agree with their sequential counterparts, and readers racing
//! a writer must never observe a stale cached value (§4.1 view semantics
//! under concurrency).

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use ccdb_core::domain::Domain;
use ccdb_core::expr::{BinOp, Expr, PathExpr};
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::shared::SharedStore;
use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![
            AttrDef::new("A", Domain::Int),
            AttrDef::new("B", Domain::Int),
        ],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["A".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Impl".into(),
        inheritor_in: vec!["AllOf_If".into()],
        attributes: vec![AttrDef::new("Local", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c
}

fn setup(n: usize) -> (SharedStore, Surrogate, Vec<Surrogate>) {
    let mut st = ObjectStore::new(catalog()).unwrap();
    let interface = st
        .create_object("If", vec![("A", Value::Int(0)), ("B", Value::Int(0))])
        .unwrap();
    let imps: Vec<Surrogate> = (0..n)
        .map(|k| {
            let i = st
                .create_object("Impl", vec![("Local", Value::Int(k as i64))])
                .unwrap();
            st.bind("AllOf_If", interface, i, vec![]).unwrap();
            i
        })
        .collect();
    (SharedStore::from_store(st), interface, imps)
}

#[test]
fn par_select_agrees_with_sequential_select() {
    let (shared, _, _) = setup(200);
    // Predicate over the *inherited* attribute: every evaluation walks (or
    // hits the memo of) the binding chain under a shared guard.
    let pred = Expr::bin(
        BinOp::Le,
        Expr::Path(PathExpr::self_path(&["A"])),
        Expr::int(0),
    );
    let seq = shared.read(|st| st.select("Impl", &pred)).unwrap();
    assert_eq!(seq.len(), 200);
    for threads in [1, 2, 4, 8, 13] {
        assert_eq!(shared.par_select("Impl", &pred, threads).unwrap(), seq);
    }
}

#[test]
fn par_check_all_agrees_with_sequential() {
    let (shared, _, _) = setup(64);
    let seq = shared.read(|st| st.check_all()).unwrap();
    for threads in [1, 2, 4, 8] {
        assert_eq!(shared.par_check_all(threads).unwrap(), seq);
    }
}

/// Readers race a writer for several thousand iterations. Every read must
/// return a value the writer actually wrote (monotonically increasing), and
/// once the writer is done every reader must see the final value — a stale
/// cache would fail both.
#[test]
fn racing_readers_never_observe_stale_values() {
    let (shared, interface, imps) = setup(8);
    const ROUNDS: i64 = 2_000;
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        let writer = {
            let shared = shared.clone();
            let stop = &stop;
            scope.spawn(move || {
                for v in 1..=ROUNDS {
                    shared.set_attr(interface, "A", Value::Int(v)).unwrap();
                }
                stop.store(true, Ordering::Release);
            })
        };
        let mut readers = Vec::new();
        for (r, &imp) in imps.iter().enumerate() {
            let shared = shared.clone();
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut last = 0i64;
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) || reads == 0 {
                    let Value::Int(v) = shared.attr(imp, "A").unwrap() else {
                        panic!("reader {r}: non-int read");
                    };
                    assert!(
                        (0..=ROUNDS).contains(&v),
                        "reader {r} saw unwritten value {v}"
                    );
                    assert!(v >= last, "reader {r} went back in time: {last} then {v}");
                    last = v;
                    reads += 1;
                }
                reads
            }));
        }
        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    });
    // Quiescent state: everyone resolves the final write.
    for &imp in &imps {
        assert_eq!(shared.attr(imp, "A").unwrap(), Value::Int(ROUNDS));
    }
}

/// Structural writes race reads: bind/unbind toggling must flip the read
/// between Missing and the live value, never anything else.
#[test]
fn bind_unbind_race_yields_only_live_or_missing() {
    let (shared, interface, imps) = setup(4);
    shared.set_attr(interface, "A", Value::Int(42)).unwrap();
    let victim = imps[0];
    thread::scope(|scope| {
        let toggler = {
            let shared = shared.clone();
            scope.spawn(move || {
                for _ in 0..500 {
                    let rel = shared.read(|st| st.binding_of(victim, "AllOf_If")).unwrap();
                    shared.unbind(rel).unwrap();
                    shared.bind("AllOf_If", interface, victim, vec![]).unwrap();
                }
            })
        };
        for _ in 0..2 {
            let shared = shared.clone();
            scope.spawn(move || {
                for _ in 0..2_000 {
                    match shared.attr(victim, "A").unwrap() {
                        Value::Int(42) | Value::Missing => {}
                        other => panic!("stale or corrupt read: {other:?}"),
                    }
                }
            });
        }
        toggler.join().unwrap();
    });
    assert_eq!(shared.attr(victim, "A").unwrap(), Value::Int(42));
}
