//! End-to-end integration: the paper's chip-design pipeline across all
//! crates — DDL text → catalog → object store → transactions → versions →
//! persistence → reload.

use ccdb_core::expand::expand;
use ccdb_core::persist::{load_store, save_store};
use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use ccdb_lang::paper::chip_catalog;
use ccdb_storage::kv::DurableKv;
use ccdb_txn::txn::Database;
use ccdb_version::{
    EnvironmentRegistry, GenericBindings, GenericRef, Selector, VersionManager, VersionStatus,
};

fn pin(st: &mut ObjectStore, owner: Surrogate, io: &str) -> Surrogate {
    st.create_subobject(
        owner,
        "Pins",
        vec![
            ("InOut", Value::Enum(io.into())),
            ("PinLocation", Value::Point { x: 0, y: 0 }),
        ],
    )
    .unwrap()
}

/// Interface (with pin hierarchy) + one implementation.
fn interface_with_impl(st: &mut ObjectStore, len: i64) -> (Surrogate, Surrogate) {
    let abstract_if = st.create_object("GateInterface_I", vec![]).unwrap();
    pin(st, abstract_if, "IN");
    pin(st, abstract_if, "IN");
    pin(st, abstract_if, "OUT");
    let iface = st
        .create_object(
            "GateInterface",
            vec![("Length", Value::Int(len)), ("Width", Value::Int(2))],
        )
        .unwrap();
    st.bind("AllOf_GateInterface_I", abstract_if, iface, vec![])
        .unwrap();
    let imp = st
        .create_object(
            "GateImplementation",
            vec![
                ("Function", Value::Matrix(vec![vec![Value::Bool(true)]])),
                ("TimeBehavior", Value::Int(len * 2)),
            ],
        )
        .unwrap();
    st.bind("AllOf_GateInterface", iface, imp, vec![]).unwrap();
    (iface, imp)
}

#[test]
fn full_chip_pipeline() {
    // 1. Schema from the paper's text.
    let catalog = chip_catalog().expect("verbatim paper schema compiles");
    let mut st = ObjectStore::new(catalog).unwrap();

    // 2. A small gate library.
    let (nand_if, nand_impl_v1) = interface_with_impl(&mut st, 4);
    let (_nor_if, _) = interface_with_impl(&mut st, 5);

    // 3. A composite circuit whose components inherit from nand_if.
    let circuit = st
        .create_object(
            "GateImplementation",
            vec![("Function", Value::Matrix(vec![vec![Value::Bool(false)]]))],
        )
        .unwrap();
    let sub = st
        .create_subobject(
            circuit,
            "SubGates",
            vec![("GateLocation", Value::Point { x: 3, y: 3 })],
        )
        .unwrap();
    st.bind("AllOf_GateInterface", nand_if, sub, vec![])
        .unwrap();
    // Transitive inheritance: the component's pins (2 levels up) are visible.
    assert_eq!(st.subclass_members(sub, "Pins").unwrap().len(), 3);

    // 4. Constraints hold across the design.
    assert!(st.check_all().unwrap().is_empty());

    // 5. Transactions: concurrent-style read/write through the Database.
    let db = Database::new(st);
    let tx = db.begin("designer");
    assert_eq!(db.read_attr(&tx, sub, "Length").unwrap(), Value::Int(4));
    db.write_attr(&tx, nand_if, "Length", Value::Int(6))
        .unwrap();
    db.commit(tx);
    assert_eq!(
        db.with_store(|s| s.attr(sub, "Length").unwrap()),
        Value::Int(6)
    );
    // The adaptation flag was raised by the transactional write too.
    let rel = db.with_store(|s| s.binding_of(sub, "AllOf_GateInterface").unwrap());
    assert!(db.with_store(|s| s.needs_adaptation(rel).unwrap()));

    // 6. Versions: a second implementation becomes the released one and a
    // generic reference follows it.
    let mut st = {
        // Take the store back out of the Database by rebuilding: persist it.
        let dir = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(dir.path()).unwrap();
        db.with_store(|s| save_store(s, &kv)).unwrap();
        load_store(&kv).unwrap()
    };
    let mut vm = VersionManager::new();
    vm.create_set("NAND-impl").unwrap();
    let v1 = vm.add_version("NAND-impl", nand_impl_v1, &[]).unwrap();
    vm.set_status("NAND-impl", v1, VersionStatus::Released)
        .unwrap();
    let faster = st
        .create_object(
            "GateImplementation",
            vec![
                ("Function", Value::Matrix(vec![vec![Value::Bool(true)]])),
                ("TimeBehavior", Value::Int(1)),
            ],
        )
        .unwrap();
    let v2 = vm.add_version("NAND-impl", faster, &[v1]).unwrap();
    vm.set_status("NAND-impl", v2, VersionStatus::Released)
        .unwrap();

    // A timing composite follows the latest released implementation through
    // SomeOf_Gate (TimeBehavior is permeable there).
    // GateImplementation.SubGates declares inheritor-in AllOf_GateInterface
    // only, so register a fresh consumer: reuse `circuit`? circuit's type
    // declares AllOf_GateInterface too. SomeOf_Gate needs a declarer; the
    // chip schema has none, so we check resolve() directly instead.
    let envs = EnvironmentRegistry::new();
    let chosen = ccdb_version::resolve(
        &vm,
        &st,
        &envs,
        "NAND-impl",
        &Selector::Query(ccdb_core::expr::Expr::bin(
            ccdb_core::expr::BinOp::Le,
            ccdb_core::expr::Expr::Path(ccdb_core::expr::PathExpr::self_path(&["TimeBehavior"])),
            ccdb_core::expr::Expr::int(3),
        )),
    )
    .unwrap();
    assert_eq!(chosen, v2, "top-down query picks the fast implementation");

    // 7. Persist the final state and reload: everything still resolves.
    let dir = tempfile::tempdir().unwrap();
    let kv = DurableKv::open(dir.path()).unwrap();
    save_store(&st, &kv).unwrap();
    kv.checkpoint().unwrap();
    drop(kv);
    let kv = DurableKv::open(dir.path()).unwrap();
    let reloaded = load_store(&kv).unwrap();
    assert_eq!(reloaded.attr(sub, "Length").unwrap(), Value::Int(6));
    assert_eq!(reloaded.subclass_members(sub, "Pins").unwrap().len(), 3);
    let e = expand(&reloaded, circuit, usize::MAX).unwrap();
    assert!(e.object_count() >= 2);
}

#[test]
fn generic_rebind_through_reload() {
    let catalog = chip_catalog().unwrap();
    let mut st = ObjectStore::new(catalog).unwrap();
    let (nand_if, _) = interface_with_impl(&mut st, 4);
    let (nand_if2, _) = interface_with_impl(&mut st, 9);

    let circuit = st
        .create_object(
            "GateImplementation",
            vec![("Function", Value::Matrix(vec![vec![Value::Bool(true)]]))],
        )
        .unwrap();
    let sub = st
        .create_subobject(
            circuit,
            "SubGates",
            vec![("GateLocation", Value::Point { x: 0, y: 0 })],
        )
        .unwrap();

    let mut vm = VersionManager::new();
    vm.create_set("NAND-if").unwrap();
    let v1 = vm.add_version("NAND-if", nand_if, &[]).unwrap();
    vm.add_version("NAND-if", nand_if2, &[v1]).unwrap();

    let mut gb = GenericBindings::new();
    gb.register(GenericRef {
        inheritor: sub,
        rel_type: "AllOf_GateInterface".into(),
        set: "NAND-if".into(),
        selector: Selector::Latest,
    });
    let envs = EnvironmentRegistry::new();
    gb.refresh(&mut st, &vm, &envs);
    assert_eq!(st.attr(sub, "Length").unwrap(), Value::Int(9));

    // Reload and refresh again: idempotent.
    let dir = tempfile::tempdir().unwrap();
    let kv = DurableKv::open(dir.path()).unwrap();
    save_store(&st, &kv).unwrap();
    let mut reloaded = load_store(&kv).unwrap();
    let report = gb.refresh(&mut reloaded, &vm, &envs);
    assert!(matches!(
        report[0].1,
        ccdb_version::RebindOutcome::Unchanged
    ));
    assert_eq!(reloaded.attr(sub, "Length").unwrap(), Value::Int(9));
}

#[test]
fn shipped_schema_files_match_the_embedded_paper_schemas() {
    let chip =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../schemas/chip.ccdb"))
            .expect("schemas/chip.ccdb present");
    let steel = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../schemas/steel.ccdb"
    ))
    .expect("schemas/steel.ccdb present");
    assert_eq!(chip.trim(), ccdb_lang::paper::CHIP_SCHEMA.trim());
    assert_eq!(steel.trim(), ccdb_lang::paper::STEEL_SCHEMA.trim());
    // And they compile standalone.
    let mut c = ccdb_core::schema::Catalog::new();
    ccdb_lang::compile_str(&chip, &mut c).unwrap();
    c.validate().unwrap();
}
