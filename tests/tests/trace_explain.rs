//! Integration tests for the causal tracing subsystem against the §5
//! steel-construction schema: trace-tree construction across real
//! inheritance resolutions, adaptation-cascade spans, sampling edge
//! cases, and exporter JSON round-trips through the `serde_json` parser.

use std::sync::Mutex;

use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use ccdb_lang::paper::steel_catalog;
use ccdb_obs::trace;

/// Tracing state (flag, sampler, span buffer) is process-global;
/// serialize the tests in this binary.
static SERIAL: Mutex<()> = Mutex::new(());

/// RAII: tracing on at the given rate with a clean buffer; fully reset on
/// drop so a panicking test cannot leak tracing into the next one.
struct Session;

impl Session {
    fn start(rate: f64) -> Self {
        trace::set_sample_rate(rate);
        trace::set_tracing(true);
        trace::clear();
        Session
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        trace::set_tracing(false);
        trace::set_sample_rate(1.0);
        trace::clear();
    }
}

/// A girder bound to its interface: the canonical one-hop inheritance.
fn girder_store() -> (ObjectStore, Surrogate, Surrogate) {
    let mut st = ObjectStore::new(steel_catalog().unwrap()).unwrap();
    let girder_if = st
        .create_object(
            "GirderInterface",
            vec![
                ("Length", Value::Int(100)),
                ("Height", Value::Int(10)),
                ("Width", Value::Int(5)),
            ],
        )
        .unwrap();
    let structure = st
        .create_object(
            "WeightCarrying_Structure",
            vec![
                ("Designer", Value::Str("t".into())),
                ("Description", Value::Str("t".into())),
            ],
        )
        .unwrap();
    let g = st.create_subobject(structure, "Girders", vec![]).unwrap();
    st.bind("AllOf_GirderIf", girder_if, g, vec![]).unwrap();
    (st, g, girder_if)
}

#[test]
fn inherited_read_produces_hop_tree_with_permeability_and_cache_outcome() {
    let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (st, girder, girder_if) = girder_store();
    let _s = Session::start(1.0);

    assert_eq!(st.attr(girder, "Length").unwrap(), Value::Int(100));
    let cold = trace::take_spans();
    assert_eq!(st.attr(girder, "Length").unwrap(), Value::Int(100));
    let warm = trace::take_spans();

    // Cold read: one root with one hop child naming the transmitter, the
    // relationship it went through, and the permeability decision.
    let trees = trace::build_trees(&cold);
    assert_eq!(trees.len(), 1, "{cold:?}");
    let root = &trees[0];
    assert_eq!(root.record.name, "core.attr");
    assert_eq!(
        root.record.field("rescache").map(ToString::to_string),
        Some("miss".into())
    );
    assert_eq!(root.children.len(), 1);
    let hop = &root.children[0];
    assert_eq!(hop.record.name, "core.attr.hop");
    assert_eq!(hop.record.parent, Some(root.record.span));
    assert_eq!(
        hop.record.field("via_rel").map(ToString::to_string),
        Some("AllOf_GirderIf".into())
    );
    assert_eq!(
        hop.record.field("transmitter").map(ToString::to_string),
        Some(girder_if.0.to_string())
    );
    assert_eq!(
        hop.record.field("permeable").map(ToString::to_string),
        Some("yes".into())
    );

    // Warm read answers from the resolution cache: root only, no hops.
    let trees = trace::build_trees(&warm);
    assert_eq!(trees.len(), 1, "{warm:?}");
    assert_eq!(
        trees[0].record.field("rescache").map(ToString::to_string),
        Some("hit".into())
    );
    assert!(trees[0].children.is_empty());
}

#[test]
fn transmitter_update_traces_adaptation_cascade_and_invalidation() {
    let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (mut st, girder, girder_if) = girder_store();
    // Warm the resolution cache so the update has memos to drop.
    let _ = st.attr(girder, "Length").unwrap();
    let _s = Session::start(1.0);

    st.set_attr(girder_if, "Length", Value::Int(120)).unwrap();
    let spans = trace::take_spans();

    let prop = spans
        .iter()
        .find(|s| s.name == "core.adaptation.propagate")
        .expect("propagation span");
    assert_eq!(
        prop.field("item").map(ToString::to_string),
        Some("Length".into())
    );
    assert_eq!(
        prop.field("fanout").map(ToString::to_string),
        Some("1".into())
    );
    // The flagged relationship is recorded as a child of the sweep.
    let flag = spans
        .iter()
        .find(|s| s.name == "core.adaptation.flag")
        .expect("flag span");
    assert_eq!(flag.parent, Some(prop.span));
    assert_eq!(
        flag.field("inheritor").map(ToString::to_string),
        Some(girder.0.to_string())
    );
    // The permeable update also swept the resolution cache.
    let inval = spans
        .iter()
        .find(|s| s.name == "core.rescache.invalidate")
        .expect("invalidation span");
    assert_eq!(
        inval.field("removed").map(ToString::to_string),
        Some("1".into())
    );
}

#[test]
fn sampling_edge_cases_zero_and_one() {
    let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (st, girder, _) = girder_store();

    // Rate 0.0: spans exist as guards but nothing is recorded.
    {
        let _s = Session::start(0.0);
        for _ in 0..10 {
            let _ = st.attr(girder, "Length").unwrap();
        }
        assert!(trace::take_spans().is_empty());
    }
    // Rate 1.0: every resolution becomes a trace.
    {
        let _s = Session::start(1.0);
        for _ in 0..10 {
            let _ = st.attr(girder, "Length").unwrap();
        }
        let spans = trace::take_spans();
        let roots = spans.iter().filter(|s| s.parent.is_none()).count();
        assert_eq!(roots, 10, "{spans:?}");
    }
}

#[test]
fn exporters_round_trip_through_json_parser() {
    let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let (st, girder, _) = girder_store();
    let _s = Session::start(1.0);
    let _ = st.attr(girder, "Length").unwrap();
    let spans = trace::take_spans();
    assert_eq!(spans.len(), 2, "{spans:?}");

    // Chrome-trace: parses, one traceEvent per span, ids and args survive.
    let chrome = trace::export_chrome_trace(&spans);
    let v: serde_json::Value = serde_json::from_str(&chrome).expect("chrome trace parses");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    for (ev, span) in events.iter().zip(&spans) {
        assert_eq!(ev["name"].as_str(), Some(span.name));
        assert_eq!(ev["ph"].as_str(), Some("X"));
        assert_eq!(ev["tid"].as_u64(), Some(span.trace.0));
        assert_eq!(ev["id"].as_u64(), Some(span.span.0));
    }
    let hop_ev = &events[0];
    assert_eq!(hop_ev["args"]["via_rel"].as_str(), Some("AllOf_GirderIf"));

    // JSONL: every line parses; parent links reconstruct the same tree
    // shape build_trees sees (golden structural round-trip).
    let jsonl = trace::export_jsonl(&spans);
    let lines: Vec<serde_json::Value> = jsonl
        .lines()
        .map(|l| serde_json::from_str(l).expect("jsonl line parses"))
        .collect();
    assert_eq!(lines.len(), spans.len());
    for (line, span) in lines.iter().zip(&spans) {
        assert_eq!(line["span"].as_u64(), Some(span.span.0));
        assert_eq!(line["parent"].as_u64(), span.parent.map(|p| p.0));
        assert_eq!(line["name"].as_str(), Some(span.name));
        assert_eq!(line["dur_ns"].as_u64(), Some(span.dur_ns));
    }
    let trees = trace::build_trees(&spans);
    assert_eq!(trees.len(), 1);
    assert_eq!(
        lines
            .iter()
            .filter(|l| l["parent"].as_u64().is_none())
            .count(),
        1,
        "exactly one root in the exported trace"
    );
}
