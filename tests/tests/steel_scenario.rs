//! Integration test of the §5 steel-construction scenario combined with
//! design transactions and relationship-based conflict detection.

use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use ccdb_lang::paper::steel_catalog;
use ccdb_txn::{potential_conflicts, ConflictKind, DesignTxn, StampRegistry};

/// Build the library + one structure (smaller sibling of the bench
/// generator, kept local so this test exercises the public API directly).
fn build() -> (ObjectStore, Surrogate, Surrogate, Surrogate) {
    let mut st = ObjectStore::new(steel_catalog().unwrap()).unwrap();
    let girder_if = st
        .create_object(
            "GirderInterface",
            vec![
                ("Length", Value::Int(100)),
                ("Height", Value::Int(10)),
                ("Width", Value::Int(5)),
            ],
        )
        .unwrap();
    let g_bore = st
        .create_subobject(
            girder_if,
            "Bores",
            vec![
                ("Diameter", Value::Int(6)),
                ("Length", Value::Int(7)),
                ("Position", Value::Point { x: 0, y: 0 }),
            ],
        )
        .unwrap();
    let plate_if = st
        .create_object(
            "PlateInterface",
            vec![
                ("Thickness", Value::Int(3)),
                (
                    "Area",
                    Value::record(vec![
                        ("Length".into(), Value::Int(40)),
                        ("Width".into(), Value::Int(20)),
                    ]),
                ),
            ],
        )
        .unwrap();
    let p_bore = st
        .create_subobject(
            plate_if,
            "Bores",
            vec![
                ("Diameter", Value::Int(6)),
                ("Length", Value::Int(3)),
                ("Position", Value::Point { x: 0, y: 0 }),
            ],
        )
        .unwrap();
    let bolt = st
        .create_object(
            "BoltType",
            vec![("Length", Value::Int(12)), ("Diameter", Value::Int(6))],
        )
        .unwrap();
    let nut = st
        .create_object(
            "NutType",
            vec![("Length", Value::Int(2)), ("Diameter", Value::Int(6))],
        )
        .unwrap();
    let structure = st
        .create_object(
            "WeightCarrying_Structure",
            vec![
                ("Designer", Value::Str("test".into())),
                ("Description", Value::Str("t".into())),
            ],
        )
        .unwrap();
    let g = st.create_subobject(structure, "Girders", vec![]).unwrap();
    st.bind("AllOf_GirderIf", girder_if, g, vec![]).unwrap();
    let p = st.create_subobject(structure, "Plates", vec![]).unwrap();
    st.bind("AllOf_PlateIf", plate_if, p, vec![]).unwrap();
    let screwing = st
        .create_subrel(
            structure,
            "Screwings",
            vec![("Bores", vec![g_bore, p_bore])],
            vec![("Strength", Value::Int(10))],
        )
        .unwrap();
    let b = st.create_rel_subobject(screwing, "Bolt", vec![]).unwrap();
    st.bind("AllOf_BoltType", bolt, b, vec![]).unwrap();
    let n = st.create_rel_subobject(screwing, "Nut", vec![]).unwrap();
    st.bind("AllOf_NutType", nut, n, vec![]).unwrap();
    (st, structure, girder_if, bolt)
}

#[test]
fn structure_is_consistent_and_constraints_localize_faults() {
    let (mut st, structure, _girder_if, bolt) = build();
    assert!(st.check_all().unwrap().is_empty());

    // Fault 1: nut/bolt diameter mismatch.
    st.set_attr(bolt, "Diameter", Value::Int(7)).unwrap();
    let v = st.check_all().unwrap();
    assert!(!v.is_empty());
    assert!(v.iter().all(|x| x.constraint.contains("Diameter")), "{v:?}");
    st.set_attr(bolt, "Diameter", Value::Int(6)).unwrap();

    // Fault 2: a screwing bore outside the structure's components.
    let foreign_bore = {
        let girder2 = st
            .create_object(
                "GirderInterface",
                vec![
                    ("Length", Value::Int(50)),
                    ("Height", Value::Int(5)),
                    ("Width", Value::Int(5)),
                ],
            )
            .unwrap();
        st.create_subobject(
            girder2,
            "Bores",
            vec![
                ("Diameter", Value::Int(6)),
                ("Length", Value::Int(7)),
                ("Position", Value::Point { x: 9, y: 9 }),
            ],
        )
        .unwrap()
    };
    let nut2 = st
        .create_object(
            "NutType",
            vec![("Length", Value::Int(5)), ("Diameter", Value::Int(6))],
        )
        .unwrap();
    let bad_screwing = st
        .create_subrel(
            structure,
            "Screwings",
            vec![("Bores", vec![foreign_bore])],
            vec![("Strength", Value::Int(1))],
        )
        .unwrap();
    let b2 = st
        .create_rel_subobject(bad_screwing, "Bolt", vec![])
        .unwrap();
    st.bind("AllOf_BoltType", bolt, b2, vec![]).unwrap();
    let n2 = st
        .create_rel_subobject(bad_screwing, "Nut", vec![])
        .unwrap();
    st.bind("AllOf_NutType", nut2, n2, vec![]).unwrap();
    let v = st.check_constraints(structure).unwrap();
    assert!(
        v.iter()
            .any(|x| x.constraint.contains("Screwings where-clause")),
        "the `x in Girders.Bores or x in Plates.Bores` clause must fire: {v:?}"
    );
}

#[test]
fn design_sessions_and_conflict_detection() {
    let (mut st, structure, girder_if, bolt) = build();
    let stamps = StampRegistry::new();

    // Two designers check out overlapping parts of the design.
    let mut alice = DesignTxn::checkout("alice", &st, &stamps, &[girder_if]).unwrap();
    let mut bob = DesignTxn::checkout("bob", &st, &stamps, &[girder_if, bolt]).unwrap();

    // Conflict analysis over their write sets: both touch the girder
    // interface → SameObject; bolt vs girder-if are unrelated.
    let conflicts = potential_conflicts(&st, &[girder_if], &[girder_if, bolt]);
    assert_eq!(conflicts.len(), 1);
    assert_eq!(conflicts[0].kind, ConflictKind::SameObject);

    // The structure's component subobject is related to the interface by an
    // inheritance edge — a transaction updating the interface potentially
    // conflicts with one updating the component.
    let g_component = st.subclass_members(structure, "Girders").unwrap()[0];
    let conflicts = potential_conflicts(&st, &[girder_if], &[g_component]);
    assert!(conflicts
        .iter()
        .any(|c| c.kind == ConflictKind::InheritanceEdge));

    // Optimistic check-in: alice lands, bob's overlapping session is stale.
    alice
        .set_attr(girder_if, "Length", Value::Int(120))
        .unwrap();
    alice.checkin(&mut st, &stamps).unwrap();
    bob.set_attr(girder_if, "Length", Value::Int(130)).unwrap();
    assert!(bob.checkin(&mut st, &stamps).is_err());
    assert_eq!(st.attr(girder_if, "Length").unwrap(), Value::Int(120));

    // The structure's view reflects alice's change instantly.
    assert_eq!(st.attr(g_component, "Length").unwrap(), Value::Int(120));
}
