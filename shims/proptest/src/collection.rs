//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::{BoxedStrategy, Strategy};

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>> {
    let size = size.into();
    BoxedStrategy::from_fn(move |rng| {
        let len = rng.in_inclusive_range(size.lo as i128, size.hi as i128) as usize;
        (0..len).map(|_| element.generate(rng)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_bounds() {
        let s = vec(0u64..5, 2..6);
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn zero_length_allowed() {
        let s = vec(0u64..5, 0..2);
        let mut rng = TestRng::seed_from_u64(6);
        let mut saw_empty = false;
        for _ in 0..50 {
            if s.generate(&mut rng).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }
}
