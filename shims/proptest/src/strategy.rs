//! The [`Strategy`] trait and core strategies: [`Just`], [`any`],
//! integer ranges, tuples, string patterns, and [`BoxedStrategy`].

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of random values of type `Self::Value`.
///
/// Unlike the real crate, all combinators return [`BoxedStrategy`], which
/// keeps composite strategy types writable and clonable.
pub trait Strategy: Clone + 'static {
    /// The generated value type.
    type Value: 'static;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| s.generate(rng))
    }

    /// Maps generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| f(s.generate(rng)))
    }

    /// Keeps only values satisfying `pred`, retrying up to a bound.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let s = self;
        let reason = reason.into();
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..1_000 {
                let v = s.generate(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {reason}");
        })
    }

    /// Builds recursive values: `self` is the leaf strategy, and `recurse`
    /// wraps an inner strategy into a composite one, applied up to `depth`
    /// levels. The size/branch hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Mix leaves back in so generated trees vary in depth.
            current = crate::union(vec![(1, leaf.clone()), (2, deeper)]);
        }
        current
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    generator: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Builds a strategy from a generator closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            generator: Arc::new(f),
        }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generator: Arc::clone(&self.generator),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generator)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, mirroring `Arbitrary`.
pub trait Arbitrary: Sized + 'static {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable-biased to keep generated text debuggable.
        crate::string::printable_char(rng)
    }
}

/// The full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    BoxedStrategy::from_fn(|rng| T::arbitrary(rng))
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_inclusive_range(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_inclusive_range(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String "regex" strategies: a `&'static str` pattern generates matching
/// strings (subset of proptest's regex support — see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(77)
    }

    #[test]
    fn just_clones() {
        assert_eq!(Just(41).generate(&mut rng()), 41);
    }

    #[test]
    fn range_strategy_in_bounds() {
        let s = 5u64..10;
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (1u32..2).prop_map(|v| v * 10);
        assert_eq!(s.generate(&mut rng()), 10);
    }

    #[test]
    fn prop_filter_retries() {
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn prop_recursive_nests_and_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..200 {
            let t = strat.generate(&mut r);
            max_seen = max_seen.max(depth(&t));
            assert!(depth(&t) <= 3);
        }
        assert!(max_seen >= 1, "recursion never fired");
    }

    #[test]
    fn tuple_strategy_combines() {
        let s = (0u64..4, 10u64..14);
        let (a, b) = s.generate(&mut rng());
        assert!(a < 4 && (10..14).contains(&b));
    }
}
