//! Test-runner configuration, error type, and the deterministic RNG
//! threaded through strategies.

use std::fmt;

/// Per-block configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps offline CI fast while
        // still exercising the generators. Blocks that need more set it.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 RNG used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]` (inclusive), as i128 to cover all ints.
    pub fn in_inclusive_range(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        let v = if span == 0 {
            // Full u128 span cannot occur for 64-bit int strategies.
            self.next_u64() as u128
        } else {
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span
        };
        lo + v as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(9);
        let mut b = TestRng::seed_from_u64(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn in_inclusive_range_hits_bounds() {
        let mut r = TestRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..200 {
            match r.in_inclusive_range(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                1 | 2 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(seen_lo && seen_hi);
    }
}
