//! Pattern-string sampling: generates strings matching the regex subset
//! the workspace's `&str` strategies use — literal characters, `[a-z]`
//! style character classes, `\PC` (any printable character), and the
//! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges, e.g. `[A-Za-z0-9_]`.
    Class(Vec<(char, char)>),
    /// `\PC`: any printable (non-control) character.
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                // Only the escapes this workspace's patterns need.
                let rest: String = chars[i..].iter().collect();
                if rest.starts_with("\\PC") {
                    i += 3;
                    Atom::Printable
                } else if chars.len() > i + 1 {
                    let c = chars[i + 1];
                    i += 2;
                    Atom::Literal(match c {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    })
                } else {
                    panic!("dangling escape in pattern {pattern:?}");
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|c| *c == '}')
                        .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad quantifier"),
                            hi.parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// A printable char: ASCII-biased with occasional multibyte characters, so
/// parser fuzzing exercises UTF-8 boundaries without emitting controls.
pub(crate) fn printable_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['é', 'ß', 'λ', 'Ж', 'あ', '中', '€', '∑', '😀', '—'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        // Printable ASCII: 0x20..=0x7E.
        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Printable => printable_char(rng),
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                }
                pick -= span;
            }
            ranges[0].0
        }
    }
}

/// Generates a string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse_pattern(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = if piece.min == piece.max {
            piece.min
        } else {
            rng.in_inclusive_range(piece.min as i128, piece.max as i128) as usize
        };
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(13)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_pattern("[A-Z]{2,6}", &mut r);
            assert!((2..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_uppercase()), "{s:?}");
        }
    }

    #[test]
    fn leading_upper_then_lowers() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_pattern("[A-Z][a-z]{1,5}", &mut r);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_uppercase());
            assert!(cs.all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_never_emits_controls() {
        let mut r = rng();
        for _ in 0..50 {
            let s = sample_pattern("\\PC{0,200}", &mut r);
            assert!(s.chars().count() <= 200);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(sample_pattern("abc", &mut rng()), "abc");
    }
}
