//! Offline stand-in for `proptest`: deterministic, seeded random testing
//! with the same macro surface (`proptest!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!`) and the strategy combinators this
//! workspace uses. Differences from the real crate:
//!
//! - no shrinking — failures report the case number and seed instead;
//! - string "regex" strategies support the subset actually used
//!   (character classes, `{m,n}` quantifiers, `\PC`);
//! - every combinator returns a [`BoxedStrategy`], so strategy types
//!   compose without the real crate's zoo of adapter types.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Runs one property-test body across `config.cases` seeded cases.
///
/// Used by the `proptest!` macro; not part of the public proptest API.
pub fn run_cases<F>(config: ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        // Deterministic per-case seed: stable across runs, different per case.
        let seed = 0xccdb_0b5e_0000_0000u64 ^ u64::from(case);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!("property failed at case {case} (seed {seed:#x}): {e}"),
            Err(payload) => {
                eprintln!("property panicked at case {case} (seed {seed:#x})");
                resume_unwind(payload);
            }
        }
    }
}

/// Boxes a strategy; helper for `prop_oneof!` arms of differing types.
pub fn boxed<S: Strategy>(s: S) -> BoxedStrategy<S::Value> {
    s.boxed()
}

/// Weighted union over boxed strategies; backs `prop_oneof!`.
pub fn union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "prop_oneof! weights must not all be zero");
    let arms = Arc::new(arms);
    BoxedStrategy::from_fn(move |rng| {
        let mut pick = rng.below(total);
        for (w, strat) in arms.iter() {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight selection out of range")
    })
}

/// Defines property tests over generated inputs.
///
/// Supports the `#![proptest_config(..)]` header, multiple `#[test]`
/// functions per block, and `pattern in strategy` argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, |__ccdb_rng| {
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), __ccdb_rng);
                    )*
                    let __ccdb_out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    __ccdb_out
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Non-fatal assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Non-fatal equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Picks among strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union(::std::vec![
            $( (($weight) as u32, $crate::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(::std::vec![
            $( (1u32, $crate::boxed($strat)) ),+
        ])
    };
}
