//! Option strategies, mirroring `proptest::option`.

use crate::strategy::{BoxedStrategy, Strategy};

/// Generates `None` about a quarter of the time, otherwise `Some` of the
/// inner strategy's value.
pub fn of<S: Strategy>(inner: S) -> BoxedStrategy<Option<S::Value>> {
    BoxedStrategy::from_fn(move |rng| {
        if rng.below(4) == 0 {
            None
        } else {
            Some(inner.generate(rng))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn generates_both_variants() {
        let s = of(0u64..10);
        let mut rng = TestRng::seed_from_u64(11);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
