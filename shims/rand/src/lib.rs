//! Offline stand-in for the `rand` crate: a deterministic SplitMix64
//! generator behind the familiar `StdRng` / `SeedableRng` / `Rng` names.
//! Only the surface this workspace uses is implemented.

use std::ops::Range;

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), same construction as rand.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for spans far below 2^64 and
                // acceptable for a test/bench workload generator.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open integer range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5usize..9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
