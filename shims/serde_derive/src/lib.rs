//! Offline stand-in for `serde_derive`, written against raw
//! `proc_macro::TokenStream` (no `syn`/`quote`). It supports exactly the
//! shapes this workspace derives on:
//!
//! - structs with named fields (any visibility) → JSON objects;
//! - tuple structs (newtypes unwrap, wider tuples become arrays);
//! - enums with unit / newtype / tuple / struct variants, encoded
//!   externally tagged like serde: `"Variant"`, `{"Variant": inner}`,
//!   `{"Variant": [..]}`, `{"Variant": {..}}`.
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error naming this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item shape model
// ---------------------------------------------------------------------------

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attributes and visibility modifiers.
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1; // '#'
                    self.pos += 1; // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.pos += 1;
                    // pub(crate) / pub(super) / pub(in ...)
                    if let Some(TokenTree::Group(g)) = self.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            self.pos += 1;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    /// Skips a type expression up to a top-level `,`; consumes the comma.
    /// Returns false when the cursor is exhausted.
    fn skip_type_to_comma(&mut self) -> bool {
        let mut angle_depth: i32 = 0;
        while let Some(tt) = self.next() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

/// Parses named fields (the inside of a struct / struct-variant brace group).
fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        if !c.skip_type_to_comma() {
            break;
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant paren group.
fn tuple_arity(ts: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut saw_token = false;
    let mut angle_depth: i32 = 0;
    for tt in ts {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    saw_token = true;
                }
                '>' => {
                    angle_depth -= 1;
                    saw_token = true;
                }
                ',' if angle_depth == 0 => {
                    if saw_token {
                        arity += 1;
                    }
                    saw_token = false;
                }
                _ => saw_token = true,
            },
            _ => saw_token = true,
        }
    }
    if saw_token {
        arity += 1;
    }
    arity
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("explicit discriminants are not supported".into());
            }
            Some(other) => return Err(format!("expected `,` between variants, found `{other}`")),
            None => break,
        }
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs_and_vis();
    let keyword = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde_derive shim does not support generics (type `{name}`)"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                })
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        kw => Err(format!("cannot derive for `{kw}` items")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::json::Value";
const SER: &str = "::serde::Serialize";
const DE: &str = "::serde::Deserialize";
const ERR: &str = "::serde::de::Error";

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         {SER}::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl {SER} for {name} {{\n\
                   fn serialize_value(&self) -> {VALUE} {{\n\
                     {VALUE}::Object(::std::vec![{}])\n\
                   }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl {SER} for {name} {{\n\
               fn serialize_value(&self) -> {VALUE} {{\n\
                 {SER}::serialize_value(&self.0)\n\
               }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("{SER}::serialize_value(&self.{i})"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl {SER} for {name} {{\n\
                   fn serialize_value(&self) -> {VALUE} {{\n\
                     {VALUE}::Array(::std::vec![{}])\n\
                   }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             {VALUE}::String(::std::string::String::from({vname:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => {VALUE}::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), \
                              {SER}::serialize_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("{SER}::serialize_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => {VALUE}::Object(::std::vec![\
                                 (::std::string::String::from({vname:?}), \
                                  {VALUE}::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         {SER}::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {VALUE}::Object(::std::vec![\
                                 (::std::string::String::from({vname:?}), \
                                  {VALUE}::Object(::std::vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl {SER} for {name} {{\n\
                   fn serialize_value(&self) -> {VALUE} {{\n\
                     match self {{\n{}\n}}\n\
                   }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_named_field_inits(ty: &str, fields: &[String], obj_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: {DE}::deserialize_value(\
                 ::serde::de::field({obj_var}, {f:?}, {ty:?})?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits = gen_named_field_inits(name, fields, "__obj");
            format!(
                "#[automatically_derived]\n\
                 impl {DE} for {name} {{\n\
                   fn deserialize_value(__v: &{VALUE}) -> ::std::result::Result<Self, {ERR}> {{\n\
                     let __obj = __v.as_object_slice()\
                       .ok_or_else(|| {ERR}::expected(\"object\", __v))?;\n\
                     ::std::result::Result::Ok({name} {{\n{inits}\n}})\n\
                   }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl {DE} for {name} {{\n\
               fn deserialize_value(__v: &{VALUE}) -> ::std::result::Result<Self, {ERR}> {{\n\
                 ::std::result::Result::Ok({name}({DE}::deserialize_value(__v)?))\n\
               }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("{DE}::deserialize_value(&__arr[{i}])?"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl {DE} for {name} {{\n\
                   fn deserialize_value(__v: &{VALUE}) -> ::std::result::Result<Self, {ERR}> {{\n\
                     let __arr = __v.as_array()\
                       .ok_or_else(|| {ERR}::expected(\"array\", __v))?;\n\
                     if __arr.len() != {arity} {{\n\
                       return ::std::result::Result::Err({ERR}::expected(\
                         \"{arity}-element array\", __v));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))\n\
                   }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let has_unit = variants.iter().any(|v| matches!(v.kind, VariantKind::Unit));
            let has_data = variants
                .iter()
                .any(|v| !matches!(v.kind, VariantKind::Unit));
            let mut body = String::new();
            if has_unit {
                let arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Unit))
                    .map(|v| {
                        format!(
                            "{:?} => ::std::result::Result::Ok({name}::{}),",
                            v.name, v.name
                        )
                    })
                    .collect();
                body.push_str(&format!(
                    "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                       return match __s {{\n{}\n\
                         __other => ::std::result::Result::Err(\
                           {ERR}::unknown_variant(__other, {name:?})),\n\
                       }};\n\
                     }}\n",
                    arms.join("\n")
                ));
            }
            if has_data {
                let arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vname = &v.name;
                        match &v.kind {
                            VariantKind::Unit => None,
                            VariantKind::Tuple(1) => Some(format!(
                                "{vname:?} => ::std::result::Result::Ok(\
                                 {name}::{vname}({DE}::deserialize_value(__inner)?)),"
                            )),
                            VariantKind::Tuple(n) => {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("{DE}::deserialize_value(&__arr[{i}])?"))
                                    .collect();
                                Some(format!(
                                    "{vname:?} => {{\n\
                                       let __arr = __inner.as_array()\
                                         .ok_or_else(|| {ERR}::expected(\"array\", __inner))?;\n\
                                       if __arr.len() != {n} {{\n\
                                         return ::std::result::Result::Err({ERR}::expected(\
                                           \"{n}-element array\", __inner));\n\
                                       }}\n\
                                       ::std::result::Result::Ok({name}::{vname}({}))\n\
                                     }}",
                                    items.join(", ")
                                ))
                            }
                            VariantKind::Named(fields) => {
                                let inits = gen_named_field_inits(name, fields, "__obj");
                                Some(format!(
                                    "{vname:?} => {{\n\
                                       let __obj = __inner.as_object_slice()\
                                         .ok_or_else(|| {ERR}::expected(\"object\", __inner))?;\n\
                                       ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}})\n\
                                     }}",
                                ))
                            }
                        }
                    })
                    .collect();
                body.push_str(&format!(
                    "if let ::std::option::Option::Some((__k, __inner)) = \
                       ::serde::de::variant(__v) {{\n\
                       return match __k {{\n{}\n\
                         __other => ::std::result::Result::Err(\
                           {ERR}::unknown_variant(__other, {name:?})),\n\
                       }};\n\
                     }}\n",
                    arms.join("\n")
                ));
            }
            body.push_str(&format!(
                "::std::result::Result::Err({ERR}::expected(\"enum variant\", __v))\n"
            ));
            format!(
                "#[automatically_derived]\n\
                 impl {DE} for {name} {{\n\
                   fn deserialize_value(__v: &{VALUE}) -> ::std::result::Result<Self, {ERR}> {{\n\
                     {body}\
                   }}\n\
                 }}"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive shim codegen error: {e}"))),
        Err(e) => compile_error(&format!("serde_derive shim: {e}")),
    }
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive shim codegen error: {e}"))),
        Err(e) => compile_error(&format!("serde_derive shim: {e}")),
    }
}
