//! Offline stand-in for `serde`. Instead of the visitor-based data model,
//! this shim serializes through a concrete JSON-shaped [`json::Value`]:
//!
//! - [`Serialize`] renders a value into a [`json::Value`];
//! - [`Deserialize`] reconstructs a value from a [`json::Value`].
//!
//! The derive macros (feature `derive`, crate `serde_derive`) generate
//! impls that follow serde's JSON conventions: structs become objects,
//! newtype structs unwrap to their inner value, unit enum variants become
//! strings, and data-carrying variants become single-key objects.

pub mod json;

pub mod de;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use json::Value;

/// Render `self` into the JSON-shaped data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Reconstruct `Self` from the JSON-shaped data model.
pub trait Deserialize: Sized {
    /// Converts a [`Value`] back into `Self`.
    fn deserialize_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn serialize_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        (*self as u64).serialize_value()
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
            self.3.serialize_value(),
        ])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Deterministic output: sort keys like serde_json's BTreeMap-backed map.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn int_from(v: &Value, ty: &str) -> Result<i64, de::Error> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::UInt(u) => i64::try_from(*u).map_err(|_| de::Error::expected(ty, v)),
        _ => Err(de::Error::expected(ty, v)),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let i = int_from(v, stringify!($t))?;
                <$t>::try_from(i).map_err(|_| de::Error::expected(stringify!($t), v))
            }
        }
    )*};
}

de_int!(i8, i16, i32, isize, u8, u16, u32);

impl Deserialize for i64 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        int_from(v, "i64")
    }
}

impl Deserialize for u64 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::UInt(u) => Ok(*u),
            _ => Err(de::Error::expected("u64", v)),
        }
    }
}

impl Deserialize for usize {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let u = u64::deserialize_value(v)?;
        usize::try_from(u).map_err(|_| de::Error::expected("usize", v))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // Non-finite floats serialize as null (like serde_json).
            Value::Null => Ok(f64::NAN),
            _ => Err(de::Error::expected("f64", v)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(de::Error::expected("string", v)),
        }
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(de::Error::expected("char", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(de::Error::expected("array", v)),
        }
    }
}

fn fixed_array(v: &Value, len: usize) -> Result<&[Value], de::Error> {
    match v {
        Value::Array(items) if items.len() == len => Ok(items),
        _ => Err(de::Error::expected("tuple array", v)),
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let items = fixed_array(v, 2)?;
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let items = fixed_array(v, 3)?;
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
            C::deserialize_value(&items[2])?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let items = fixed_array(v, 4)?;
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
            C::deserialize_value(&items[2])?,
            D::deserialize_value(&items[3])?,
        ))
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
                .collect(),
            _ => Err(de::Error::expected("object", v)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
                .collect(),
            _ => Err(de::Error::expected("object", v)),
        }
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
