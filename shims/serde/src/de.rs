//! Deserialization error type and the small helper surface the derive
//! macro generates calls against.

use crate::json::Value;
use std::fmt;

/// Deserialization / parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::new(format!("expected {what}, found {}", found.type_name()))
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error::new(format!("unknown variant `{variant}` for {ty}"))
    }

    /// Missing struct field error.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error::new(format!("missing field `{field}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in an object's pairs.
pub fn field<'v>(pairs: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(name, ty))
}

/// Views a value as an externally-tagged enum variant: a single-key object.
pub fn variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(pairs) if pairs.len() == 1 => Some((pairs[0].0.as_str(), &pairs[0].1)),
        _ => None,
    }
}
