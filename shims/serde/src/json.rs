//! The JSON-shaped data model shared by the `serde` and `serde_json`
//! shims: the [`Value`] tree plus a compact/pretty writer and a strict
//! recursive-descent parser.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer representable as `i64`.
    Int(i64),
    /// Integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object_slice(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Integer payload widened to `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Unsigned integer payload, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Floating-point view of any numeric payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object_slice()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short type tag for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serializes to pretty JSON text (two-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a `.0` on integral floats (so they parse back
                // as floats) and is shortest-roundtrip, like serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                // serde_json also degrades non-finite floats to null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses JSON text into a [`Value`].
pub fn parse(input: &str) -> Result<Value, crate::de::Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> crate::de::Error {
        crate::de::Error::new(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), crate::de::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, crate::de::Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, crate::de::Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, crate::de::Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, crate::de::Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, crate::de::Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, crate::de::Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    self.eat(b'\\')?;
                    self.eat(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, crate::de::Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, crate::de::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y\n".into())),
        ]);
        let text = v.to_json_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_keeps_float_shape() {
        let v = Value::Float(1.0);
        let text = v.to_json_string();
        assert_eq!(text, "1.0");
        assert_eq!(parse(&text).unwrap(), Value::Float(1.0));
        assert_eq!(Value::Float(-0.0).to_json_string(), "-0.0");
    }

    #[test]
    fn big_u64_roundtrips() {
        let v = Value::UInt(u64::MAX);
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é😀""#).unwrap(), Value::String("é😀".into()));
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = parse(r#"{"rows": [["a", "b"]]}"#).unwrap();
        assert!(v["rows"][0][1] == "b");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
