//! Offline stand-in for `criterion`: the same `criterion_group!` /
//! `criterion_main!` / `Criterion` surface, backed by a simple wall-clock
//! harness. Each benchmark warms up, then runs timed batches until enough
//! wall time has accumulated, and prints one `ns/iter` line.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id, like criterion's.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives one benchmark body.
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the measured ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters *= 2;
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's harness self-sizes.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { ns_per_iter: None };
        f(&mut b);
        match b.ns_per_iter {
            Some(ns) => println!("bench: {}/{id} ... {ns:.1} ns/iter", self.name),
            None => println!("bench: {}/{id} ... no measurement", self.name),
        }
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run(&id, |b| f(b));
        self
    }

    /// Benchmarks a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.name, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Prevents the optimizer from discarding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("read", 4).to_string(), "read/4");
    }
}
