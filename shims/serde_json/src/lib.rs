//! Offline stand-in for `serde_json`, layered over the `serde` shim's
//! JSON-shaped data model: [`Value`], text (de)serialization, and a
//! simplified [`json!`] macro.

pub use serde::de::Error;
pub use serde::json::Value;

use serde::{Deserialize, Serialize};

/// `Result` alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::deserialize_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize_value().to_json_string())
}

/// Serializes to pretty JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize_value().to_json_string_pretty())
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a typed value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::deserialize_value(&serde::json::parse(s)?)
}

/// Deserializes a typed value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Simplified relative to serde_json: object keys must be string
/// literals, and values are either nested `{...}` / `[...]` literals or
/// arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::json!($val)) ),*
        ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_object_of_exprs() {
        let title = String::from("E0: demo");
        let rows = vec![vec![String::from("a"), String::from("x")]];
        let j = json!({"title": title, "rows": rows});
        assert!(j["title"] == "E0: demo");
        assert!(j["rows"][0][1] == "x");
    }

    #[test]
    fn json_macro_nested_literals() {
        let j = json!({"a": {"b": [1, 2, 3]}, "c": null});
        assert_eq!(j["a"]["b"][2].as_i64(), Some(3));
        assert!(j["c"].is_null());
    }

    #[test]
    fn string_roundtrip_typed() {
        let v: Vec<(String, u64)> = vec![("x".into(), 1), ("y".into(), u64::MAX)];
        let s = to_string(&v).unwrap();
        let back: Vec<(String, u64)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = json!({"k": [true, false]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_slice_works() {
        let n: i64 = from_slice(b"-42").unwrap();
        assert_eq!(n, -42);
    }

    #[test]
    fn errors_are_displayable() {
        let e = from_str::<i64>("true").unwrap_err();
        assert!(e.to_string().contains("expected"));
    }
}
