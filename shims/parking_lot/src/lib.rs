//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. Only the surface this workspace uses is provided:
//! [`Mutex`], [`RwLock`], [`Condvar`] (with `wait` / `wait_for`), and the
//! corresponding guard types. Poisoning is swallowed — like the real
//! parking_lot, a panic while holding a lock does not poison it for
//! subsequent users.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`], mirroring
/// parking_lot's `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    poisoned: AtomicBool,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => {
                self.poisoned.store(true, Ordering::Relaxed);
                p.into_inner()
            }
        };
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                self.poisoned.store(true, Ordering::Relaxed);
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: result }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(5);
        {
            let r = l.try_read().expect("uncontended try_read succeeds");
            assert_eq!(*r, 5);
            // A second reader coexists; a writer does not.
            assert!(l.try_read().is_some());
            assert!(l.try_write().is_none());
        }
        {
            let mut w = l.try_write().expect("uncontended try_write succeeds");
            *w = 6;
            assert!(l.try_read().is_none());
            assert!(l.try_write().is_none());
        }
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn no_poison_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
