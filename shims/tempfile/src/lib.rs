//! Offline stand-in for the `tempfile` crate. Provides [`TempDir`] /
//! [`tempdir`] and [`NamedTempFile`] with recursive cleanup on drop.
//! Names are made unique with the process id plus a global counter, so
//! concurrent tests never collide.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn unique_path(prefix: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    std::env::temp_dir().join(format!("{prefix}-{pid}-{n}"))
}

/// A directory that is removed (recursively) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: Option<PathBuf>,
}

impl TempDir {
    /// Creates a fresh temporary directory.
    pub fn new() -> io::Result<TempDir> {
        let path = unique_path("ccdb-tmpdir");
        fs::create_dir_all(&path)?;
        Ok(TempDir { path: Some(path) })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        self.path.as_deref().expect("TempDir already closed")
    }

    /// Removes the directory now, reporting any error.
    pub fn close(mut self) -> io::Result<()> {
        if let Some(p) = self.path.take() {
            fs::remove_dir_all(p)?;
        }
        Ok(())
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = fs::remove_dir_all(p);
        }
    }
}

/// Creates a fresh [`TempDir`].
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

/// A file that is removed when dropped.
#[derive(Debug)]
pub struct NamedTempFile {
    path: Option<PathBuf>,
}

impl NamedTempFile {
    /// Creates a fresh, empty temporary file.
    pub fn new() -> io::Result<NamedTempFile> {
        let path = unique_path("ccdb-tmpfile");
        fs::File::create(&path)?;
        Ok(NamedTempFile { path: Some(path) })
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        self.path.as_deref().expect("NamedTempFile already closed")
    }
}

impl Drop for NamedTempFile {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_usable_and_cleaned() {
        let d = tempdir().unwrap();
        let inner = d.path().join("x.txt");
        fs::write(&inner, b"hi").unwrap();
        assert!(inner.exists());
        let kept = d.path().to_path_buf();
        drop(d);
        assert!(!kept.exists());
    }

    #[test]
    fn named_temp_file_exists_then_removed() {
        let f = NamedTempFile::new().unwrap();
        assert!(f.path().exists());
        let kept = f.path().to_path_buf();
        drop(f);
        assert!(!kept.exists());
    }

    #[test]
    fn paths_are_unique() {
        let a = NamedTempFile::new().unwrap();
        let b = NamedTempFile::new().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
