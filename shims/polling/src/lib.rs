#![warn(missing_docs)]

//! Offline stand-in for readiness polling: a thin, `std`-only wrapper over
//! the `poll(2)` syscall (plus the `getrlimit`/`setrlimit` pair the file-
//! descriptor-heavy benchmarks need). Like every other shim in this
//! workspace it links nothing beyond libc symbols the Rust standard
//! library already pulls in — no crates.io access required.
//!
//! The API is deliberately tiny:
//!
//! - [`PollFd`] / [`poll_fds`] — the raw readiness sweep an event loop
//!   builds each iteration (interest sets in, ready sets out);
//! - [`wait_readable`] / [`wait_writable`] — single-fd conveniences for
//!   code that may block on one socket (e.g. the shutdown drain flushing
//!   a final response to a nonblocking fd);
//! - [`raise_nofile_limit`] / [`nofile_limit`] — `RLIMIT_NOFILE`
//!   introspection so a 10k-connection experiment can size itself to what
//!   the process may actually open;
//! - [`set_send_buffer`] — `SO_SNDBUF` clamping, so tests exercising the
//!   write-stall path can shrink a socket's kernel buffering from
//!   megabytes (auto-tuned loopback) to something a slow subscriber
//!   fills in milliseconds;
//! - [`Epoll`] — a registration-based readiness interface over Linux
//!   `epoll(7)`. `poll(2)` re-scans every registered fd per call (the
//!   kernel walks the whole interest array each sweep), so an event loop
//!   over N mostly-idle connections pays O(N) per iteration; epoll keeps
//!   the interest set in the kernel and [`Epoll::wait`] returns only the
//!   ready fds. The interest masks reuse [`POLLIN`]/[`POLLOUT`] and ready
//!   events answer the same [`ready`](Event::ready)/[`failed`](Event::failed)
//!   questions as [`PollFd`], so an event loop can treat the two backends
//!   uniformly. On non-Linux platforms [`Epoll::new`] returns
//!   [`std::io::ErrorKind::Unsupported`] (use [`epoll_supported`] to
//!   auto-detect and fall back to [`poll_fds`]).
//!
//! Only Unix is supported (the rest of the workspace's serving layer is
//! `std::net` + raw fds); on other platforms every call returns
//! [`std::io::ErrorKind::Unsupported`].

use std::io;

/// Raw file descriptor, as used by `poll(2)`.
pub type Fd = i32;

/// Readable data is available (or a listener has a pending connection).
pub const POLLIN: i16 = 0x001;
/// Writing is possible without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` interest set, layout-compatible with the
/// kernel's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch (negative entries are skipped by the kernel).
    pub fd: Fd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// Interest entry for `fd` watching `events`.
    pub fn new(fd: Fd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask` came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the fd reported an error/hangup/invalid condition.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// One ready notification from [`Epoll::wait`]: the token the fd was
/// registered under plus its ready condition, answering the same
/// questions as [`PollFd::ready`]/[`PollFd::failed`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The caller-chosen token passed to [`Epoll::add`].
    pub token: u64,
    /// Ready mask in [`POLLIN`]/[`POLLOUT`] terms.
    pub events: i16,
}

impl Event {
    /// Whether any of `mask` is ready.
    pub fn ready(&self, mask: i16) -> bool {
        self.events & mask != 0
    }

    /// Whether the fd reported an error/hangup condition.
    pub fn failed(&self) -> bool {
        self.events & (POLLERR | POLLHUP) != 0
    }
}

/// A kernel-resident readiness set (Linux `epoll(7)`).
///
/// Register each fd once with [`add`](Epoll::add) under a caller-chosen
/// token, adjust interest with [`modify`](Epoll::modify) when it changes,
/// and [`wait`](Epoll::wait) returns only the fds with pending events —
/// no per-iteration interest-array rebuild and no kernel-side scan of
/// idle registrations.
///
/// Level-triggered (the default epoll mode), matching `poll(2)` semantics
/// exactly: a readable fd keeps reporting readable until drained, so the
/// two backends are drop-in interchangeable for the same event loop.
///
/// One caveat inherited from the syscall: epoll registers the *open file
/// description*, not the fd number. A `try_clone`d socket keeps the
/// registration alive after the registered fd is closed, so owners of
/// duplicated fds must [`del`](Epoll::del) explicitly before dropping.
pub struct Epoll {
    inner: sys_epoll::Epoll,
}

impl Epoll {
    /// Creates an epoll instance (`EPOLL_CLOEXEC`). `Unsupported` off Linux.
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            inner: sys_epoll::Epoll::new()?,
        })
    }

    /// Registers `fd` for `events` ([`POLLIN`] | [`POLLOUT`]) under `token`.
    pub fn add(&self, fd: Fd, events: i16, token: u64) -> io::Result<()> {
        self.inner.ctl(sys_epoll::EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replaces the interest mask of an already-registered `fd`.
    pub fn modify(&self, fd: Fd, events: i16, token: u64) -> io::Result<()> {
        self.inner.ctl(sys_epoll::EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set.
    pub fn del(&self, fd: Fd) -> io::Result<()> {
        self.inner.ctl(sys_epoll::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (negative = forever, 0 = probe) and
    /// appends one [`Event`] per ready registration to `out` (cleared
    /// first). Returns how many were ready. `EINTR` is retried.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        self.inner.wait(out, timeout_ms)
    }
}

/// Whether [`Epoll`] works on this platform (used by backend auto-detect).
pub fn epoll_supported() -> bool {
    sys_epoll::supported()
}

#[cfg(target_os = "linux")]
mod sys_epoll {
    use super::{Event, Fd, POLLERR, POLLHUP, POLLIN, POLLOUT};
    use std::io;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    /// The kernel's `struct epoll_event`: packed on x86-64 (the original
    /// i386 layout was kept for compat), naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn to_epoll_mask(events: i16) -> u32 {
        let mut m = 0u32;
        if events & POLLIN != 0 {
            m |= EPOLLIN;
        }
        if events & POLLOUT != 0 {
            m |= EPOLLOUT;
        }
        m
    }

    fn from_epoll_mask(events: u32) -> i16 {
        let mut m = 0i16;
        if events & EPOLLIN != 0 {
            m |= POLLIN;
        }
        if events & EPOLLOUT != 0 {
            m |= POLLOUT;
        }
        if events & EPOLLERR != 0 {
            m |= POLLERR;
        }
        if events & EPOLLHUP != 0 {
            m |= POLLHUP;
        }
        m
    }

    pub struct Epoll {
        epfd: i32,
        /// Reused kernel-facing event buffer (behind a lock only because
        /// `wait` takes `&self`; the event loop is single-threaded).
        buf: std::sync::Mutex<Vec<EpollEvent>>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: std::sync::Mutex::new(vec![EpollEvent { events: 0, data: 0 }; 256]),
            })
        }

        pub fn ctl(&self, op: i32, fd: Fd, events: i16, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: to_epoll_mask(events),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            out.clear();
            let mut buf = self.buf.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                let rc = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if rc >= 0 {
                    let n = rc as usize;
                    for ev in &buf[..n] {
                        out.push(Event {
                            token: ev.data,
                            events: from_epoll_mask(ev.events),
                        });
                    }
                    // A full buffer means more may be pending; grow so the
                    // next wait drains larger ready sets in one call.
                    if n == buf.len() {
                        let len = buf.len() * 2;
                        buf.resize(len, EpollEvent { events: 0, data: 0 });
                    }
                    return Ok(n);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    pub fn supported() -> bool {
        true
    }
}

#[cfg(not(target_os = "linux"))]
mod sys_epoll {
    use super::{Event, Fd};
    use std::io;

    #[allow(dead_code)]
    pub const EPOLL_CTL_ADD: i32 = 1;
    #[allow(dead_code)]
    pub const EPOLL_CTL_DEL: i32 = 2;
    #[allow(dead_code)]
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub struct Epoll;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is Linux-only; use the poll backend",
        ))
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            unsupported()
        }

        pub fn ctl(&self, _op: i32, _fd: Fd, _events: i16, _token: u64) -> io::Result<()> {
            unsupported()
        }

        pub fn wait(&self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            unsupported()
        }
    }

    pub fn supported() -> bool {
        false
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;

    /// `nfds_t`: `unsigned long` per POSIX (glibc/musl), but `unsigned
    /// int` on Darwin — a fixed `u64` would be an ABI mismatch on 32-bit
    /// Unix targets.
    #[cfg(target_os = "macos")]
    type NFds = u32;
    #[cfg(not(target_os = "macos"))]
    type NFds = std::os::raw::c_ulong;

    /// `rlim_t`: 64-bit on every supported target except 32-bit glibc,
    /// where the plain `getrlimit`/`setrlimit` symbols take the 32-bit
    /// `unsigned long` flavor.
    #[cfg(all(target_env = "gnu", target_pointer_width = "32"))]
    type RLim = std::os::raw::c_ulong;
    #[cfg(not(all(target_env = "gnu", target_pointer_width = "32")))]
    type RLim = u64;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> i32;
    }

    #[cfg(target_os = "macos")]
    const SOL_SOCKET: i32 = 0xffff;
    #[cfg(not(target_os = "macos"))]
    const SOL_SOCKET: i32 = 1;
    #[cfg(target_os = "macos")]
    const SO_SNDBUF: i32 = 0x1001;
    #[cfg(not(target_os = "macos"))]
    const SO_SNDBUF: i32 = 7;

    pub fn set_send_buffer(fd: i32, bytes: usize) -> io::Result<()> {
        let val = i32::try_from(bytes).unwrap_or(i32::MAX);
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                (&val as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    #[repr(C)]
    struct RLimit {
        cur: RLim,
        max: RLim,
    }

    fn to_rlim(v: u64) -> RLim {
        RLim::try_from(v).unwrap_or(RLim::MAX)
    }

    // The cast is lossless on 64-bit targets and widening on 32-bit glibc.
    #[allow(clippy::unnecessary_cast)]
    fn from_rlim(v: RLim) -> u64 {
        v as u64
    }

    #[cfg(target_os = "macos")]
    const RLIMIT_NOFILE: i32 = 8;
    #[cfg(not(target_os = "macos"))]
    const RLIMIT_NOFILE: i32 = 7;

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            // EINTR: retry without adjusting the timeout — callers that
            // care about deadlines recompute them per iteration anyway.
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((from_rlim(lim.cur), from_rlim(lim.max)))
    }

    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let (cur, max) = nofile_limit()?;
        if cur >= want {
            return Ok(cur);
        }
        // Try the full ask first (root may raise the hard limit), then
        // fall back to the current hard limit.
        for target in [want.max(max), max] {
            let lim = RLimit {
                cur: to_rlim(want.min(target)),
                max: to_rlim(target),
            };
            if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } == 0 {
                return Ok(from_rlim(lim.cur));
            }
        }
        Ok(cur)
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim supports Unix only",
        ))
    }

    pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        unsupported()
    }

    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        unsupported()
    }

    pub fn raise_nofile_limit(_want: u64) -> io::Result<u64> {
        unsupported()
    }

    pub fn set_send_buffer(_fd: i32, _bytes: usize) -> io::Result<()> {
        unsupported()
    }
}

/// Sweeps `fds` once: blocks up to `timeout_ms` (negative = forever,
/// 0 = nonblocking probe) and returns how many entries have non-zero
/// `revents`. `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    sys::poll_fds(fds, timeout_ms)
}

/// Blocks until `fd` is readable (or error/hangup). `Ok(false)` = timeout.
pub fn wait_readable(fd: Fd, timeout_ms: i32) -> io::Result<bool> {
    wait_single(fd, POLLIN, timeout_ms)
}

/// Blocks until `fd` is writable (or error/hangup). `Ok(false)` = timeout.
pub fn wait_writable(fd: Fd, timeout_ms: i32) -> io::Result<bool> {
    wait_single(fd, POLLOUT, timeout_ms)
}

fn wait_single(fd: Fd, events: i16, timeout_ms: i32) -> io::Result<bool> {
    let mut set = [PollFd::new(fd, events)];
    let n = poll_fds(&mut set, timeout_ms)?;
    // POLLERR/POLLHUP count as "ready": the next read/write surfaces the
    // real error instead of this call guessing at it.
    Ok(n > 0)
}

/// The process's `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    sys::nofile_limit()
}

/// Best-effort raise of the soft (and, when permitted, hard)
/// `RLIMIT_NOFILE` toward `want`; returns the soft limit now in effect.
/// Never lowers the limit.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    sys::raise_nofile_limit(want)
}

/// Requests a kernel send-buffer size (`SO_SNDBUF`) for `fd`. The kernel
/// may round the value (Linux doubles it and enforces a floor); the point
/// is shrinking multi-megabyte auto-tuned buffers down to a bounded size,
/// not hitting an exact byte count.
pub fn set_send_buffer(fd: Fd, bytes: usize) -> io::Result<()> {
    sys::set_send_buffer(fd, bytes)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poll_reports_readable_after_write_and_timeout_before() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        // Nothing sent yet: a zero-timeout probe finds nothing.
        assert!(!wait_readable(server.as_raw_fd(), 0).unwrap());

        client.write_all(b"x").unwrap();
        assert!(wait_readable(server.as_raw_fd(), 2_000).unwrap());
        let mut b = [0u8; 1];
        server.read_exact(&mut b).unwrap();
        assert_eq!(&b, b"x");

        // A fresh socket with empty send buffer is writable immediately.
        assert!(wait_writable(client.as_raw_fd(), 2_000).unwrap());
    }

    #[test]
    fn poll_sweep_flags_only_the_ready_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a_client = TcpStream::connect(addr).unwrap();
        let (a_srv, _) = listener.accept().unwrap();
        let b_client = TcpStream::connect(addr).unwrap();
        let (b_srv, _) = listener.accept().unwrap();

        a_client.write_all(b"hello").unwrap();
        let mut set = [
            PollFd::new(a_srv.as_raw_fd(), POLLIN),
            PollFd::new(b_srv.as_raw_fd(), POLLIN),
        ];
        let n = poll_fds(&mut set, 2_000).unwrap();
        assert_eq!(n, 1);
        assert!(set[0].ready(POLLIN));
        assert!(!set[1].ready(POLLIN));
        drop(b_client);
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (srv, _) = listener.accept().unwrap();
        drop(client);
        let mut set = [PollFd::new(srv.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut set, 2_000).unwrap();
        assert_eq!(n, 1);
        // EOF shows as POLLIN (read returns 0) and/or POLLHUP.
        assert!(set[0].ready(POLLIN) || set[0].failed());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn epoll_reports_only_ready_registrations_and_honors_modify() {
        assert!(epoll_supported());
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a_client = TcpStream::connect(addr).unwrap();
        let (a_srv, _) = listener.accept().unwrap();
        let b_client = TcpStream::connect(addr).unwrap();
        let (b_srv, _) = listener.accept().unwrap();

        ep.add(a_srv.as_raw_fd(), POLLIN, 10).unwrap();
        ep.add(b_srv.as_raw_fd(), POLLIN, 20).unwrap();

        // Nothing sent: a zero-timeout probe finds nothing.
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        a_client.write_all(b"hello").unwrap();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 10);
        assert!(events[0].ready(POLLIN));

        // Add POLLOUT interest on b: an empty send buffer is writable now.
        ep.modify(b_srv.as_raw_fd(), POLLIN | POLLOUT, 21).unwrap();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 2);
        let b_ev = events.iter().find(|e| e.token == 21).unwrap();
        assert!(b_ev.ready(POLLOUT) && !b_ev.ready(POLLIN));

        // Deregister a: its pending data stops being reported.
        ep.del(a_srv.as_raw_fd()).unwrap();
        let n = ep.wait(&mut events, 100).unwrap();
        assert!(events.iter().all(|e| e.token != 10), "{n} events");
        drop(b_client);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn epoll_reports_hangup() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (srv, _) = listener.accept().unwrap();
        ep.add(srv.as_raw_fd(), POLLIN, 7).unwrap();
        drop(client);
        let mut events = Vec::new();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].ready(POLLIN) || events[0].failed());
    }

    #[test]
    #[cfg(not(target_os = "linux"))]
    fn epoll_is_cleanly_unsupported() {
        assert!(!epoll_supported());
        assert_eq!(
            Epoll::new().unwrap_err().kind(),
            std::io::ErrorKind::Unsupported
        );
    }

    #[test]
    fn nofile_limit_is_sane_and_raise_never_lowers() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        let now = raise_nofile_limit(soft).unwrap();
        assert!(now >= soft);
    }

    #[test]
    fn send_buffer_can_be_shrunk() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_send_buffer(client.as_raw_fd(), 8 * 1024).unwrap();
        // A bogus fd must surface the OS error, not be swallowed.
        assert!(set_send_buffer(-1, 8 * 1024).is_err());
    }
}
