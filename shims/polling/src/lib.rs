#![warn(missing_docs)]

//! Offline stand-in for readiness polling: a thin, `std`-only wrapper over
//! the `poll(2)` syscall (plus the `getrlimit`/`setrlimit` pair the file-
//! descriptor-heavy benchmarks need). Like every other shim in this
//! workspace it links nothing beyond libc symbols the Rust standard
//! library already pulls in — no crates.io access required.
//!
//! The API is deliberately tiny:
//!
//! - [`PollFd`] / [`poll_fds`] — the raw readiness sweep an event loop
//!   builds each iteration (interest sets in, ready sets out);
//! - [`wait_readable`] / [`wait_writable`] — single-fd conveniences for
//!   code that may block on one socket (e.g. the shutdown drain flushing
//!   a final response to a nonblocking fd);
//! - [`raise_nofile_limit`] / [`nofile_limit`] — `RLIMIT_NOFILE`
//!   introspection so a 10k-connection experiment can size itself to what
//!   the process may actually open;
//! - [`set_send_buffer`] — `SO_SNDBUF` clamping, so tests exercising the
//!   write-stall path can shrink a socket's kernel buffering from
//!   megabytes (auto-tuned loopback) to something a slow subscriber
//!   fills in milliseconds.
//!
//! Only Unix is supported (the rest of the workspace's serving layer is
//! `std::net` + raw fds); on other platforms every call returns
//! [`std::io::ErrorKind::Unsupported`].

use std::io;

/// Raw file descriptor, as used by `poll(2)`.
pub type Fd = i32;

/// Readable data is available (or a listener has a pending connection).
pub const POLLIN: i16 = 0x001;
/// Writing is possible without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` interest set, layout-compatible with the
/// kernel's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch (negative entries are skipped by the kernel).
    pub fd: Fd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// Interest entry for `fd` watching `events`.
    pub fn new(fd: Fd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask` came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the fd reported an error/hangup/invalid condition.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;

    /// `nfds_t`: `unsigned long` per POSIX (glibc/musl), but `unsigned
    /// int` on Darwin — a fixed `u64` would be an ABI mismatch on 32-bit
    /// Unix targets.
    #[cfg(target_os = "macos")]
    type NFds = u32;
    #[cfg(not(target_os = "macos"))]
    type NFds = std::os::raw::c_ulong;

    /// `rlim_t`: 64-bit on every supported target except 32-bit glibc,
    /// where the plain `getrlimit`/`setrlimit` symbols take the 32-bit
    /// `unsigned long` flavor.
    #[cfg(all(target_env = "gnu", target_pointer_width = "32"))]
    type RLim = std::os::raw::c_ulong;
    #[cfg(not(all(target_env = "gnu", target_pointer_width = "32")))]
    type RLim = u64;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> i32;
    }

    #[cfg(target_os = "macos")]
    const SOL_SOCKET: i32 = 0xffff;
    #[cfg(not(target_os = "macos"))]
    const SOL_SOCKET: i32 = 1;
    #[cfg(target_os = "macos")]
    const SO_SNDBUF: i32 = 0x1001;
    #[cfg(not(target_os = "macos"))]
    const SO_SNDBUF: i32 = 7;

    pub fn set_send_buffer(fd: i32, bytes: usize) -> io::Result<()> {
        let val = i32::try_from(bytes).unwrap_or(i32::MAX);
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                (&val as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    #[repr(C)]
    struct RLimit {
        cur: RLim,
        max: RLim,
    }

    fn to_rlim(v: u64) -> RLim {
        RLim::try_from(v).unwrap_or(RLim::MAX)
    }

    // The cast is lossless on 64-bit targets and widening on 32-bit glibc.
    #[allow(clippy::unnecessary_cast)]
    fn from_rlim(v: RLim) -> u64 {
        v as u64
    }

    #[cfg(target_os = "macos")]
    const RLIMIT_NOFILE: i32 = 8;
    #[cfg(not(target_os = "macos"))]
    const RLIMIT_NOFILE: i32 = 7;

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            // EINTR: retry without adjusting the timeout — callers that
            // care about deadlines recompute them per iteration anyway.
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((from_rlim(lim.cur), from_rlim(lim.max)))
    }

    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let (cur, max) = nofile_limit()?;
        if cur >= want {
            return Ok(cur);
        }
        // Try the full ask first (root may raise the hard limit), then
        // fall back to the current hard limit.
        for target in [want.max(max), max] {
            let lim = RLimit {
                cur: to_rlim(want.min(target)),
                max: to_rlim(target),
            };
            if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } == 0 {
                return Ok(from_rlim(lim.cur));
            }
        }
        Ok(cur)
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim supports Unix only",
        ))
    }

    pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        unsupported()
    }

    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        unsupported()
    }

    pub fn raise_nofile_limit(_want: u64) -> io::Result<u64> {
        unsupported()
    }

    pub fn set_send_buffer(_fd: i32, _bytes: usize) -> io::Result<()> {
        unsupported()
    }
}

/// Sweeps `fds` once: blocks up to `timeout_ms` (negative = forever,
/// 0 = nonblocking probe) and returns how many entries have non-zero
/// `revents`. `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    sys::poll_fds(fds, timeout_ms)
}

/// Blocks until `fd` is readable (or error/hangup). `Ok(false)` = timeout.
pub fn wait_readable(fd: Fd, timeout_ms: i32) -> io::Result<bool> {
    wait_single(fd, POLLIN, timeout_ms)
}

/// Blocks until `fd` is writable (or error/hangup). `Ok(false)` = timeout.
pub fn wait_writable(fd: Fd, timeout_ms: i32) -> io::Result<bool> {
    wait_single(fd, POLLOUT, timeout_ms)
}

fn wait_single(fd: Fd, events: i16, timeout_ms: i32) -> io::Result<bool> {
    let mut set = [PollFd::new(fd, events)];
    let n = poll_fds(&mut set, timeout_ms)?;
    // POLLERR/POLLHUP count as "ready": the next read/write surfaces the
    // real error instead of this call guessing at it.
    Ok(n > 0)
}

/// The process's `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    sys::nofile_limit()
}

/// Best-effort raise of the soft (and, when permitted, hard)
/// `RLIMIT_NOFILE` toward `want`; returns the soft limit now in effect.
/// Never lowers the limit.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    sys::raise_nofile_limit(want)
}

/// Requests a kernel send-buffer size (`SO_SNDBUF`) for `fd`. The kernel
/// may round the value (Linux doubles it and enforces a floor); the point
/// is shrinking multi-megabyte auto-tuned buffers down to a bounded size,
/// not hitting an exact byte count.
pub fn set_send_buffer(fd: Fd, bytes: usize) -> io::Result<()> {
    sys::set_send_buffer(fd, bytes)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poll_reports_readable_after_write_and_timeout_before() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        // Nothing sent yet: a zero-timeout probe finds nothing.
        assert!(!wait_readable(server.as_raw_fd(), 0).unwrap());

        client.write_all(b"x").unwrap();
        assert!(wait_readable(server.as_raw_fd(), 2_000).unwrap());
        let mut b = [0u8; 1];
        server.read_exact(&mut b).unwrap();
        assert_eq!(&b, b"x");

        // A fresh socket with empty send buffer is writable immediately.
        assert!(wait_writable(client.as_raw_fd(), 2_000).unwrap());
    }

    #[test]
    fn poll_sweep_flags_only_the_ready_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a_client = TcpStream::connect(addr).unwrap();
        let (a_srv, _) = listener.accept().unwrap();
        let b_client = TcpStream::connect(addr).unwrap();
        let (b_srv, _) = listener.accept().unwrap();

        a_client.write_all(b"hello").unwrap();
        let mut set = [
            PollFd::new(a_srv.as_raw_fd(), POLLIN),
            PollFd::new(b_srv.as_raw_fd(), POLLIN),
        ];
        let n = poll_fds(&mut set, 2_000).unwrap();
        assert_eq!(n, 1);
        assert!(set[0].ready(POLLIN));
        assert!(!set[1].ready(POLLIN));
        drop(b_client);
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (srv, _) = listener.accept().unwrap();
        drop(client);
        let mut set = [PollFd::new(srv.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut set, 2_000).unwrap();
        assert_eq!(n, 1);
        // EOF shows as POLLIN (read returns 0) and/or POLLHUP.
        assert!(set[0].ready(POLLIN) || set[0].failed());
    }

    #[test]
    fn nofile_limit_is_sane_and_raise_never_lowers() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        let now = raise_nofile_limit(soft).unwrap();
        assert!(now >= soft);
    }

    #[test]
    fn send_buffer_can_be_shrunk() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_send_buffer(client.as_raw_fd(), 8 * 1024).unwrap();
        // A bogus fd must surface the OS error, not be swallowed.
        assert!(set_send_buffer(-1, 8 * 1024).is_err());
    }
}
