//! Criterion bench for E7: checking the §5 steel-construction constraints.

use ccdb_bench::workload::steel_structure;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_constraints");
    g.sample_size(20);
    for n in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("check_all", n), &n, |b, &n| {
            let (st, _) = steel_structure(n);
            b.iter(|| black_box(st.check_all().unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("check_structure_only", n), &n, |b, &n| {
            let (st, structure) = steel_structure(n);
            b.iter(|| black_box(st.check_constraints(structure).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
