//! Criterion bench for E1: one transmitter update with N dependent
//! inheritors (view) vs. update + re-copy pass (baseline).

use ccdb_baseline::CopyBaseline;
use ccdb_bench::workload::fanout_store;
use ccdb_core::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_propagation");
    for n in [1usize, 10, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("inheritance_update", n), &n, |b, &n| {
            let (mut st, interface, _) = fanout_store(n, 4, 4);
            let mut tick = 0i64;
            b.iter(|| {
                tick += 1;
                st.set_attr(interface, "A0", Value::Int(tick)).unwrap();
            });
        });
        g.bench_with_input(BenchmarkId::new("copy_update_propagate", n), &n, |b, &n| {
            let mut cb = CopyBaseline::new();
            let comp = cb.add_component(vec![
                ("A0", Value::Int(0)),
                ("A1", Value::Int(1)),
                ("A2", Value::Int(2)),
                ("A3", Value::Int(3)),
            ]);
            for _ in 0..n {
                cb.build_composite(&[comp], None);
            }
            let mut tick = 0i64;
            b.iter(|| {
                tick += 1;
                cb.update_component(comp, "A0", Value::Int(tick));
                cb.propagate();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
