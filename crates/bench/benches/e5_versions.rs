//! Criterion bench for E5: generic-reference refresh over version sets.

use ccdb_core::domain::Domain;
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::store::ObjectStore;
use ccdb_core::Value;
use ccdb_version::{EnvironmentRegistry, GenericBindings, GenericRef, Selector, VersionManager};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn setup(versions: usize, composites: usize) -> (ObjectStore, VersionManager, GenericBindings) {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![AttrDef::new("Length", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["Length".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Impl".into(),
        inheritor_in: vec!["AllOf_If".into()],
        ..Default::default()
    })
    .unwrap();
    let mut st = ObjectStore::new(c).unwrap();
    let mut mgr = VersionManager::new();
    mgr.create_set("Gate").unwrap();
    let mut prev = vec![];
    for v in 0..versions {
        let o = st
            .create_object("If", vec![("Length", Value::Int(v as i64))])
            .unwrap();
        let id = mgr.add_version("Gate", o, &prev).unwrap();
        prev = vec![id];
    }
    let mut gb = GenericBindings::new();
    for _ in 0..composites {
        let imp = st.create_object("Impl", vec![]).unwrap();
        gb.register(GenericRef {
            inheritor: imp,
            rel_type: "AllOf_If".into(),
            set: "Gate".into(),
            selector: Selector::Latest,
        });
    }
    (st, mgr, gb)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_versions");
    for (v, n) in [(8usize, 100usize), (64, 100), (8, 1000)] {
        g.bench_with_input(
            BenchmarkId::new("refresh_latest", format!("v{v}_c{n}")),
            &(v, n),
            |b, &(v, n)| {
                let (mut st, mgr, gb) = setup(v, n);
                let envs = EnvironmentRegistry::new();
                gb.refresh(&mut st, &mgr, &envs); // initial bind
                b.iter(|| gb.refresh(&mut st, &mgr, &envs));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
