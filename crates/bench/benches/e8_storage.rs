//! Criterion bench for E8: WAL-backed commit latency of the durable KV
//! substrate.

use ccdb_storage::kv::DurableKv;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_storage");
    g.sample_size(20);
    for size in [64usize, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("commit", size), &size, |b, &size| {
            let dir = tempfile::tempdir().unwrap();
            let kv = DurableKv::open(dir.path()).unwrap();
            let payload = vec![0xCCu8; size];
            let mut k = 100u64;
            b.iter(|| {
                k += 1;
                let tx = kv.begin().unwrap();
                kv.put(tx, k, &payload).unwrap();
                kv.commit(tx).unwrap();
            });
        });
        g.bench_with_input(BenchmarkId::new("read", size), &size, |b, &size| {
            let dir = tempfile::tempdir().unwrap();
            let kv = DurableKv::open(dir.path()).unwrap();
            let payload = vec![0xCCu8; size];
            let tx = kv.begin().unwrap();
            for k in 0..100 {
                kv.put(tx, k, &payload).unwrap();
            }
            kv.commit(tx).unwrap();
            let mut k = 0;
            b.iter(|| {
                k = (k + 1) % 100;
                std::hint::black_box(kv.get(k).unwrap());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
