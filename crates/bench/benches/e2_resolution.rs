//! Criterion bench for E2: inherited-attribute reads across chain depths,
//! with the effective-schema memo on/off.

use ccdb_bench::workload::chain_store;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_resolution");
    for depth in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("read_cached", depth), &depth, |b, &d| {
            let (st, leaf, _) = chain_store(d);
            b.iter(|| black_box(st.attr(leaf, "X").unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("read_uncached", depth), &depth, |b, &d| {
            let (st, leaf, _) = chain_store(d);
            st.set_schema_cache(false);
            b.iter(|| black_box(st.attr(leaf, "X").unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
