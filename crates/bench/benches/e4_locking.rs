//! Criterion bench for E4: cost of a lock-inheritance read (chain locking)
//! vs. a plain local read under the transaction layer.

use ccdb_bench::workload::fanout_store;
use ccdb_txn::txn::Database;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_locking");
    g.bench_function("txn_read_inherited_attr", |b| {
        let (st, _, imps) = fanout_store(1, 8, 4);
        let db = Database::new(st);
        b.iter(|| {
            let tx = db.begin("u");
            black_box(db.read_attr(&tx, imps[0], "A0").unwrap());
            db.commit(tx);
        });
    });
    g.bench_function("txn_read_local_attr", |b| {
        let (st, _, imps) = fanout_store(1, 8, 4);
        let db = Database::new(st);
        b.iter(|| {
            let tx = db.begin("u");
            black_box(db.read_attr(&tx, imps[0], "Local").unwrap());
            db.commit(tx);
        });
    });
    g.bench_function("txn_write_attr", |b| {
        let (st, interface, _) = fanout_store(1, 8, 4);
        let db = Database::new(st);
        let mut n = 0;
        b.iter(|| {
            n += 1;
            let tx = db.begin("u");
            db.write_attr(&tx, interface, "A7", ccdb_core::Value::Int(n))
                .unwrap();
            db.commit(tx);
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
