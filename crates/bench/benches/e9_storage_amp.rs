//! Criterion bench for E9: building reuse-heavy designs — shared
//! (inheritance) vs duplicated (copy) component data.

use ccdb_baseline::CopyBaseline;
use ccdb_bench::workload::{reuse_dag, rng, zipf_sample};
use ccdb_core::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_storage_amp");
    g.sample_size(20);
    for n in [50usize, 200] {
        g.bench_with_input(BenchmarkId::new("build_inheritance", n), &n, |b, &n| {
            b.iter(|| reuse_dag(20, n, 8, 16, 7));
        });
        g.bench_with_input(BenchmarkId::new("build_copy", n), &n, |b, &n| {
            b.iter(|| {
                let mut cb = CopyBaseline::new();
                let mut lib = Vec::new();
                for k in 0..20 {
                    let attrs: Vec<(String, Value)> = (0..16)
                        .map(|i| (format!("A{i}"), Value::Int((k * 1000 + i) as i64)))
                        .collect();
                    let refs: Vec<(&str, Value)> =
                        attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
                    lib.push(cb.add_component(refs));
                }
                let mut r = rng(7);
                for _ in 0..n {
                    let picks: Vec<_> = (0..8).map(|_| lib[zipf_sample(&mut r, 20)]).collect();
                    cb.build_composite(&picks, None);
                }
                cb
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
