//! Criterion bench for E3: enumerating the visible (permeable) attributes
//! of a 64-attribute component at varying permeability.

use ccdb_bench::workload::fanout_store;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_permeability");
    for k in [1usize, 8, 32, 64] {
        g.bench_with_input(BenchmarkId::new("enumerate_view", k), &k, |b, &k| {
            let (st, _, imps) = fanout_store(1, 64, k);
            let names: Vec<String> = (0..k).map(|i| format!("A{i}")).collect();
            b.iter(|| {
                for n in &names {
                    black_box(st.attr(imps[0], n).unwrap());
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
