//! Criterion bench for E6: expansion and footprint computation of nested
//! composites.

use ccdb_bench::workload::nested_tree;
use ccdb_core::expand::{expand, expansion_footprint};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_expansion");
    for (depth, fanout) in [(4usize, 2usize), (6, 2), (4, 4)] {
        let label = format!("d{depth}_f{fanout}");
        g.bench_with_input(
            BenchmarkId::new("expand", &label),
            &(depth, fanout),
            |b, &(d, f)| {
                let (st, root, _) = nested_tree(d, f);
                b.iter(|| black_box(expand(&st, root, usize::MAX).unwrap()));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("footprint", &label),
            &(depth, fanout),
            |b, &(d, f)| {
                let (st, root, _) = nested_tree(d, f);
                b.iter(|| black_box(expansion_footprint(&st, root).unwrap()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
