//! Criterion bench for E10: configuration capture and apply.

use ccdb_bench::workload::reuse_dag;
use ccdb_version::Configuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_configuration");
    g.sample_size(20);
    for n in [20usize, 100, 500] {
        g.bench_with_input(BenchmarkId::new("capture", n), &n, |b, &n| {
            let dag = reuse_dag(20, 1, n, 4, 11);
            let asm = dag
                .store
                .object(dag.composites[0][0])
                .unwrap()
                .owner
                .as_ref()
                .unwrap()
                .parent;
            b.iter(|| black_box(Configuration::capture("r", &dag.store, asm).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("apply_unchanged", n), &n, |b, &n| {
            let mut dag = reuse_dag(20, 1, n, 4, 11);
            let asm = dag
                .store
                .object(dag.composites[0][0])
                .unwrap()
                .owner
                .as_ref()
                .unwrap()
                .parent;
            let cfg = Configuration::capture("r", &dag.store, asm).unwrap();
            b.iter(|| black_box(cfg.apply(&mut dag.store)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
