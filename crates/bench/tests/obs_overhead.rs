//! Acceptance check: instrumentation overhead on the E2 resolution hot path
//! stays within 5% of the obs-disabled baseline. Ignored by default (it is
//! a timing measurement, not a functional test); run explicitly with
//! `cargo test --release -p ccdb-bench --test obs_overhead -- --ignored`.

use ccdb_bench::experiments::time_per_iter;
use ccdb_bench::workload::chain_store;

#[test]
#[ignore = "timing measurement; run in release mode on a quiet machine"]
fn resolution_overhead_within_five_percent() {
    let (st, leaf, _root) = chain_store(4);
    let iters = 100_000;
    let run = || {
        time_per_iter(iters, || {
            std::hint::black_box(st.attr(leaf, "X").unwrap());
        })
    };
    // Warm both paths, then interleave disabled/enabled rounds so clock
    // drift and cache effects hit both configurations equally. Each round
    // yields one paired on/off ratio; the median ratio is robust against
    // the occasional descheduling spike that poisons min- or mean-based
    // comparisons.
    for enabled in [false, true] {
        ccdb_obs::set_enabled(enabled);
        run();
    }
    let mut ratios = Vec::new();
    for _ in 0..15 {
        ccdb_obs::set_enabled(false);
        let off = run();
        ccdb_obs::set_enabled(true);
        let on = run();
        ratios.push(on / off);
    }
    ccdb_obs::set_enabled(true);
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead = ratios[ratios.len() / 2] - 1.0;
    println!(
        "median paired overhead over {} rounds: {:.2}%",
        ratios.len(),
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "instrumentation overhead {:.2}% > 5%",
        overhead * 100.0
    );
}

/// Paired check for the tracing-disabled configuration (the production
/// default: metrics on, trace collection off). Every `trace::span` call
/// site on the resolution path is reached and must fold to its one relaxed
/// load and branch — so resolution latency in this configuration stays
/// within 5% of the fully quiescent floor (all instrumentation off), even
/// with the resolution cache disabled so each read passes *all* call
/// sites, not just the cached-read root span.
#[test]
#[ignore = "timing measurement; run in release mode on a quiet machine"]
fn tracing_disabled_overhead_within_five_percent() {
    let (st, leaf, _root) = chain_store(4);
    st.set_resolution_cache(false);
    let iters = 100_000;
    let run = || {
        time_per_iter(iters, || {
            std::hint::black_box(st.attr(leaf, "X").unwrap());
        })
    };
    ccdb_obs::trace::set_tracing(false);
    for enabled in [false, true] {
        ccdb_obs::set_enabled(enabled);
        run();
    }
    let mut ratios = Vec::new();
    for _ in 0..15 {
        ccdb_obs::set_enabled(false);
        let floor = run();
        ccdb_obs::set_enabled(true);
        let disabled_tracing = run();
        ratios.push(disabled_tracing / floor);
    }
    ccdb_obs::set_enabled(true);
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead = ratios[ratios.len() / 2] - 1.0;
    println!(
        "median paired tracing-disabled overhead over {} rounds: {:.2}%",
        ratios.len(),
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "tracing-disabled overhead {:.2}% > 5%",
        overhead * 100.0
    );
}
