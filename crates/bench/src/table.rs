//! Minimal aligned-column table printer for experiment output.

/// A printable results table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + question).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Machine-readable form: `{"title", "headers", "rows"}`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
        })
    }
}

/// Format a duration in adaptive units.
pub fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Format a byte count in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b} B")
    } else if b < 1024 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("E0: demo", &["n", "value"]);
        t.row(vec!["1".into(), "short".into()]);
        t.row(vec!["1000".into(), "longer-cell".into()]);
        let s = t.render();
        assert!(s.contains("## E0: demo"));
        assert!(s.contains("n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_form_is_complete() {
        let mut t = Table::new("E0: demo", &["n", "value"]);
        t.row(vec!["1".into(), "x".into()]);
        let j = t.to_json();
        assert_eq!(j["title"], "E0: demo");
        assert_eq!(j["rows"][0][1], "x");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_nanos(500.0), "500 ns");
        assert_eq!(fmt_nanos(1500.0), "1.50 µs");
        assert_eq!(fmt_nanos(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
    }
}
