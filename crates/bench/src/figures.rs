//! Reproductions of the paper's five figures.
//!
//! The figures are schema/instance diagrams, not data plots; each function
//! builds exactly the situation a figure depicts — from the *verbatim paper
//! schemas* compiled by `ccdb-lang` — verifies the depicted relationships
//! with assertions, and returns a textual rendering. The `figures` binary
//! prints all of them.

use ccdb_core::expand::expand;
use ccdb_core::store::ObjectStore;
use ccdb_core::{CoreError, Surrogate, Value};
use ccdb_lang::paper::{chip_catalog, steel_catalog};

use crate::workload::steel_structure;

fn pin(st: &mut ObjectStore, owner: Surrogate, subclass: &str, io: &str, x: i64) -> Surrogate {
    st.create_subobject(
        owner,
        subclass,
        vec![
            ("InOut", Value::Enum(io.into())),
            ("PinLocation", Value::Point { x, y: 0 }),
        ],
    )
    .unwrap()
}

/// Figure 1: complex object type `Gate` and the complex object "Flip-Flop"
/// built from two NOR gates with wires across nesting levels.
pub fn figure1() -> String {
    let mut st = ObjectStore::new(chip_catalog().unwrap()).unwrap();
    let ff = st
        .create_object(
            "Gate",
            vec![
                ("Length", Value::Int(8)),
                ("Width", Value::Int(4)),
                (
                    "Function",
                    Value::Matrix(vec![
                        vec![Value::Bool(false), Value::Bool(true)],
                        vec![Value::Bool(true), Value::Bool(false)],
                    ]),
                ),
            ],
        )
        .unwrap();
    // External pins of the flip-flop: R, S inputs and Q output.
    let r_in = pin(&mut st, ff, "Pins", "IN", 0);
    let s_in = pin(&mut st, ff, "Pins", "IN", 1);
    let q_out = pin(&mut st, ff, "Pins", "OUT", 2);

    // Two NOR subgates, each with 2 inputs + 1 output.
    let subgate = |st: &mut ObjectStore, x: i64| {
        let g = st
            .create_subobject(
                ff,
                "SubGates",
                vec![
                    ("Length", Value::Int(3)),
                    ("Width", Value::Int(2)),
                    ("Function", Value::Enum("NOR".into())),
                    ("GatePosition", Value::Point { x, y: 0 }),
                ],
            )
            .unwrap();
        let i1 = pin(st, g, "Pins", "IN", x);
        let i2 = pin(st, g, "Pins", "IN", x + 1);
        let o = pin(st, g, "Pins", "OUT", x + 2);
        (g, i1, i2, o)
    };
    let (_g1, g1_i1, g1_i2, g1_o) = subgate(&mut st, 0);
    let (_g2, g2_i1, g2_i2, g2_o) = subgate(&mut st, 10);

    // Wires: R→g1.i1, S→g2.i2, cross-coupling g1.o→g2.i1, g2.o→g1.i2,
    // and g1.o→Q (pins of gates related to pins of subgates, as in the
    // figure).
    for (a, b) in [
        (r_in, g1_i1),
        (s_in, g2_i2),
        (g1_o, g2_i1),
        (g2_o, g1_i2),
        (g1_o, q_out),
    ] {
        st.create_subrel(
            ff,
            "Wires",
            vec![("Pin1", vec![a]), ("Pin2", vec![b])],
            vec![("Corners", Value::List(vec![Value::Point { x: 0, y: 0 }]))],
        )
        .unwrap();
    }

    // The `where` clause of Gate.Wires holds for every wire.
    let violations = st.check_constraints(ff).unwrap();
    assert!(violations.is_empty(), "{violations:?}");
    // Subgate pin-count constraints hold.
    assert!(st.check_all().unwrap().is_empty());

    let mut out = String::from(
        "Figure 1: complex object type Gate; complex object \"Flip-Flop\"\n\
         (two NOR subgates, wires relate pins across nesting levels)\n\n",
    );
    out.push_str(&expand(&st, ff, usize::MAX).unwrap().render());
    out.push_str("\nAll Gate/ElementaryGate constraints hold.\n");
    out
}

/// Figure 2: `GateInterface` ↔ `GateImplementation` through
/// `AllOf_GateInterface` — inherited data, read-only on the inheritor side,
/// transmitter updates instantly visible.
pub fn figure2() -> String {
    let mut st = ObjectStore::new(chip_catalog().unwrap()).unwrap();
    // Interface hierarchy: abstract pins level + concrete interface.
    let if_i = st.create_object("GateInterface_I", vec![]).unwrap();
    pin(&mut st, if_i, "Pins", "IN", 0);
    pin(&mut st, if_i, "Pins", "IN", 1);
    pin(&mut st, if_i, "Pins", "OUT", 2);
    let gate_if = st
        .create_object(
            "GateInterface",
            vec![("Length", Value::Int(10)), ("Width", Value::Int(4))],
        )
        .unwrap();
    st.bind("AllOf_GateInterface_I", if_i, gate_if, vec![])
        .unwrap();

    // Two implementations (versions) of the same interface.
    let imp = |st: &mut ObjectStore, tb: i64| {
        let i = st
            .create_object(
                "GateImplementation",
                vec![
                    ("Function", Value::Matrix(vec![vec![Value::Bool(true)]])),
                    ("TimeBehavior", Value::Int(tb)),
                ],
            )
            .unwrap();
        st.bind("AllOf_GateInterface", gate_if, i, vec![]).unwrap();
        i
    };
    let imp1 = imp(&mut st, 5);
    let imp2 = imp(&mut st, 9);

    // Both implementations show the interface's data…
    assert_eq!(st.attr(imp1, "Length").unwrap(), Value::Int(10));
    assert_eq!(st.subclass_members(imp2, "Pins").unwrap().len(), 3);
    // …it is read-only in the implementations…
    assert!(matches!(
        st.set_attr(imp1, "Length", Value::Int(11)),
        Err(CoreError::InheritedReadOnly { .. })
    ));
    // …and an interface update is instantly visible in both.
    st.set_attr(gate_if, "Length", Value::Int(12)).unwrap();
    assert_eq!(st.attr(imp1, "Length").unwrap(), Value::Int(12));
    assert_eq!(st.attr(imp2, "Length").unwrap(), Value::Int(12));
    // The adaptation flags on both inheritance relationships were raised.
    let flagged = st
        .inheritance_rels_of(gate_if)
        .iter()
        .filter(|r| st.needs_adaptation(**r).unwrap())
        .count();
    assert_eq!(flagged, 2);

    let mut out =
        String::from("Figure 2: GateInterface and GateImplementation via AllOf_GateInterface\n\n");
    out.push_str(&expand(&st, imp1, usize::MAX).unwrap().render());
    out.push_str(
        "\nChecks: values inherited ✓  read-only in inheritor ✓  update instantly visible ✓\n\
         adaptation flags raised on both bindings ✓\n",
    );
    out
}

/// Figure 3: the component relationship and the interface relationship,
/// both modelled by the inheritance relationship simultaneously.
pub fn figure3() -> String {
    let mut st = ObjectStore::new(chip_catalog().unwrap()).unwrap();
    // The component: a previously designed gate with its interface.
    let nand_if = st
        .create_object(
            "GateInterface",
            vec![("Length", Value::Int(3)), ("Width", Value::Int(2))],
        )
        .unwrap();
    // The composite: its own interface + an implementation whose SubGates
    // member inherits from the *component's* interface.
    let comp_if = st
        .create_object(
            "GateInterface",
            vec![("Length", Value::Int(20)), ("Width", Value::Int(8))],
        )
        .unwrap();
    let comp_impl = st
        .create_object(
            "GateImplementation",
            vec![("Function", Value::Matrix(vec![vec![Value::Bool(true)]]))],
        )
        .unwrap();
    // Interface relationship (composite ↔ its interface).
    st.bind("AllOf_GateInterface", comp_if, comp_impl, vec![])
        .unwrap();
    // Component relationship (subobject ↔ component interface).
    let sub = st
        .create_subobject(
            comp_impl,
            "SubGates",
            vec![("GateLocation", Value::Point { x: 4, y: 2 })],
        )
        .unwrap();
    st.bind("AllOf_GateInterface", nand_if, sub, vec![])
        .unwrap();

    // The composite sees its interface's data; the subobject sees the
    // component's data *plus* its own placement.
    assert_eq!(st.attr(comp_impl, "Length").unwrap(), Value::Int(20));
    assert_eq!(st.attr(sub, "Length").unwrap(), Value::Int(3));
    assert_eq!(
        st.attr(sub, "GateLocation").unwrap(),
        Value::Point { x: 4, y: 2 }
    );
    // Updating the component updates the view inside the composite.
    st.set_attr(nand_if, "Length", Value::Int(4)).unwrap();
    assert_eq!(st.attr(sub, "Length").unwrap(), Value::Int(4));

    let mut out = String::from(
        "Figure 3: component relationship and interface relationship,\n\
         both realized by AllOf_GateInterface (one mechanism)\n\n",
    );
    out.push_str(&expand(&st, comp_impl, usize::MAX).unwrap().render());
    out.push_str("\nChecks: interface data inherited by composite ✓  component data visible in subobject ✓\n");
    out
}

/// Figure 4: one `GateInterface` object simultaneously in the roles of
/// *interface* (of its implementation) and *component* (inside another
/// implementation).
pub fn figure4() -> String {
    let mut st = ObjectStore::new(chip_catalog().unwrap()).unwrap();
    let gate1_if = st
        .create_object(
            "GateInterface",
            vec![("Length", Value::Int(5)), ("Width", Value::Int(3))],
        )
        .unwrap();
    // Role 1: interface of its own implementation.
    let gate1_impl = st
        .create_object(
            "GateImplementation",
            vec![("Function", Value::Matrix(vec![vec![Value::Bool(false)]]))],
        )
        .unwrap();
    st.bind("AllOf_GateInterface", gate1_if, gate1_impl, vec![])
        .unwrap();
    // Role 2: component of a different implementation.
    let other_impl = st
        .create_object(
            "GateImplementation",
            vec![("Function", Value::Matrix(vec![vec![Value::Bool(true)]]))],
        )
        .unwrap();
    let sub = st
        .create_subobject(
            other_impl,
            "SubGates",
            vec![("GateLocation", Value::Point { x: 1, y: 1 })],
        )
        .unwrap();
    st.bind("AllOf_GateInterface", gate1_if, sub, vec![])
        .unwrap();

    // One transmitter, two inheritance relationships of the same type.
    assert_eq!(st.inheritance_rels_of(gate1_if).len(), 2);
    // One update reaches both roles.
    st.set_attr(gate1_if, "Width", Value::Int(7)).unwrap();
    assert_eq!(st.attr(gate1_impl, "Width").unwrap(), Value::Int(7));
    assert_eq!(st.attr(sub, "Width").unwrap(), Value::Int(7));

    let mut out = String::from(
        "Figure 4: GateInterface \"Gate1\" in the roles of interface (of its\n\
         implementation) and component (of another implementation)\n\n",
    );
    out.push_str("Implementation of Gate1:\n");
    out.push_str(&expand(&st, gate1_impl, usize::MAX).unwrap().render());
    out.push_str("\nComposite using Gate1 as component:\n");
    out.push_str(&expand(&st, other_impl, usize::MAX).unwrap().render());
    out.push_str("\nChecks: both roles fed by the same transmitter ✓  one update reaches both ✓\n");
    out
}

/// Figure 5: weight-carrying structures (§5) — girders, plates, bores, and
/// screwings with embedded bolts/nuts, all constraints checked.
pub fn figure5() -> String {
    let (st, structure) = steel_structure(2);
    let violations = st.check_all().unwrap();
    assert!(violations.is_empty(), "{violations:?}");

    // Break it to show the constraints bite: shorten the bolt.
    let (mut st2, _) = steel_structure(1);
    let bolt = st2
        .surrogates()
        .find(|s| st2.object(*s).unwrap().type_name == "BoltType")
        .unwrap();
    st2.set_attr(bolt, "Length", Value::Int(2)).unwrap();
    let broken = st2.check_all().unwrap();
    assert!(!broken.is_empty());

    let mut out =
        String::from("Figure 5: weight-carrying structure (steel construction, section 5)\n\n");
    out.push_str(&expand(&st, structure, usize::MAX).unwrap().render());
    out.push_str(&format!(
        "\nChecks: all ScrewingType/WeightCarrying_Structure constraints hold ✓\n\
         shortening the bolt violates {} constraint(s) ✓ (e.g. `{}`)\n",
        broken.len(),
        broken[0].constraint
    ));
    // Exercise the steel catalog helper too.
    assert!(steel_catalog().is_ok());
    out
}

/// All five figures in order.
pub fn all_figures() -> Vec<(String, String)> {
    vec![
        ("F1".into(), figure1()),
        ("F2".into(), figure2()),
        ("F3".into(), figure3()),
        ("F4".into(), figure4()),
        ("F5".into(), figure5()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_flip_flop() {
        let out = figure1();
        assert!(out.contains("Flip-Flop"));
        assert!(out.contains("[SubGates]"));
        assert!(out.contains("[Wires]"));
    }

    #[test]
    fn figure2_interface_implementation() {
        let out = figure2();
        assert!(out.contains("(inherited)"));
        assert!(out.contains("instantly visible"));
    }

    #[test]
    fn figure3_dual_relationships() {
        let out = figure3();
        assert!(out.contains("component data visible"));
    }

    #[test]
    fn figure4_two_roles() {
        let out = figure4();
        assert!(out.contains("one update reaches both"));
    }

    #[test]
    fn figure5_steel() {
        let out = figure5();
        assert!(out.contains("Screwings") || out.contains("constraints hold"));
    }
}
