//! E5 — component-version selection strategies for generic relationships.
//!
//! Paper claim (§6): with generic relationships "the selection of component
//! versions is deferred to assembly-time", controlled top-down (query),
//! bottom-up (default) or by environment. Measured: re-resolution time of C
//! generic references over a V-version design object for each strategy, and
//! how many composites rebind when a new version is released.

use ccdb_core::domain::Domain;
use ccdb_core::expr::{BinOp, Expr, PathExpr};
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::store::ObjectStore;
use ccdb_core::Value;
use ccdb_version::{
    EnvironmentRegistry, GenericBindings, GenericRef, RebindOutcome, Selector, VersionManager,
    VersionStatus,
};

use crate::table::{fmt_nanos, Table};

fn setup(versions: usize, composites: usize) -> (ObjectStore, VersionManager, GenericBindings) {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![AttrDef::new("Length", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["Length".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Impl".into(),
        inheritor_in: vec!["AllOf_If".into()],
        ..Default::default()
    })
    .unwrap();
    let mut st = ObjectStore::new(c).unwrap();
    let mut mgr = VersionManager::new();
    mgr.create_set("Gate").unwrap();
    let mut prev = vec![];
    for v in 0..versions {
        let o = st
            .create_object("If", vec![("Length", Value::Int(v as i64))])
            .unwrap();
        let id = mgr.add_version("Gate", o, &prev).unwrap();
        mgr.set_status("Gate", id, VersionStatus::Released).unwrap();
        prev = vec![id];
    }
    let mut gb = GenericBindings::new();
    for _ in 0..composites {
        let imp = st.create_object("Impl", vec![]).unwrap();
        gb.register(GenericRef {
            inheritor: imp,
            rel_type: "AllOf_If".into(),
            set: "Gate".into(),
            selector: Selector::Latest,
        });
    }
    (st, mgr, gb)
}

/// Run E5.
pub fn run(quick: bool) -> Table {
    let sweeps: &[(usize, usize)] = if quick {
        &[(4, 10)]
    } else {
        &[(4, 100), (16, 100), (64, 100), (16, 1000)]
    };
    let mut t = Table::new(
        "E5: generic-relationship refresh — selection strategies (V versions, C composites)",
        &[
            "V",
            "C",
            "bottom-up default",
            "latest",
            "top-down query",
            "environment",
            "rebinds on new release",
        ],
    );
    for &(v, c) in sweeps {
        let (mut st, mgr, gb) = setup(v, c);
        let envs = {
            let mut e = EnvironmentRegistry::new();
            e.pin("cfg", "Gate", mgr.set("Gate").unwrap().latest().unwrap());
            e
        };
        // Bind everything once so later refreshes measure re-resolution.
        gb.refresh(&mut st, &mgr, &envs);

        let time_selector = |st: &mut ObjectStore, selector: Selector| {
            let mut gb2 = GenericBindings::new();
            for r in gb.refs() {
                gb2.register(GenericRef {
                    selector: selector.clone(),
                    ..r.clone()
                });
            }
            let start = std::time::Instant::now();
            gb2.refresh(st, &mgr, &envs);
            start.elapsed().as_nanos() as f64
        };
        let t_default = time_selector(&mut st, Selector::Default);
        let t_latest = time_selector(&mut st, Selector::Latest);
        let query = Expr::bin(
            BinOp::Ge,
            Expr::Path(PathExpr::self_path(&["Length"])),
            Expr::int((v / 2) as i64),
        );
        let t_query = time_selector(&mut st, Selector::Query(query));
        let t_env = time_selector(&mut st, Selector::Environment("cfg".into()));

        // New release appears → how many composites rebind on refresh?
        let (mut st2, mut mgr2, gb2) = setup(v, c);
        let envs2 = EnvironmentRegistry::new();
        gb2.refresh(&mut st2, &mgr2, &envs2);
        let newest = st2
            .create_object("If", vec![("Length", Value::Int(999))])
            .unwrap();
        let latest = mgr2.set("Gate").unwrap().latest().unwrap();
        mgr2.add_version("Gate", newest, &[latest]).unwrap();
        let rebinds = gb2
            .refresh(&mut st2, &mgr2, &envs2)
            .into_iter()
            .filter(|(_, o)| matches!(o, RebindOutcome::Rebound { .. }))
            .count();

        t.row(vec![
            v.to_string(),
            c.to_string(),
            fmt_nanos(t_default),
            fmt_nanos(t_latest),
            fmt_nanos(t_query),
            fmt_nanos(t_env),
            format!("{rebinds}/{c}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_composites_rebind_on_release() {
        let t = run(true);
        assert_eq!(t.rows[0][6], "10/10");
    }
}
