//! E6 — expansion and cascade delete of deep composites.
//!
//! §3: "all subobjects depend on the complex object, they are deleted with
//! the complex object"; §6: expansion materializes a composite with its
//! components. Measured: expansion time, expansion-locking footprint size,
//! and cascade-delete time over depth/fan-out sweeps.

use ccdb_core::expand::{expand, expansion_footprint};

use crate::table::{fmt_nanos, Table};
use crate::workload::nested_tree;

/// Run E6.
pub fn run(quick: bool) -> Table {
    let sweeps: &[(usize, usize)] = if quick {
        &[(3, 2), (2, 4)]
    } else {
        &[(3, 2), (6, 2), (3, 4), (8, 2), (4, 6)]
    };
    let mut t = Table::new(
        "E6: expansion & cascade delete over nested composites",
        &[
            "depth",
            "fanout",
            "objects",
            "expand",
            "footprint size",
            "cascade delete",
        ],
    );
    for &(depth, fanout) in sweeps {
        let (st, root, count) = nested_tree(depth, fanout);
        let start = std::time::Instant::now();
        let e = expand(&st, root, usize::MAX).unwrap();
        let expand_ns = start.elapsed().as_nanos() as f64;
        assert_eq!(e.object_count(), count);
        let fp = expansion_footprint(&st, root).unwrap();

        let (mut st2, root2, _) = nested_tree(depth, fanout);
        let start = std::time::Instant::now();
        st2.delete(root2).unwrap();
        let delete_ns = start.elapsed().as_nanos() as f64;
        assert_eq!(st2.object_count(), 0);

        t.row(vec![
            depth.to_string(),
            fanout.to_string(),
            count.to_string(),
            fmt_nanos(expand_ns),
            fp.len().to_string(),
            fmt_nanos(delete_ns),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_covers_all_objects() {
        let t = run(true);
        for row in &t.rows {
            assert_eq!(row[2], row[4], "footprint = whole tree for pure nesting");
        }
    }
}
