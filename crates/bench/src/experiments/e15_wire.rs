//! E15 — wire protocol v2: what do binary framing and a poll-based
//! reader buy?
//!
//! Two tables:
//!
//! - [`run`] compares the v1 JSON dialect against the v2 binary framing
//!   on the same single-client closed loop (the RTT that a CAD tool's
//!   interactive resolution path actually feels), plus the
//!   bytes-per-request each dialect puts on the wire. The encoded sizes
//!   are computed from the framing itself, so they are deterministic;
//!   the RTTs are measured.
//! - [`run_idle`] parks a crowd of *idle* sessions (quick: 512; full:
//!   10 000) on one server and reports what they cost: OS threads
//!   (must not grow — the poll loop multiplexes every connection),
//!   resident memory, and file descriptors. This is the paper's CAD
//!   working-session shape: designers hold sessions open for hours and
//!   touch them rarely.
//!
//! Thread/RSS/fd figures come from `/proc/self`; on platforms without
//! procfs those rows render as `n/a` and the assertions are skipped.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ccdb_core::shared::SharedStore;
use ccdb_core::Value;
use ccdb_server::{Client, Request, Server, ServerConfig, HELLO_V2};
use serde_json::Value as Json;

use crate::table::Table;
use crate::workload::fanout_store;

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One single-client closed loop over the 90/10 mix; returns (sorted
/// per-op RTTs ns, errors).
fn rtt_loop(
    addr: std::net::SocketAddr,
    proto: u8,
    interface: ccdb_core::Surrogate,
    imps: &[ccdb_core::Surrogate],
    requests: u64,
) -> (Vec<u64>, u64) {
    let mut c = match Client::connect_proto(addr, proto) {
        Ok(c) => c,
        Err(_) => return (Vec::new(), requests),
    };
    if c.set_read_timeout(Some(Duration::from_secs(30))).is_err() {
        return (Vec::new(), requests);
    }
    let mut lat = Vec::with_capacity(requests as usize);
    let mut errors = 0u64;
    for n in 0..requests {
        let start = Instant::now();
        let outcome = if n % 10 == 9 {
            c.set_attr(interface, "A0", Value::Int(n as i64))
        } else {
            c.attr(imps[n as usize % imps.len()], "A0").map(|_| ())
        };
        match outcome {
            Ok(()) => lat.push(start.elapsed().as_nanos() as u64),
            Err(_) => errors += 1,
        }
    }
    lat.sort_unstable();
    (lat, errors)
}

/// The encoded on-wire size of `req` under each dialect, framing
/// included: (v1 bytes, v2 bytes). Deterministic — no sockets involved.
fn wire_sizes(req: &Request) -> (u64, u64) {
    let v1 = 4 + req.to_json().to_json_string().len() as u64;
    let v2 = req
        .encode_v2()
        .map(|b| 4 + b.len() as u64)
        .unwrap_or_default();
    (v1, v2)
}

/// Run E15 (dialect comparison): single-client RTT and bytes/request,
/// v1 JSON vs v2 binary.
pub fn run(quick: bool) -> Table {
    let requests: u64 = if quick { 400 } else { 4_000 };
    let n_imps = if quick { 64 } else { 256 };

    let (st, interface, imps) = fanout_store(n_imps, 4, 4);
    let server = Server::start(
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            ..ServerConfig::default()
        },
        SharedStore::from_store(st),
    )
    .expect("server binds");
    let addr = server.local_addr();

    // Warm the resolution path once so neither dialect pays first-touch
    // compilation/caching costs.
    let (_, warm_errors) = rtt_loop(addr, 1, interface, &imps, 20);

    let (v1_lat, v1_errors) = rtt_loop(addr, 1, interface, &imps, requests);
    let (v2_lat, v2_errors) = rtt_loop(addr, 2, interface, &imps, requests);
    server.shutdown();

    // The read that dominates the mix, encoded under both dialects.
    let read_req = Request {
        id: 1,
        verb: "attr".into(),
        params: Json::Object(vec![
            ("obj".into(), Json::UInt(imps[0].0)),
            ("name".into(), Json::String("A0".into())),
        ]),
        trace: None,
    };
    let (v1_bytes, v2_bytes) = wire_sizes(&read_req);

    let mut t = Table::new(
        "E15: wire dialects — v1 JSON vs v2 binary (single client, 90/10 mix)",
        &["metric", "v1 json", "v2 binary", "v2/v1"],
    );
    let mean = |l: &[u64]| l.iter().sum::<u64>() as f64 / l.len().max(1) as f64;
    let (m1, m2) = (mean(&v1_lat), mean(&v2_lat));
    t.row(vec![
        "rtt mean".into(),
        format!("{:.1} us", m1 / 1e3),
        format!("{:.1} us", m2 / 1e3),
        format!("{:.2}x", m2 / m1.max(1.0)),
    ]);
    for (name, q) in [("rtt p50", 0.50), ("rtt p95", 0.95)] {
        let (q1, q2) = (quantile(&v1_lat, q), quantile(&v2_lat, q));
        t.row(vec![
            name.into(),
            format!("{:.1} us", q1 as f64 / 1e3),
            format!("{:.1} us", q2 as f64 / 1e3),
            format!("{:.2}x", q2 as f64 / (q1 as f64).max(1.0)),
        ]);
    }
    t.row(vec![
        "attr request bytes".into(),
        v1_bytes.to_string(),
        v2_bytes.to_string(),
        format!("{:.2}x", v2_bytes as f64 / v1_bytes as f64),
    ]);
    t.row(vec![
        "requests".into(),
        v1_lat.len().to_string(),
        v2_lat.len().to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "errors".into(),
        (v1_errors + warm_errors).to_string(),
        v2_errors.to_string(),
        "-".into(),
    ]);
    t
}

/// A field from `/proc/self/status` (`Threads`, `VmRSS` in kB), when
/// procfs is available.
fn proc_status(field: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

/// Open file descriptors of this process, when procfs is available.
fn proc_fds() -> Option<u64> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count() as u64)
}

fn fmt_opt(v: Option<u64>, unit: &str) -> String {
    v.map(|v| format!("{v}{unit}"))
        .unwrap_or_else(|| "n/a".into())
}

/// Run E15 (idle-session cost): park many idle v2 sessions on one
/// server and report threads / RSS / fds. The poll-based reader means
/// the thread count must stay flat no matter how many sessions exist.
pub fn run_idle(quick: bool) -> Table {
    let requested: usize = if quick { 512 } else { 10_000 };
    // Each session costs three fds here: the client end plus, server-side,
    // the stream and its writer dup (both ends live in this process).
    // Ask for headroom first and scale down to what the OS actually
    // grants — oversubscribing would wedge `accept()` on EMFILE.
    let granted = polling::raise_nofile_limit((requested as u64) * 3 + 2_000)
        .or_else(|_| polling::nofile_limit().map(|(soft, _)| soft))
        .unwrap_or(4_096);
    let sessions = requested.min((granted.saturating_sub(2_000) / 3) as usize);

    let (st, interface, imps) = fanout_store(16, 2, 2);
    let server = Server::start(
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            // The whole point is sessions that sit idle; never reap them
            // mid-measurement.
            idle_timeout: Duration::from_secs(600),
            ..ServerConfig::default()
        },
        SharedStore::from_store(st),
    )
    .expect("server binds");
    let addr = server.local_addr();

    let threads_before = proc_status("Threads");
    let rss_before = proc_status("VmRSS");

    // Park the crowd: connect, speak the v2 hello (its ack round-trips
    // through the event loop, so the session is fully registered), then
    // go silent.
    let mut parked: Vec<TcpStream> = Vec::with_capacity(sessions);
    let mut connect_failures = 0u64;
    for _ in 0..sessions {
        let ok = (|| -> std::io::Result<TcpStream> {
            let mut s = TcpStream::connect(addr)?;
            // Bounded wait: if the server cannot accept (e.g. out of
            // fds), count a failure instead of blocking forever.
            s.set_read_timeout(Some(Duration::from_secs(10)))?;
            s.write_all(&HELLO_V2)?;
            let mut ack = [0u8; 4];
            s.read_exact(&mut ack)?;
            s.set_read_timeout(None)?;
            Ok(s)
        })();
        match ok {
            Ok(s) => parked.push(s),
            Err(_) => {
                // One failure means the fd budget is gone; retrying the
                // rest would only time out one by one.
                connect_failures = (sessions - parked.len()) as u64;
                break;
            }
        }
    }

    let threads_after = proc_status("Threads");
    let rss_after = proc_status("VmRSS");
    let fds = proc_fds();

    // The server must still answer promptly with the crowd parked.
    let live_rtt = (|| -> Result<u64, String> {
        let mut c = Client::connect_proto(addr, 2).map_err(|e| e.to_string())?;
        c.set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let start = Instant::now();
        c.attr(imps[0], "A0").map_err(|e| e.to_string())?;
        let _ = interface;
        Ok(start.elapsed().as_nanos() as u64)
    })();

    drop(parked);
    server.shutdown();

    let mut t = Table::new(
        "E15: idle-session cost (poll-based reader, v2 sessions parked silent)",
        &["metric", "value"],
    );
    t.row(vec!["sessions requested".into(), requested.to_string()]);
    t.row(vec![
        "idle sessions".into(),
        parked_count(sessions, connect_failures),
    ]);
    t.row(vec![
        "connect failures".into(),
        connect_failures.to_string(),
    ]);
    t.row(vec!["threads before".into(), fmt_opt(threads_before, "")]);
    t.row(vec!["threads after".into(), fmt_opt(threads_after, "")]);
    let thread_delta = match (threads_before, threads_after) {
        (Some(b), Some(a)) => Some(a.saturating_sub(b)),
        _ => None,
    };
    t.row(vec!["thread delta".into(), fmt_opt(thread_delta, "")]);
    t.row(vec!["rss before".into(), fmt_opt(rss_before, " kB")]);
    t.row(vec!["rss after".into(), fmt_opt(rss_after, " kB")]);
    let per_session = match (rss_before, rss_after) {
        (Some(b), Some(a)) if sessions > 0 => Some(a.saturating_sub(b) * 1024 / sessions as u64),
        _ => None,
    };
    t.row(vec!["rss per session".into(), fmt_opt(per_session, " B")]);
    t.row(vec!["process fds".into(), fmt_opt(fds, "")]);
    t.row(vec![
        "live rtt under crowd".into(),
        match live_rtt {
            Ok(ns) => format!("{:.1} us", ns as f64 / 1e3),
            Err(e) => format!("failed: {e}"),
        },
    ]);
    t
}

fn parked_count(requested: usize, failures: u64) -> String {
    (requested as u64 - failures.min(requested as u64)).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_framing_is_smaller_and_no_errors() {
        let t = run(true);
        let get = |name: &str| -> &Vec<String> {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("no `{name}` row in {:?}", t.rows))
        };
        assert_eq!(get("errors")[1], "0", "{:?}", t.rows);
        assert_eq!(get("errors")[2], "0", "{:?}", t.rows);
        let v1: u64 = get("attr request bytes")[1].parse().unwrap();
        let v2: u64 = get("attr request bytes")[2].parse().unwrap();
        assert!(
            v2 < v1,
            "binary framing must be smaller than JSON: v1={v1} v2={v2}"
        );
        // Both dialects completed the full loop.
        assert_eq!(get("requests")[1], "400");
        assert_eq!(get("requests")[2], "400");
    }

    #[test]
    fn idle_sessions_do_not_cost_threads() {
        let t = run_idle(true);
        let get = |name: &str| -> &str {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[1].as_str())
                .unwrap_or_else(|| panic!("no `{name}` row in {:?}", t.rows))
        };
        assert_eq!(get("connect failures"), "0", "{:?}", t.rows);
        assert!(get("live rtt under crowd").ends_with("us"), "{:?}", t.rows);
        // Thread-per-connection would add ~512 here; the poll loop adds
        // none. Tolerate a few threads from concurrently running tests
        // in this process.
        if get("thread delta") != "n/a" {
            let delta: u64 = get("thread delta").parse().unwrap();
            assert!(
                delta < 64,
                "idle sessions must not spawn reader threads (delta {delta}): {:?}",
                t.rows
            );
        }
    }
}
