//! E17 — MVCC snapshot reads: reader threads are never blocked by writers.
//!
//! Pre-MVCC, the shared store was one `RwLock<ObjectStore>`: a write cycle
//! excluded every reader for its whole duration, so the E12 mixed load
//! showed shared-mode store-lock *wait* growing with writer pressure. The
//! snapshot store publishes immutable `Arc<ObjectStore>` versions instead:
//! a reader pins the current snapshot with one probed read (nanoseconds)
//! and then resolves against it lock-free, no matter how long the writer's
//! copy-on-write cycle runs.
//!
//! E17 sweeps reader-thread counts under the E12 mixed shape — continuous
//! transmitter writes racing resolved reads — and decomposes each reader's
//! time with the thread-local snapshot-wait probe. The acceptance bar is
//! the MVCC claim itself: mean snapshot-acquire wait per read stays ~0
//! (microseconds at worst) while the writer publishes versions as fast as
//! it can, and read throughput scales with reader threads instead of
//! flat-lining behind the writer's exclusive lock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;
use std::time::Instant;

use ccdb_core::shared::SharedStore;
use ccdb_core::{lockprobe, Value};

use crate::table::Table;
use crate::workload::fanout_store;

/// Run E17: snapshot-acquire wait and read throughput vs reader threads,
/// with a saturating writer publishing versions throughout.
pub fn run(quick: bool) -> Table {
    let reader_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    let reads_per_thread: u64 = if quick { 2_000 } else { 20_000 };
    let n_imps = if quick { 64 } else { 256 };

    let (st, interface, imps) = fanout_store(n_imps, 4, 4);
    let shared = SharedStore::from_store(st);

    let mut t = Table::new(
        "E17: MVCC snapshot reads vs a saturating writer (snapshot-acquire wait per read)",
        &[
            "readers",
            "reads",
            "reads/s",
            "snapwait mean",
            "snapwait worst-thread",
            "versions published",
        ],
    );
    for &readers in reader_counts {
        let stop = AtomicBool::new(false);
        let total_wait = AtomicU64::new(0);
        let worst_wait = AtomicU64::new(0);
        let v_before = shared.published_version();
        let start = Instant::now();
        thread::scope(|scope| {
            // The writer: continuous transmitter updates, each a full
            // copy-on-write publish cycle invalidating the imps' chains.
            let writer_store = shared.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut n = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    writer_store
                        .set_attr(interface, "A0", Value::Int(n))
                        .unwrap();
                    n += 1;
                    // Quick mode runs inside the parallel test suite; a
                    // core-saturating spin would perturb the other perf
                    // guards (E16's overhead arms), and version churn is
                    // all the readers need. Full runs saturate for real.
                    if quick {
                        thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            });
            let handles: Vec<_> = (0..readers)
                .map(|r| {
                    let store = shared.clone();
                    let imps = &imps;
                    let (total_wait, worst_wait) = (&total_wait, &worst_wait);
                    scope.spawn(move || {
                        let wait0 = lockprobe::thread_snapshot_wait_ns();
                        for n in 0..reads_per_thread {
                            let imp = imps[(r as u64 * 7919 + n) as usize % imps.len()];
                            let v = store.attr(imp, "A0").unwrap();
                            assert!(matches!(v, Value::Int(_)));
                        }
                        let waited = lockprobe::thread_snapshot_wait_ns() - wait0;
                        total_wait.fetch_add(waited, Ordering::Relaxed);
                        worst_wait.fetch_max(waited, Ordering::Relaxed);
                    })
                })
                .collect();
            // Keep the writer publishing until every reader is done, so
            // all reads really do race live copy-on-write cycles.
            for h in handles {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        let elapsed = start.elapsed();

        let reads = readers as u64 * reads_per_thread;
        let mean_wait = total_wait.load(Ordering::Relaxed) as f64 / reads as f64;
        let worst = worst_wait.load(Ordering::Relaxed) as f64 / reads_per_thread as f64;
        t.row(vec![
            readers.to_string(),
            reads.to_string(),
            format!("{:.0}", reads as f64 / elapsed.as_secs_f64().max(1e-9)),
            format!("{mean_wait:.0} ns/read"),
            format!("{worst:.0} ns/read"),
            (shared.published_version() - v_before).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_wait_stays_negligible_under_writer_pressure() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let readers: u64 = row[0].parse().unwrap();
            let reads: u64 = row[1].parse().unwrap();
            assert_eq!(reads, readers * 2_000, "lost reads: {row:?}");
            // The MVCC claim: pinning a snapshot costs nanoseconds even
            // while a writer publishes continuously. The bound is loose
            // (50µs/read) to stay robust on loaded CI machines — the
            // pre-MVCC RwLock shape measured *milliseconds* here.
            let mean: f64 = row[3].strip_suffix(" ns/read").unwrap().parse().unwrap();
            assert!(mean < 50_000.0, "snapshot-acquire wait is not ~0: {row:?}");
            // The writer was never starved: versions kept publishing.
            let published: u64 = row[5].parse().unwrap();
            assert!(published > 0, "writer published nothing: {row:?}");
        }
    }
}
