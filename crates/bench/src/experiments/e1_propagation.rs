//! E1 — update propagation: view inheritance vs. copy-based composition.
//!
//! Paper claim (§2, problem 1): with copies, "O is not informed when updates
//! of the component C occur"; a re-copy pass must visit every composite.
//! With the inheritance relationship, "any update of the original data is
//! instantly visible in the composite object".
//!
//! Measured: the cost of one component update as the number of dependent
//! composites N grows, for (a) the value-inheritance store (an update marks
//! N adaptation flags but copies nothing) and (b) the copy baseline
//! (update + the propagation pass that re-copies into N composites), plus
//! the stale-copy count the baseline exhibits *before* propagating.

use ccdb_baseline::CopyBaseline;
use ccdb_core::Value;

use super::time_per_iter;
use crate::table::{fmt_nanos, Table};
use crate::workload::fanout_store;

/// Run E1.
pub fn run(quick: bool) -> Table {
    let sweep: &[usize] = if quick {
        &[1, 10, 50]
    } else {
        &[1, 10, 100, 1000, 5000]
    };
    let iters = if quick { 20 } else { 200 };
    let mut t = Table::new(
        "E1: update propagation — inheritance (view) vs copy baseline",
        &[
            "inheritors N",
            "inherit: update",
            "inherit: update (no adaptation tracking)",
            "copy: update+propagate",
            "copy: stale before propagate",
            "visible in inheritor",
        ],
    );
    for &n in sweep {
        // Inheritance store.
        let (mut st, interface, imps) = fanout_store(n, 4, 4);
        let mut tick = 0i64;
        let inherit_ns = time_per_iter(iters, || {
            tick += 1;
            st.set_attr(interface, "A0", Value::Int(tick)).unwrap();
        });
        let visible = st.attr(imps[0], "A0").unwrap() == Value::Int(tick);
        // Ablation: without the paper's adaptation bookkeeping the update is
        // O(1) — the view itself costs nothing on the write path.
        st.set_adaptation_tracking(false);
        let inherit_raw_ns = time_per_iter(iters, || {
            tick += 1;
            st.set_attr(interface, "A0", Value::Int(tick)).unwrap();
        });
        st.set_adaptation_tracking(true);

        // Copy baseline.
        let mut cb = CopyBaseline::new();
        let comp = cb.add_component(vec![
            ("A0", Value::Int(0)),
            ("A1", Value::Int(1)),
            ("A2", Value::Int(2)),
            ("A3", Value::Int(3)),
        ]);
        for _ in 0..n {
            cb.build_composite(&[comp], None);
        }
        let mut tick2 = 0i64;
        cb.update_component(comp, "A0", Value::Int(-1));
        let stale = cb.stale_copies();
        let copy_ns = time_per_iter(iters, || {
            tick2 += 1;
            cb.update_component(comp, "A0", Value::Int(tick2));
            cb.propagate();
        });

        t.row(vec![
            n.to_string(),
            fmt_nanos(inherit_ns),
            fmt_nanos(inherit_raw_ns),
            fmt_nanos(copy_ns),
            stale.to_string(),
            visible.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_grows_with_n_and_view_stays_visible() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        // Every row confirms instant visibility through the view.
        assert!(t.rows.iter().all(|r| r[5] == "true"));
        // The baseline had N stale copies before its propagation pass.
        assert_eq!(t.rows[2][4], "50");
    }
}
