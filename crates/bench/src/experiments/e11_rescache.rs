//! E11 — resolution value cache: memoized vs walked reads, and the
//! concurrent shared-store read path.
//!
//! Part A sweeps chain depth and compares a repeated `attr()` read with the
//! memo on (O(1) map lookup after the first walk) against the memo off
//! (re-walks d−1 hops every time). The gap must *grow* with depth — that is
//! the cache's whole case.
//!
//! Part B drives [`ccdb_core::shared::SharedStore`] with 1/2/4/8 reader
//! threads over a fan-out store (one interface, many bound implementations)
//! and reports aggregate read throughput. Cached reads take the shared lock
//! only, so throughput should scale with readers until memory bandwidth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Instant;

use ccdb_core::shared::SharedStore;

use crate::table::{fmt_nanos, Table};
use crate::workload::{chain_store, fanout_store};

/// Run E11 part A: cached vs uncached repeated reads over chain depth.
pub fn run(quick: bool) -> Table {
    let depths: &[usize] = if quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let iters = if quick { 2_000 } else { 200_000 };
    let mut t = Table::new(
        "E11a: repeated read latency — resolution cache on vs off",
        &[
            "chain depth d",
            "uncached (walk)",
            "cached (memo)",
            "speedup",
        ],
    );
    for &d in depths {
        let (st, leaf, _root) = chain_store(d);
        st.set_resolution_cache(false);
        let uncached = super::time_per_iter(iters, || {
            std::hint::black_box(st.attr(leaf, "X").unwrap());
        });
        st.set_resolution_cache(true);
        st.attr(leaf, "X").unwrap(); // warm: the one real walk
        let cached = super::time_per_iter(iters, || {
            std::hint::black_box(st.attr(leaf, "X").unwrap());
        });
        t.row(vec![
            d.to_string(),
            fmt_nanos(uncached),
            fmt_nanos(cached),
            format!("{:.1}x", uncached / cached.max(f64::MIN_POSITIVE)),
        ]);
    }
    t
}

/// Run E11 part B: shared-store read throughput vs reader-thread count.
pub fn run_threads(quick: bool) -> Table {
    let n_imps = if quick { 64 } else { 1024 };
    let reads_per_thread = if quick { 5_000 } else { 200_000 };
    let (st, _interface, imps) = fanout_store(n_imps, 4, 4);
    let shared = SharedStore::from_store(st);
    // Warm every implementation's entries once.
    for &i in &imps {
        shared.attr(i, "A0").unwrap();
    }
    let mut t = Table::new(
        "E11b: shared-store cached read throughput vs reader threads",
        &["threads", "total reads", "elapsed", "reads/s"],
    );
    for threads in [1usize, 2, 4, 8] {
        let done = AtomicU64::new(0);
        let start = Instant::now();
        thread::scope(|scope| {
            for w in 0..threads {
                let shared = shared.clone();
                let imps = &imps;
                let done = &done;
                scope.spawn(move || {
                    // Stagger start offsets per worker.
                    for k in w..w + reads_per_thread {
                        let s = imps[k % imps.len()];
                        std::hint::black_box(shared.attr(s, "A0").unwrap());
                    }
                    done.fetch_add(reads_per_thread as u64, Ordering::Relaxed);
                });
            }
        });
        let elapsed = start.elapsed();
        let total = done.load(Ordering::Relaxed);
        let per_sec = total as f64 / elapsed.as_secs_f64();
        t.row(vec![
            threads.to_string(),
            total.to_string(),
            fmt_nanos(elapsed.as_nanos() as f64),
            format!("{:.2} M", per_sec / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nanos_of(cell: &str) -> f64 {
        let (num, unit) = cell.split_once(' ').unwrap();
        let v: f64 = num.parse().unwrap();
        match unit {
            "ns" => v,
            "µs" => v * 1e3,
            "ms" => v * 1e6,
            "s" => v * 1e9,
            u => panic!("unit {u}"),
        }
    }

    #[test]
    fn cached_read_beats_walk_on_deep_chains() {
        let t = run(true);
        let deep = t.rows.last().unwrap();
        let uncached = nanos_of(&deep[1]);
        let cached = nanos_of(&deep[2]);
        assert!(
            cached < uncached,
            "memoized read ({cached} ns) must beat the {}-hop walk ({uncached} ns)",
            deep[0]
        );
    }

    #[test]
    fn thread_sweep_completes_all_reads() {
        let t = run_threads(true);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let threads: u64 = row[0].parse().unwrap();
            let total: u64 = row[1].parse().unwrap();
            assert_eq!(total, threads * 5_000);
        }
    }
}
