//! E14 — latency decomposition: where does a wire request's time go?
//!
//! The serving layer stamps every request's eight phases (recv → parse →
//! queue → snapshot → lock → handle → serialize → write) into the
//! `ccdb_server_phase_*` histograms. E14 runs the E12 workload shape (an
//! in-process server, closed-loop clients at 90% resolved reads / 10%
//! transmitter writes) and renders the *attribution table*: how much of
//! total server-side time each phase accounts for — the "X% of the p95 is
//! store-lock wait" answer — next to the client-measured RTT.
//!
//! Two invariants are asserted by the test:
//!
//! - zero server errors (the decomposition must not perturb correctness);
//! - **coverage**: the eight phase sums add up to ≥95% of the measured
//!   first-byte-to-response-written total — the timeline has no
//!   unaccounted gap.
//!
//! Phase histograms are process-global, so deltas are taken around the
//! workload instead of resetting the registry (other concurrent users of
//! the registry only add consistently to both numerator and denominator).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ccdb_core::shared::SharedStore;
use ccdb_core::Value;
use ccdb_obs::flight::PHASE_NAMES;
use ccdb_obs::metrics::LATENCY_BUCKETS_NS;
use ccdb_obs::{Histogram, HistogramSnapshot};
use ccdb_server::{Client, Server, ServerConfig};

use crate::table::Table;
use crate::workload::fanout_store;

/// One closed-loop client; returns (rtt sum ns, completed, errors,
/// overloaded retries).
fn client_loop(
    addr: std::net::SocketAddr,
    interface: ccdb_core::Surrogate,
    imps: &[ccdb_core::Surrogate],
    requests: u64,
    seed: u64,
) -> (u64, u64, u64, u64) {
    let mut rtt_sum = 0u64;
    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut overloaded = 0u64;
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return (0, 0, requests, 0),
    };
    if c.set_read_timeout(Some(Duration::from_secs(30))).is_err() {
        return (0, 0, requests, 0);
    }
    let mut n = 0u64;
    while n < requests {
        let start = Instant::now();
        let outcome = if n % 10 == 9 {
            c.set_attr(interface, "A0", Value::Int((seed + n) as i64))
        } else {
            let imp = imps[(seed + n) as usize % imps.len()];
            c.attr(imp, "A0").map(|_| ())
        };
        match outcome {
            Ok(()) => {
                rtt_sum += start.elapsed().as_nanos() as u64;
                completed += 1;
                n += 1;
            }
            Err(e) if e.is_overloaded() => {
                overloaded += 1;
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                errors += 1;
                n += 1;
            }
        }
    }
    (rtt_sum, completed, errors, overloaded)
}

fn delta(before: &HistogramSnapshot, after: &HistogramSnapshot) -> (f64, u64) {
    (
        (after.sum.saturating_sub(before.sum)) as f64,
        after.count.saturating_sub(before.count),
    )
}

/// Run E14: per-phase attribution of server-side request time.
pub fn run(quick: bool) -> Table {
    let clients = if quick { 4 } else { 8 };
    let requests_per_client: u64 = if quick { 200 } else { 2_000 };
    let n_imps = if quick { 64 } else { 256 };

    let (st, interface, imps) = fanout_store(n_imps, 4, 4);
    let shared = SharedStore::from_store(st);
    let server = Server::start(
        ServerConfig {
            workers: 4,
            queue_depth: 128,
            ..ServerConfig::default()
        },
        shared,
    )
    .expect("server binds");
    let addr = server.local_addr();

    // The same get-or-create registry entries the server observes into.
    let r = ccdb_obs::global();
    let phase_hists: Vec<Arc<Histogram>> = PHASE_NAMES
        .iter()
        .map(|p| r.histogram(&format!("ccdb_server_phase_all_{p}_ns"), LATENCY_BUCKETS_NS))
        .collect();
    let total_hist = r.histogram("ccdb_server_phase_all_total_ns", LATENCY_BUCKETS_NS);
    let phases_before: Vec<HistogramSnapshot> = phase_hists.iter().map(|h| h.snapshot()).collect();
    let total_before = total_hist.snapshot();

    let rtt_sum = Arc::new(AtomicU64::new(0));
    let total_completed = Arc::new(AtomicU64::new(0));
    let total_errors = Arc::new(AtomicU64::new(0));
    thread::scope(|scope| {
        for w in 0..clients {
            let imps = &imps;
            let (tr, tc, te) = (
                Arc::clone(&rtt_sum),
                Arc::clone(&total_completed),
                Arc::clone(&total_errors),
            );
            scope.spawn(move || {
                let (rtt, c, e, _o) =
                    client_loop(addr, interface, imps, requests_per_client, w as u64 * 7919);
                tr.fetch_add(rtt, Ordering::Relaxed);
                tc.fetch_add(c, Ordering::Relaxed);
                te.fetch_add(e, Ordering::Relaxed);
            });
        }
    });
    server.shutdown();

    let (total_sum, total_count) = delta(&total_before, &total_hist.snapshot());
    let completed = total_completed.load(Ordering::Relaxed).max(1);
    let rtt_mean = rtt_sum.load(Ordering::Relaxed) as f64 / completed as f64;

    let mut t = Table::new(
        "E14: per-phase attribution of server-side request time (90/10 wire workload)",
        &["metric", "total", "share", "mean/req"],
    );
    let mut phases_sum = 0.0f64;
    for (p, (h, before)) in PHASE_NAMES
        .iter()
        .zip(phase_hists.iter().zip(&phases_before))
    {
        let (sum, count) = delta(before, &h.snapshot());
        phases_sum += sum;
        let share = if total_sum > 0.0 {
            100.0 * sum / total_sum
        } else {
            0.0
        };
        let mean = sum / count.max(1) as f64;
        t.row(vec![
            p.to_string(),
            format!("{:.2} ms", sum / 1e6),
            format!("{share:.1}%"),
            format!("{:.1} us", mean / 1e3),
        ]);
    }
    t.row(vec![
        "server total".into(),
        format!("{:.2} ms", total_sum / 1e6),
        "100%".into(),
        format!("{:.1} us", total_sum / total_count.max(1) as f64 / 1e3),
    ]);
    let coverage = if total_sum > 0.0 {
        100.0 * phases_sum / total_sum
    } else {
        0.0
    };
    t.row(vec![
        "phase coverage".into(),
        "-".into(),
        format!("{coverage:.1}%"),
        "-".into(),
    ]);
    t.row(vec![
        "client rtt".into(),
        "-".into(),
        "-".into(),
        format!("{:.1} us", rtt_mean / 1e3),
    ]);
    t.row(vec![
        "requests".into(),
        completed.to_string(),
        "-".into(),
        "-".into(),
    ]);
    t.row(vec![
        "errors".into(),
        total_errors.load(Ordering::Relaxed).to_string(),
        "-".into(),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cover_the_server_total_with_zero_errors() {
        let t = run(true);
        let get = |name: &str| -> &Vec<String> {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("no `{name}` row in {:?}", t.rows))
        };
        assert_eq!(get("errors")[1], "0", "{:?}", t.rows);
        let coverage: f64 = get("phase coverage")[2]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(
            coverage >= 95.0,
            "phase timeline leaves {:.1}% unaccounted: {:?}",
            100.0 - coverage,
            t.rows
        );
        // Every phase row rendered.
        for p in PHASE_NAMES {
            assert!(t.rows.iter().any(|r| r[0] == p), "missing phase {p}");
        }
    }
}
