//! E4 — lock inheritance: item-granular read locks on transmitters.
//!
//! Paper claim (§6): "the parts of the component which are visible in the
//! composite object have to be read-locked when the data is touched in the
//! composite object" — the *parts*, not the whole component. Measured:
//! with a composite reading its inherited attribute, which writer updates on
//! the transmitter's 8 attributes are blocked, (a) under the paper's
//! item-granular lock inheritance and (b) under naive whole-object locking;
//! swept over the permeability k. Plus multi-threaded writer throughput on
//! non-permeable attributes while readers hold inherited views.

use std::sync::Arc;
use std::time::Duration;

use ccdb_core::Value;
use ccdb_txn::lock::{LockManager, LockMode, Resource, TxnId};
use ccdb_txn::txn::Database;

use crate::table::Table;
use crate::workload::fanout_store;

const N_ATTRS: usize = 8;

/// Run E4.
pub fn run(quick: bool) -> Table {
    let ks: &[usize] = if quick { &[2, 8] } else { &[1, 2, 4, 8] };
    let mut t = Table::new(
        "E4: lock inheritance — writer attrs blocked while a composite reads its view (8-attr component)",
        &[
            "permeable k",
            "blocked (item-granular)",
            "blocked (whole-object)",
            "concurrent writer ops/s (item-granular)",
        ],
    );
    for &k in ks {
        // --- item-granular (the paper's lock inheritance) ---
        let (st, interface, imps) = fanout_store(1, N_ATTRS, k);
        let imp = imps[0];
        let db =
            Database::with_lock_manager(st, LockManager::with_timeout(Duration::from_millis(10)));
        let reader = db.begin("reader");
        // Read every inherited attribute: locks (imp, Ai) and (interface, Ai)
        // for i < k.
        for i in 0..k {
            db.read_attr(&reader, imp, &format!("A{i}")).unwrap();
        }
        let mut blocked_item = 0;
        for j in 0..N_ATTRS {
            let writer = db.begin("writer");
            match db.write_attr(&writer, interface, &format!("A{j}"), Value::Int(-1)) {
                Ok(()) => db.commit(writer),
                Err(_) => {
                    blocked_item += 1;
                    db.abort(writer);
                }
            }
        }
        db.commit(reader);

        // --- naive whole-object locking ---
        let lm = LockManager::with_timeout(Duration::from_millis(10));
        let robj = Resource::Object(interface);
        lm.acquire(TxnId(1), robj.clone(), LockMode::S).unwrap(); // reader locks whole component
        let mut blocked_whole = 0;
        for j in 0..N_ATTRS {
            let txn = TxnId(100 + j as u64);
            if lm.try_acquire(txn, robj.clone(), LockMode::X).is_err() {
                blocked_whole += 1;
            }
            lm.release_all(txn);
        }
        lm.release_all(TxnId(1));

        // --- threaded throughput: writers on non-permeable attrs while a
        //     reader keeps the view locked ---
        let ops = measure_writer_throughput(k, quick);

        t.row(vec![
            k.to_string(),
            format!("{blocked_item}/{N_ATTRS}"),
            format!("{blocked_whole}/{N_ATTRS}"),
            format!("{ops:.0}"),
        ]);
    }
    t
}

fn measure_writer_throughput(k: usize, quick: bool) -> f64 {
    let (st, interface, imps) = fanout_store(1, N_ATTRS, k);
    let imp = imps[0];
    let db = Arc::new(Database::with_lock_manager(
        st,
        LockManager::with_timeout(Duration::from_millis(if quick { 2 } else { 10 })),
    ));
    // Reader holds the inherited view for the whole run.
    let reader = db.begin("reader");
    for i in 0..k {
        db.read_attr(&reader, imp, &format!("A{i}")).unwrap();
    }
    let per_thread = if quick { 25 } else { 500 };
    let threads = 4;
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                // Each writer updates a non-permeable attribute (if any).
                let attr = format!("A{}", k.min(N_ATTRS - 1).max(k % N_ATTRS));
                let mut done = 0u64;
                for n in 0..per_thread {
                    let tx = db.begin(&format!("w{w}"));
                    let target = if k < N_ATTRS {
                        attr.clone()
                    } else {
                        format!("A{w}")
                    };
                    match db.write_attr(&tx, interface, &target, Value::Int(n)) {
                        Ok(()) => {
                            db.commit(tx);
                            done += 1;
                        }
                        Err(_) => db.abort(tx),
                    }
                }
                done
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let secs = start.elapsed().as_secs_f64();
    db.commit(reader);
    total as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_granularity_blocks_only_permeable_attrs() {
        let t = run(true);
        // k=2 row: exactly the 2 permeable attrs blocked; naive blocks all 8.
        assert_eq!(t.rows[0][1], "2/8");
        assert_eq!(t.rows[0][2], "8/8");
        // k=8: everything permeable → both block all.
        assert_eq!(t.rows[1][1], "8/8");
    }
}
