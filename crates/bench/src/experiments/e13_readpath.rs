//! E13 — scaling the read path: sharded resolution cache, class-extent
//! indexed `select`, and batched wire frames.
//!
//! The paper's workload is read-dominated — many designers resolving the
//! same shared interfaces at once — so the read path is where scale is
//! won or lost. Three mechanisms, one experiment each:
//!
//! - **Part A** (`run`): the resolution cache is lock-striped across
//!   shards keyed by surrogate hash. Concurrent cached reads on a
//!   single-shard cache (the old single-`RwLock` shape) all contend on
//!   one lock; at 16 shards readers spread across stripes. The sweep
//!   holds the workload fixed and varies reader threads — the sharded
//!   column must pull ahead as threads grow.
//! - **Part B** (`run_select`): `select` iterates the queried type's
//!   class extent instead of scanning every live object, and
//!   equality-against-literal predicates skip the expression interpreter
//!   entirely. Measured against a hand-rolled full scan (the pre-index
//!   behavior) on a store where the queried type owns 1/8th of the
//!   objects.
//! - **Part C** (`run_batch`): the `batch` wire verb amortizes framing
//!   and admission over many sub-requests; at equal connection counts,
//!   batched read throughput must beat one-frame-per-request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use ccdb_core::expr::{eval, Env, Expr, PathExpr};
use ccdb_core::shared::SharedStore;
use ccdb_core::Value;
use ccdb_server::{Client, Server, ServerConfig};
use serde_json::Value as Json;

use crate::table::Table;
use crate::workload::{fanout_store_with_shards, multitype_store};

/// Concurrent cached-read throughput (reads/s) over a warmed fan-out
/// store at the given shard count.
fn cached_read_throughput(shards: usize, threads: usize, reads_per_thread: usize) -> f64 {
    let (st, _interface, imps) = fanout_store_with_shards(1024.min(reads_per_thread), 4, 4, shards);
    let shared = SharedStore::from_store(st);
    for &i in &imps {
        shared.attr(i, "A0").unwrap(); // warm: every read below is a hit
    }
    let done = AtomicU64::new(0);
    let start = Instant::now();
    thread::scope(|scope| {
        for w in 0..threads {
            let shared = shared.clone();
            let imps = &imps;
            let done = &done;
            scope.spawn(move || {
                for k in w..w + reads_per_thread {
                    let s = imps[k % imps.len()];
                    std::hint::black_box(shared.attr(s, "A0").unwrap());
                }
                done.fetch_add(reads_per_thread as u64, Ordering::Relaxed);
            });
        }
    });
    done.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Run E13 part A: cached read throughput, 1 shard vs 16, vs threads.
pub fn run(quick: bool) -> Table {
    let reads_per_thread = if quick { 20_000 } else { 400_000 };
    let mut t = Table::new(
        "E13a: cached read throughput — single-lock (1 shard) vs sharded (16)",
        &[
            "threads",
            "1 shard (reads/s)",
            "16 shards (reads/s)",
            "speedup",
        ],
    );
    for threads in [1usize, 2, 4, 8] {
        let single = cached_read_throughput(1, threads, reads_per_thread);
        let sharded = cached_read_throughput(16, threads, reads_per_thread);
        t.row(vec![
            threads.to_string(),
            format!("{:.2} M", single / 1e6),
            format!("{:.2} M", sharded / 1e6),
            format!("{:.2}x", sharded / single.max(f64::MIN_POSITIVE)),
        ]);
    }
    t
}

/// Run E13 part B: extent-indexed select vs full scan, and the equality
/// fast path vs the interpreter, on a store of 8 interleaved types.
pub fn run_select(quick: bool) -> Table {
    let per_type = if quick { 200 } else { 4_000 };
    let iters = if quick { 20 } else { 100 };
    let n_types = 8;
    let (st, names) = multitype_store(n_types, per_type);
    let ty = names[0].as_str();
    let target = (per_type / 2) as i64;
    let eq = Expr::eq(Expr::Path(PathExpr::self_path(&["V"])), Expr::int(target));
    // Double negation defeats the eq-against-literal detection, forcing
    // the interpreter over the same extent (isolates the fast path).
    let interp = Expr::Not(Box::new(Expr::Not(Box::new(eq.clone()))));

    // The pre-index behavior: test *every* live object's type, then
    // evaluate the predicate on the matches.
    let full_scan = || {
        let mut hits = Vec::new();
        for s in st.surrogates() {
            if st.object(s).unwrap().type_name == ty {
                if let Value::Bool(true) = eval(&st, s, &mut Env::new(), &interp).unwrap() {
                    hits.push(s);
                }
            }
        }
        hits.sort();
        hits
    };

    let expect = full_scan();
    assert_eq!(st.select(ty, &eq).unwrap(), expect, "fast path diverged");
    assert_eq!(st.select(ty, &interp).unwrap(), expect, "extent diverged");

    let scan_ns = super::time_per_iter(iters, || {
        std::hint::black_box(full_scan());
    });
    let extent_ns = super::time_per_iter(iters, || {
        std::hint::black_box(st.select(ty, &interp).unwrap());
    });
    let fast_ns = super::time_per_iter(iters, || {
        std::hint::black_box(st.select(ty, &eq).unwrap());
    });

    let mut t = Table::new(
        "E13b: select one of 8 types — full scan vs extent index vs eq fast path",
        &[
            "objects (total / queried type)",
            "full scan",
            "extent + interpreter",
            "extent + eq fast path",
            "scan/extent",
            "scan/fast",
        ],
    );
    t.row(vec![
        format!("{} / {}", n_types * per_type, per_type),
        crate::table::fmt_nanos(scan_ns),
        crate::table::fmt_nanos(extent_ns),
        crate::table::fmt_nanos(fast_ns),
        format!("{:.1}x", scan_ns / extent_ns.max(f64::MIN_POSITIVE)),
        format!("{:.1}x", scan_ns / fast_ns.max(f64::MIN_POSITIVE)),
    ]);
    t
}

/// One connection's resolved-read loop, plain or batched. Returns
/// completed sub-requests.
fn wire_reads(
    addr: std::net::SocketAddr,
    imps: &[ccdb_core::Surrogate],
    ops: u64,
    batch: u64,
    seed: u64,
) -> u64 {
    let mut c = Client::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut completed = 0u64;
    let mut n = 0u64;
    while n < ops {
        if batch <= 1 {
            let imp = imps[(seed + n) as usize % imps.len()];
            if c.attr(imp, "A0").is_ok() {
                completed += 1;
            }
            n += 1;
        } else {
            let frame: Vec<_> = (n..(n + batch).min(ops))
                .map(|k| {
                    let imp = imps[(seed + k) as usize % imps.len()];
                    (
                        "attr",
                        Json::Object(vec![
                            ("obj".into(), Json::UInt(imp.0)),
                            ("name".into(), Json::String("A0".into())),
                        ]),
                    )
                })
                .collect();
            let sent = frame.len() as u64;
            if let Ok(slots) = c.batch(frame) {
                completed += slots.iter().filter(|s| s.is_ok()).count() as u64;
            }
            n += sent;
        }
    }
    completed
}

/// Run E13 part C: batched vs unbatched wire read throughput at equal
/// connection counts.
pub fn run_batch(quick: bool) -> Table {
    let clients = if quick { 4 } else { 8 };
    let ops_per_client: u64 = if quick { 400 } else { 8_000 };
    let batch_size: u64 = 32;
    let (st, _interface, imps) = fanout_store_with_shards(64, 4, 4, 16);
    let shared = SharedStore::from_store(st);

    let mut t = Table::new(
        "E13c: wire read throughput — one frame per request vs 32-request batches",
        &["clients", "mode", "sub-requests", "elapsed", "req/s"],
    );
    let mut rps = Vec::new();
    for batch in [1u64, batch_size] {
        let server = Server::start(
            ServerConfig {
                workers: 4,
                queue_depth: 128,
                ..ServerConfig::default()
            },
            shared.clone(),
        )
        .expect("server binds");
        let addr = server.local_addr();
        let total = AtomicU64::new(0);
        let start = Instant::now();
        thread::scope(|scope| {
            for w in 0..clients {
                let imps = &imps;
                let total = &total;
                scope.spawn(move || {
                    let done = wire_reads(addr, imps, ops_per_client, batch, w as u64 * 7919);
                    total.fetch_add(done, Ordering::Relaxed);
                });
            }
        });
        let elapsed = start.elapsed();
        server.shutdown();
        let completed = total.load(Ordering::Relaxed);
        let per_sec = completed as f64 / elapsed.as_secs_f64().max(1e-9);
        rps.push(per_sec);
        t.row(vec![
            clients.to_string(),
            if batch <= 1 {
                "plain".into()
            } else {
                format!("batch={batch}")
            },
            completed.to_string(),
            format!("{:.3} s", elapsed.as_secs_f64()),
            format!("{per_sec:.0}"),
        ]);
    }
    t.row(vec![
        clients.to_string(),
        "speedup".into(),
        String::new(),
        String::new(),
        format!("{:.1}x", rps[1] / rps[0].max(f64::MIN_POSITIVE)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_sweep_produces_all_thread_counts() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert!(row[3].ends_with('x'), "{row:?}");
        }
    }

    #[test]
    fn extent_select_agrees_with_full_scan_and_reports_speedups() {
        let t = run_select(true);
        assert_eq!(t.rows.len(), 1);
        // The asserts inside run_select are the correctness check; here
        // only the table shape matters (timings vary on shared CI).
        assert!(t.rows[0][4].ends_with('x'));
    }

    #[test]
    fn batched_wire_reads_complete_every_sub_request() {
        let t = run_batch(true);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows[..2] {
            let completed: u64 = row[2].parse().unwrap();
            assert_eq!(completed, 4 * 400, "lost sub-requests: {row:?}");
        }
    }
}
