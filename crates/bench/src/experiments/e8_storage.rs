//! E8 — kernel durability: WAL commit throughput and recovery time.
//!
//! §1 motivates "a database kernel supporting the basic mechanisms of the
//! object model"; this measures the substrate built for it: transactional
//! commit rate of object-sized records through the WAL-protected KV store,
//! and crash-recovery time as the unflushed log grows.

use ccdb_storage::kv::DurableKv;

use crate::table::{fmt_bytes, fmt_nanos, Table};

/// Run E8.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[64, 1024]
    } else {
        &[64, 256, 1024, 4096]
    };
    let commits = if quick { 50 } else { 1_000 };
    let mut t = Table::new(
        "E8: durable KV substrate — commit latency & recovery time",
        &[
            "record size",
            "commits",
            "commit latency",
            "wal bytes",
            "recovery",
            "recovered keys",
        ],
    );
    for &size in sizes {
        let dir = tempfile::tempdir().unwrap();
        let payload = vec![0xA5u8; size];
        let wal_len;
        {
            let kv = DurableKv::open(dir.path()).unwrap();
            let start = std::time::Instant::now();
            for k in 0..commits {
                let tx = kv.begin().unwrap();
                kv.put(tx, k as u64 + 100, &payload).unwrap();
                kv.commit(tx).unwrap();
            }
            let per_commit = start.elapsed().as_nanos() as f64 / commits as f64;
            wal_len = kv.wal_len();
            // Crash (drop without checkpoint) …
            drop(kv);
            let start = std::time::Instant::now();
            let kv = DurableKv::open(dir.path()).unwrap();
            let recovery_ns = start.elapsed().as_nanos() as f64;
            let keys = kv.len().unwrap();
            t.row(vec![
                fmt_bytes(size),
                commits.to_string(),
                fmt_nanos(per_commit),
                fmt_bytes(wal_len as usize),
                fmt_nanos(recovery_ns),
                keys.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_committed_keys_survive_recovery() {
        let t = run(true);
        for row in &t.rows {
            assert_eq!(row[5], row[1], "every commit recovered");
        }
    }
}
