//! The quantitative experiment suite (E1–E18).
//!
//! The paper presents no measurements (it is a data-model paper), so each
//! experiment operationalizes one of its *qualitative* claims; the mapping
//! and expected shapes are recorded in `DESIGN.md` §4 and the measured
//! outcomes in `EXPERIMENTS.md`. Every experiment returns a [`Table`] so the
//! `experiments` binary prints the full suite.

pub mod e10_configuration;
pub mod e11_rescache;
pub mod e12_server;
pub mod e13_readpath;
pub mod e14_phases;
pub mod e15_wire;
pub mod e16_telemetry;
pub mod e17_mvcc;
pub mod e18_dispatch;
pub mod e1_propagation;
pub mod e2_resolution;
pub mod e3_permeability;
pub mod e4_locking;
pub mod e5_versions;
pub mod e6_expansion;
pub mod e7_constraints;
pub mod e8_storage;
pub mod e9_storage_amp;

use crate::table::Table;

/// Run every experiment. `quick` shrinks the sweeps (used by tests).
pub fn run_all(quick: bool) -> Vec<Table> {
    vec![
        e1_propagation::run(quick),
        e2_resolution::run(quick),
        e3_permeability::run(quick),
        e4_locking::run(quick),
        e5_versions::run(quick),
        e6_expansion::run(quick),
        e7_constraints::run(quick),
        e8_storage::run(quick),
        e9_storage_amp::run(quick),
        e10_configuration::run(quick),
        e11_rescache::run(quick),
        e11_rescache::run_threads(quick),
        e12_server::run(quick),
        e13_readpath::run(quick),
        e13_readpath::run_select(quick),
        e13_readpath::run_batch(quick),
        e14_phases::run(quick),
        e15_wire::run(quick),
        e15_wire::run_idle(quick),
        e16_telemetry::run(quick),
        e17_mvcc::run(quick),
        e18_dispatch::run(quick),
        e18_dispatch::run_idle(quick),
    ]
}

/// Median-of-runs timing helper: runs `f` `iters` times, returns ns/iter.
pub fn time_per_iter(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_run_quickly_and_produce_rows() {
        for table in run_all(true) {
            assert!(!table.rows.is_empty(), "{} produced no rows", table.title);
            assert!(!table.render().is_empty());
        }
    }
}
