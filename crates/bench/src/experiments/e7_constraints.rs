//! E7 — integrity-constraint checking cost on the §5 steel scenario.
//!
//! The paper argues complex relationship types like `ScrewingType` "allow
//! the implementation of mechanisms for advanced consistency control";
//! its constraints quantify over bolts, nuts and bores. Measured: the cost
//! of checking every constraint in a weight-carrying structure as the
//! number of screwings grows, and the cost of catching an injected fault.

use ccdb_core::Value;

use crate::table::{fmt_nanos, Table};
use crate::workload::steel_structure;

/// Run E7.
pub fn run(quick: bool) -> Table {
    let sweep: &[usize] = if quick { &[2, 8] } else { &[1, 4, 16, 64, 128] };
    let mut t = Table::new(
        "E7: constraint checking on WeightCarrying_Structure (paper §5)",
        &[
            "screwings",
            "objects",
            "check_all (clean)",
            "violations",
            "check_all (1 fault)",
            "caught",
        ],
    );
    for &n in sweep {
        let (st, _structure) = steel_structure(n);
        let objects = st.object_count();
        let start = std::time::Instant::now();
        let clean = st.check_all().unwrap();
        let clean_ns = start.elapsed().as_nanos() as f64;

        // Inject a fault: shrink the shared bolt so every screwing breaks.
        let (mut st2, _) = steel_structure(n);
        let bolt = st2
            .surrogates()
            .find(|s| st2.object(*s).unwrap().type_name == "BoltType")
            .unwrap();
        st2.set_attr(bolt, "Length", Value::Int(1)).unwrap();
        let start = std::time::Instant::now();
        let faulty = st2.check_all().unwrap();
        let fault_ns = start.elapsed().as_nanos() as f64;

        t.row(vec![
            n.to_string(),
            objects.to_string(),
            fmt_nanos(clean_ns),
            clean.len().to_string(),
            fmt_nanos(fault_ns),
            (!faulty.is_empty()).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_structures_have_zero_violations_faults_are_caught() {
        let t = run(true);
        for row in &t.rows {
            assert_eq!(row[3], "0");
            assert_eq!(row[5], "true");
        }
    }
}
