//! E12 — network serving layer: concurrent client sessions over TCP.
//!
//! The paper's workload is many designers at workstations reading a shared
//! design while a few update transmitters. E12 measures that shape through
//! the real wire: an in-process `ccdb-server` over a fan-out store, swept
//! over client-connection counts. Each client is a closed loop of resolved
//! reads (90%) and transmitter writes (10%) through its own TCP session.
//!
//! The acceptance bar is correctness under concurrency, not just
//! throughput: the `errors` column counts lost or corrupted responses
//! (id mismatches, non-value payloads, transport failures) and must be 0
//! at every client count — including 64 in full mode. `Overloaded`
//! rejections are *not* errors; they are the admission-control contract
//! and are reported separately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ccdb_core::shared::SharedStore;
use ccdb_core::Value;
use ccdb_server::{Client, Server, ServerConfig};

use crate::table::Table;
use crate::workload::fanout_store;

/// One client session's closed loop. Returns (completed requests, errors,
/// overloaded retries).
fn client_loop(
    addr: std::net::SocketAddr,
    interface: ccdb_core::Surrogate,
    imps: &[ccdb_core::Surrogate],
    requests: u64,
    seed: u64,
) -> (u64, u64, u64) {
    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut overloaded = 0u64;
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return (0, requests, 0),
    };
    if c.set_read_timeout(Some(Duration::from_secs(30))).is_err() {
        return (0, requests, 0);
    }
    let mut n = 0u64;
    while n < requests {
        let write = n % 10 == 9;
        let outcome = if write {
            c.set_attr(interface, "A0", Value::Int((seed + n) as i64))
                .map(|()| true)
        } else {
            let imp = imps[(seed + n) as usize % imps.len()];
            // Any successfully delivered read must carry an integer — a
            // non-integer payload is a corrupted response.
            c.attr(imp, "A0").map(|v| matches!(v, Value::Int(_)))
        };
        match outcome {
            Ok(true) => {
                completed += 1;
                n += 1;
            }
            Ok(false) => {
                errors += 1;
                n += 1;
            }
            Err(e) if e.is_overloaded() => {
                overloaded += 1;
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                errors += 1;
                n += 1;
            }
        }
    }
    (completed, errors, overloaded)
}

/// Run E12: wire throughput and correctness vs concurrent client sessions.
pub fn run(quick: bool) -> Table {
    let client_counts: &[usize] = if quick { &[1, 4, 8] } else { &[1, 4, 16, 64] };
    let requests_per_client: u64 = if quick { 200 } else { 2_000 };
    let n_imps = if quick { 64 } else { 256 };

    let (st, interface, imps) = fanout_store(n_imps, 4, 4);
    let shared = SharedStore::from_store(st);

    let mut t = Table::new(
        "E12: wire throughput and correctness vs concurrent client sessions",
        &[
            "clients",
            "requests",
            "errors",
            "overloaded",
            "elapsed",
            "req/s",
        ],
    );
    for &clients in client_counts {
        let server = Server::start(
            ServerConfig {
                workers: 4,
                queue_depth: 128,
                ..ServerConfig::default()
            },
            shared.clone(),
        )
        .expect("server binds");
        let addr = server.local_addr();

        let total_completed = Arc::new(AtomicU64::new(0));
        let total_errors = Arc::new(AtomicU64::new(0));
        let total_overloaded = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        thread::scope(|scope| {
            for w in 0..clients {
                let imps = &imps;
                let (tc, te, to) = (
                    Arc::clone(&total_completed),
                    Arc::clone(&total_errors),
                    Arc::clone(&total_overloaded),
                );
                scope.spawn(move || {
                    let (c, e, o) =
                        client_loop(addr, interface, imps, requests_per_client, w as u64 * 7919);
                    tc.fetch_add(c, Ordering::Relaxed);
                    te.fetch_add(e, Ordering::Relaxed);
                    to.fetch_add(o, Ordering::Relaxed);
                });
            }
        });
        let elapsed = start.elapsed();
        server.shutdown();

        let completed = total_completed.load(Ordering::Relaxed);
        let errors = total_errors.load(Ordering::Relaxed);
        let per_sec = completed as f64 / elapsed.as_secs_f64().max(1e-9);
        t.row(vec![
            clients.to_string(),
            completed.to_string(),
            errors.to_string(),
            total_overloaded.load(Ordering::Relaxed).to_string(),
            format!("{:.3} s", elapsed.as_secs_f64()),
            format!("{per_sec:.0}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_client_count_completes_with_zero_errors() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let clients: u64 = row[0].parse().unwrap();
            let completed: u64 = row[1].parse().unwrap();
            let errors: u64 = row[2].parse().unwrap();
            assert_eq!(completed, clients * 200, "lost responses: {row:?}");
            assert_eq!(errors, 0, "corrupted responses: {row:?}");
        }
    }
}
