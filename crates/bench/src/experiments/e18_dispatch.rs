//! E18 — what do the dispatch tiers buy?
//!
//! The serving layer gained three coordinated mechanisms: an epoll
//! readiness backend (the kernel holds the interest set instead of the
//! event loop rescanning every registered fd), an inline fast path
//! (read-only snapshot verbs execute on the event-loop thread when the
//! admission queue is shallow — no enqueue, no worker wakeup), and
//! sharded work-stealing worker queues (targeted wakeups instead of a
//! single contended lock). Two tables quantify them against the E14/E15
//! baselines:
//!
//! - [`run`] repeats the E14 phase decomposition on the E12 90/10
//!   workload with the inline path off vs on. With it off, E14 showed the
//!   queue phase dominating (~55% of server-side time for the read-heavy
//!   mix); with it on, inline-eligible reads never enter the queue, so
//!   both the queue-phase share and the enqueue→dequeue wakeup p50 (E16's
//!   ~59 µs baseline) must fall.
//! - [`run_idle`] repeats the E15 idle-crowd scenario (quick: 512; full:
//!   6 000 parked sessions) on both backends and measures the *live* RTT
//!   a working client sees through the crowd. Under `poll(2)` every
//!   wakeup rescans the whole interest set, so the crowd taxes every
//!   request (E15 measured ~1.6 ms); under epoll the kernel reports only
//!   ready fds and the crowd is nearly free.
//!
//! Histogram/counter registry entries are process-global, so all figures
//! are deltas taken around each workload leg.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ccdb_core::shared::SharedStore;
use ccdb_core::Value;
use ccdb_obs::flight::PHASE_NAMES;
use ccdb_obs::metrics::LATENCY_BUCKETS_NS;
use ccdb_obs::HistogramSnapshot;
use ccdb_server::{Client, PollBackend, Server, ServerConfig, HELLO_V2};

use crate::table::Table;
use crate::workload::fanout_store;

/// One closed-loop client over the 90/10 mix; returns (rtt sum ns,
/// completed, errors).
fn client_loop(
    addr: std::net::SocketAddr,
    interface: ccdb_core::Surrogate,
    imps: &[ccdb_core::Surrogate],
    requests: u64,
    seed: u64,
) -> (u64, u64, u64) {
    let mut rtt_sum = 0u64;
    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return (0, 0, requests),
    };
    if c.set_read_timeout(Some(Duration::from_secs(30))).is_err() {
        return (0, 0, requests);
    }
    let mut n = 0u64;
    while n < requests {
        let start = Instant::now();
        let outcome = if n % 10 == 9 {
            c.set_attr(interface, "A0", Value::Int((seed + n) as i64))
        } else {
            let imp = imps[(seed + n) as usize % imps.len()];
            c.attr(imp, "A0").map(|_| ())
        };
        match outcome {
            Ok(()) => {
                rtt_sum += start.elapsed().as_nanos() as u64;
                completed += 1;
                n += 1;
            }
            Err(e) if e.is_overloaded() => thread::sleep(Duration::from_millis(1)),
            Err(_) => {
                errors += 1;
                n += 1;
            }
        }
    }
    (rtt_sum, completed, errors)
}

/// Bucket-wise histogram delta (the registry entries are process-global).
fn snap_delta(before: &HistogramSnapshot, after: &HistogramSnapshot) -> HistogramSnapshot {
    HistogramSnapshot {
        bounds: after.bounds.clone(),
        buckets: after
            .buckets
            .iter()
            .zip(before.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(a, b)| a.saturating_sub(*b))
            .collect(),
        sum: after.sum.saturating_sub(before.sum),
        count: after.count.saturating_sub(before.count),
    }
}

/// Aggregate figures for one inline-path leg of the A/B comparison.
struct Leg {
    queue_share_pct: f64,
    wakeup_p50_us: f64,
    wakeup_count: u64,
    inline_share_pct: f64,
    rtt_mean_us: f64,
    completed: u64,
    errors: u64,
}

/// Runs the E12/E14 workload against a fresh server with the inline fast
/// path toggled, and attributes where server-side time went.
fn dispatch_leg(quick: bool, inline_reads: bool) -> Leg {
    let clients = if quick { 4 } else { 8 };
    let requests_per_client: u64 = if quick { 200 } else { 2_000 };
    let n_imps = if quick { 64 } else { 256 };

    let (st, interface, imps) = fanout_store(n_imps, 4, 4);
    let server = Server::start(
        ServerConfig {
            workers: 4,
            queue_depth: 128,
            inline_reads,
            ..ServerConfig::default()
        },
        SharedStore::from_store(st),
    )
    .expect("server binds");
    let addr = server.local_addr();

    let r = ccdb_obs::global();
    let phase_hists: Vec<_> = PHASE_NAMES
        .iter()
        .map(|p| r.histogram(&format!("ccdb_server_phase_all_{p}_ns"), LATENCY_BUCKETS_NS))
        .collect();
    let wakeup_hist = r.histogram("ccdb_server_wakeup_latency_ns", LATENCY_BUCKETS_NS);
    let inline_ctr = r.counter("ccdb_server_inline_requests_total");
    let requests_ctr = r.counter("ccdb_server_requests_total");

    let phases_before: Vec<HistogramSnapshot> = phase_hists.iter().map(|h| h.snapshot()).collect();
    let wakeup_before = wakeup_hist.snapshot();
    let inline_before = inline_ctr.get();
    let requests_before = requests_ctr.get();

    let rtt_sum = Arc::new(AtomicU64::new(0));
    let total_completed = Arc::new(AtomicU64::new(0));
    let total_errors = Arc::new(AtomicU64::new(0));
    thread::scope(|scope| {
        for w in 0..clients {
            let imps = &imps;
            let (tr, tc, te) = (
                Arc::clone(&rtt_sum),
                Arc::clone(&total_completed),
                Arc::clone(&total_errors),
            );
            scope.spawn(move || {
                let (rtt, c, e) =
                    client_loop(addr, interface, imps, requests_per_client, w as u64 * 7919);
                tr.fetch_add(rtt, Ordering::Relaxed);
                tc.fetch_add(c, Ordering::Relaxed);
                te.fetch_add(e, Ordering::Relaxed);
            });
        }
    });
    server.shutdown();

    let mut queue_sum = 0.0f64;
    let mut phases_sum = 0.0f64;
    for (p, (h, before)) in PHASE_NAMES
        .iter()
        .zip(phase_hists.iter().zip(&phases_before))
    {
        let sum = (h.snapshot().sum.saturating_sub(before.sum)) as f64;
        phases_sum += sum;
        if *p == "queue" {
            queue_sum = sum;
        }
    }
    let wakeup = snap_delta(&wakeup_before, &wakeup_hist.snapshot());
    let inline_delta = inline_ctr.get().saturating_sub(inline_before);
    let requests_delta = requests_ctr.get().saturating_sub(requests_before).max(1);
    let completed = total_completed.load(Ordering::Relaxed);

    Leg {
        queue_share_pct: if phases_sum > 0.0 {
            100.0 * queue_sum / phases_sum
        } else {
            0.0
        },
        wakeup_p50_us: wakeup.quantile(0.50).unwrap_or(0.0) / 1e3,
        wakeup_count: wakeup.count,
        inline_share_pct: 100.0 * inline_delta as f64 / requests_delta as f64,
        rtt_mean_us: rtt_sum.load(Ordering::Relaxed) as f64 / completed.max(1) as f64 / 1e3,
        completed,
        errors: total_errors.load(Ordering::Relaxed),
    }
}

/// Run E18 (inline fast path): E14's attribution question, asked with
/// the fast path off vs on.
pub fn run(quick: bool) -> Table {
    let off = dispatch_leg(quick, false);
    let on = dispatch_leg(quick, true);

    let mut t = Table::new(
        "E18: inline fast path — E14 workload with inline reads off vs on",
        &["metric", "inline off", "inline on", "note"],
    );
    t.row(vec![
        "queue phase share".into(),
        format!("{:.1}%", off.queue_share_pct),
        format!("{:.1}%", on.queue_share_pct),
        "of summed server-side phase time".into(),
    ]);
    t.row(vec![
        "wakeup p50".into(),
        format!("{:.1} us", off.wakeup_p50_us),
        format!("{:.1} us", on.wakeup_p50_us),
        "enqueue→dequeue, E16 baseline ~59 us".into(),
    ]);
    t.row(vec![
        "queued dequeues".into(),
        off.wakeup_count.to_string(),
        on.wakeup_count.to_string(),
        "requests that took the worker hop".into(),
    ]);
    t.row(vec![
        "inline share".into(),
        format!("{:.1}%", off.inline_share_pct),
        format!("{:.1}%", on.inline_share_pct),
        "of all requests, served on the event loop".into(),
    ]);
    t.row(vec![
        "client rtt mean".into(),
        format!("{:.1} us", off.rtt_mean_us),
        format!("{:.1} us", on.rtt_mean_us),
        "closed loop, 90/10 mix".into(),
    ]);
    t.row(vec![
        "requests".into(),
        off.completed.to_string(),
        on.completed.to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "errors".into(),
        off.errors.to_string(),
        on.errors.to_string(),
        "-".into(),
    ]);
    t
}

fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Figures for one backend leg of the idle-crowd comparison.
struct CrowdLeg {
    backend: &'static str,
    parked: usize,
    connect_failures: u64,
    rtt_p50_us: f64,
    rtt_p95_us: f64,
    errors: u64,
}

/// Parks an idle crowd on a server running `backend` and measures the
/// live RTT a working client sees through it.
fn crowd_leg(backend: PollBackend, sessions: usize, live_requests: u64) -> CrowdLeg {
    let name = match backend {
        PollBackend::Poll => "poll",
        PollBackend::Epoll => "epoll",
        PollBackend::Auto => "auto",
    };
    let (st, _interface, imps) = fanout_store(16, 2, 2);
    let server = Server::start(
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            poll_backend: backend,
            // Idle sessions must survive the whole measurement.
            idle_timeout: Duration::from_secs(600),
            ..ServerConfig::default()
        },
        SharedStore::from_store(st),
    )
    .expect("server binds");
    let addr = server.local_addr();

    let mut parked: Vec<TcpStream> = Vec::with_capacity(sessions);
    let mut connect_failures = 0u64;
    for _ in 0..sessions {
        let ok = (|| -> std::io::Result<TcpStream> {
            let mut s = TcpStream::connect(addr)?;
            s.set_read_timeout(Some(Duration::from_secs(10)))?;
            s.write_all(&HELLO_V2)?;
            let mut ack = [0u8; 4];
            s.read_exact(&mut ack)?;
            s.set_read_timeout(None)?;
            Ok(s)
        })();
        match ok {
            Ok(s) => parked.push(s),
            Err(_) => {
                connect_failures = (sessions - parked.len()) as u64;
                break;
            }
        }
    }

    // The live client: plain resolved reads, every one of them competing
    // with the crowd for the event loop's attention.
    let mut lat: Vec<u64> = Vec::with_capacity(live_requests as usize);
    let mut errors = 0u64;
    match Client::connect_proto(addr, 2) {
        Ok(mut c) => {
            if c.set_read_timeout(Some(Duration::from_secs(30))).is_ok() {
                for n in 0..live_requests {
                    let start = Instant::now();
                    match c.attr(imps[n as usize % imps.len()], "A0") {
                        Ok(_) => lat.push(start.elapsed().as_nanos() as u64),
                        Err(_) => errors += 1,
                    }
                }
            } else {
                errors = live_requests;
            }
        }
        Err(_) => errors = live_requests,
    }
    lat.sort_unstable();

    let leg = CrowdLeg {
        backend: name,
        parked: parked.len(),
        connect_failures,
        rtt_p50_us: quantile_ns(&lat, 0.50) as f64 / 1e3,
        rtt_p95_us: quantile_ns(&lat, 0.95) as f64 / 1e3,
        errors,
    };
    drop(parked);
    server.shutdown();
    leg
}

/// Run E18 (idle crowd): E15's crowd scenario on both backends.
pub fn run_idle(quick: bool) -> Table {
    let requested: usize = if quick { 512 } else { 6_000 };
    let live_requests: u64 = if quick { 200 } else { 2_000 };
    // Scale the crowd to the fd budget the OS actually grants (three fds
    // per session: client end + server stream and its writer dup).
    let granted = polling::raise_nofile_limit((requested as u64) * 3 + 2_000)
        .or_else(|_| polling::nofile_limit().map(|(soft, _)| soft))
        .unwrap_or(4_096);
    let sessions = requested.min((granted.saturating_sub(2_000) / 3) as usize);

    let mut legs = vec![crowd_leg(PollBackend::Poll, sessions, live_requests)];
    if polling::epoll_supported() {
        legs.push(crowd_leg(PollBackend::Epoll, sessions, live_requests));
    }

    let mut t = Table::new(
        "E18: live RTT under an idle connection crowd — poll vs epoll",
        &[
            "backend",
            "idle sessions",
            "live rtt p50",
            "live rtt p95",
            "errors",
        ],
    );
    for leg in &legs {
        t.row(vec![
            leg.backend.into(),
            format!("{} ({} failures)", leg.parked, leg.connect_failures),
            format!("{:.1} us", leg.rtt_p50_us),
            format!("{:.1} us", leg.rtt_p95_us),
            leg.errors.to_string(),
        ]);
    }
    if legs.len() == 1 {
        t.row(vec![
            "epoll".into(),
            "n/a (platform lacks epoll)".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_path_moves_reads_out_of_the_queue() {
        let t = run(true);
        let get = |name: &str| -> &Vec<String> {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("no `{name}` row in {:?}", t.rows))
        };
        assert_eq!(get("errors")[1], "0", "{:?}", t.rows);
        assert_eq!(get("errors")[2], "0", "{:?}", t.rows);
        let share_off: f64 = get("inline share")[1]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        let share_on: f64 = get("inline share")[2]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(
            share_off < 1.0,
            "inline-off leg must not inline anything: {share_off}%"
        );
        // 90% of the mix is inline-eligible reads; with four closed-loop
        // clients against four workers the queue occasionally deepens
        // past the inline gate, so demand well over half rather than the
        // full 90%.
        assert!(
            share_on > 50.0,
            "inline-on leg served too little inline: {share_on}% ({:?})",
            t.rows
        );
        // Fewer requests take the worker hop, so fewer dequeues.
        let dq_off: u64 = get("queued dequeues")[1].parse().unwrap();
        let dq_on: u64 = get("queued dequeues")[2].parse().unwrap();
        assert!(
            dq_on < dq_off,
            "inline path must shrink the queued population: off={dq_off} on={dq_on}"
        );
    }

    /// Full-scale run for EXPERIMENTS.md numbers:
    /// `cargo test --release -p ccdb-bench --lib e18 -- --ignored --nocapture`
    #[test]
    #[ignore = "full-scale measurement; run in release mode on a quiet machine"]
    fn print_full_tables() {
        println!("{}", run(false).render());
        println!("{}", run_idle(false).render());
    }

    #[test]
    fn both_backends_answer_through_the_crowd() {
        let t = run_idle(true);
        assert!(!t.rows.is_empty());
        // The poll leg always runs; every leg that ran must be error-free.
        for row in &t.rows {
            if row[4] != "-" {
                assert_eq!(row[4], "0", "live client saw errors: {:?}", t.rows);
                assert!(row[2].ends_with("us"), "{:?}", t.rows);
            }
        }
    }
}
