//! E3 — selective permeability: visible data scales with the `inheriting:`
//! clause, not with the component.
//!
//! Paper claim (§2 problem 2, §4.3): "the inheritance relationship is
//! selective: only the explicitly specified parts of data are transferred";
//! a wholesale copy instead always carries the full component. Measured:
//! bytes visible in one inheritor and enumeration time, as the permeability
//! k grows, against the baseline's full copy of a 64-attribute component.

use ccdb_baseline::CopyBaseline;
use ccdb_core::Value;

use super::time_per_iter;
use crate::table::{fmt_bytes, fmt_nanos, Table};
use crate::workload::fanout_store;

const N_ATTRS: usize = 64;

/// Run E3.
pub fn run(quick: bool) -> Table {
    let ks: &[usize] = if quick {
        &[1, 8, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let iters = if quick { 200 } else { 5_000 };
    let mut t = Table::new(
        "E3: selective permeability — visible bytes & enumeration time vs k (component: 64 attrs)",
        &[
            "permeable k",
            "view bytes",
            "view enumerate",
            "full-copy bytes",
            "copy bytes (selective)",
        ],
    );
    for &k in ks {
        let (st, _interface, imps) = fanout_store(1, N_ATTRS, k);
        let imp = imps[0];
        // Bytes visible through the view = sum over permeable attrs.
        let view_bytes: usize = (0..k)
            .map(|i| {
                let v = st.attr(imp, &format!("A{i}")).unwrap();
                format!("A{i}").len() + v.byte_size()
            })
            .sum();
        let names: Vec<String> = (0..k).map(|i| format!("A{i}")).collect();
        let enumerate_ns = time_per_iter(iters, || {
            for n in &names {
                std::hint::black_box(st.attr(imp, n).unwrap());
            }
        });

        // Baseline: wholesale copy vs selective copy.
        let mut full = CopyBaseline::new();
        let attrs: Vec<(String, Value)> = (0..N_ATTRS)
            .map(|i| (format!("A{i}"), Value::Int(i as i64)))
            .collect();
        let refs: Vec<(&str, Value)> = attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let c = full.add_component(refs.clone());
        full.build_composite(&[c], None);
        let full_bytes = full.copied_bytes();

        let mut selective = CopyBaseline::new();
        let c2 = selective.add_component(refs);
        let sel: Vec<&str> = names.iter().map(String::as_str).collect();
        selective.build_composite(&[c2], Some(&sel));
        let sel_bytes = selective.copied_bytes();

        t.row(vec![
            k.to_string(),
            fmt_bytes(view_bytes),
            fmt_nanos(enumerate_ns),
            fmt_bytes(full_bytes),
            fmt_bytes(sel_bytes),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_bytes_scale_with_k_copy_stays_flat() {
        let t = run(true);
        // Full copy column identical across rows (always 64 attrs).
        let full: Vec<&String> = t.rows.iter().map(|r| &r[3]).collect();
        assert!(full.windows(2).all(|w| w[0] == w[1]));
        // View bytes strictly grow with k.
        assert_ne!(t.rows[0][1], t.rows[2][1]);
    }
}
