//! E16 — observability overhead: what does watching the server cost?
//!
//! PR 8 adds a background sampler (every registered series snapshotted
//! into the telemetry ring on a fixed cadence) and `watch` streaming
//! subscriptions. Observability that perturbs the system it observes is
//! worse than none, so E16 measures the cost directly: the E12 workload
//! shape (in-process server, closed-loop clients, 90% resolved reads /
//! 10% transmitter writes) runs in interleaved A/B arms —
//!
//! - **off**: global sampler stopped, no subscribers;
//! - **on**: sampler running *plus* one live `watch` subscriber
//!   streaming `ccdb_server_*` frames at 100 ms.
//!
//! Arms alternate (off, on, off, on, …) so thermal/cache drift hits both
//! equally, and the medians are compared. The documented target is ≤2%
//! throughput overhead (measured in release mode, see EXPERIMENTS.md);
//! the test enforces a deliberately generous ≤10% guard because it runs
//! the quick shape in debug builds on shared CI machines, where run-to-run
//! jitter alone exceeds the effect size being measured.
//!
//! The table also reports the first wakeup-latency distribution: the
//! admission queue's own enqueue→dequeue histogram
//! (`ccdb_server_wakeup_latency_ns`), deltaed around the measured arms —
//! how long an admitted job waits before a worker picks it up, measured
//! at the source rather than reconstructed from phase timelines.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ccdb_core::shared::SharedStore;
use ccdb_core::Value;
use ccdb_obs::metrics::LATENCY_BUCKETS_NS;
use ccdb_obs::timeseries::{start_global_sampler, stop_global_sampler};
use ccdb_obs::HistogramSnapshot;
use ccdb_server::{Client, Server, ServerConfig};

use crate::table::Table;
use crate::workload::fanout_store;

/// One closed-loop client; returns (completed, errors).
fn client_loop(
    addr: std::net::SocketAddr,
    interface: ccdb_core::Surrogate,
    imps: &[ccdb_core::Surrogate],
    requests: u64,
    seed: u64,
) -> (u64, u64) {
    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return (0, requests),
    };
    if c.set_read_timeout(Some(Duration::from_secs(30))).is_err() {
        return (0, requests);
    }
    let mut n = 0u64;
    while n < requests {
        let outcome = if n % 10 == 9 {
            c.set_attr(interface, "A0", Value::Int((seed + n) as i64))
        } else {
            let imp = imps[(seed + n) as usize % imps.len()];
            c.attr(imp, "A0").map(|_| ())
        };
        match outcome {
            Ok(()) => {
                completed += 1;
                n += 1;
            }
            Err(e) if e.is_overloaded() => thread::sleep(Duration::from_millis(1)),
            Err(_) => {
                errors += 1;
                n += 1;
            }
        }
    }
    (completed, errors)
}

/// Runs one arm of the workload; returns (throughput req/s, errors).
fn run_arm(
    addr: std::net::SocketAddr,
    interface: ccdb_core::Surrogate,
    imps: &[ccdb_core::Surrogate],
    clients: usize,
    requests_per_client: u64,
) -> (f64, u64) {
    let total_completed = Arc::new(AtomicU64::new(0));
    let total_errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    thread::scope(|scope| {
        for w in 0..clients {
            let imps = &imps;
            let (tc, te) = (Arc::clone(&total_completed), Arc::clone(&total_errors));
            scope.spawn(move || {
                let (c, e) =
                    client_loop(addr, interface, imps, requests_per_client, w as u64 * 7919);
                tc.fetch_add(c, Ordering::Relaxed);
                te.fetch_add(e, Ordering::Relaxed);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    (
        total_completed.load(Ordering::Relaxed) as f64 / elapsed,
        total_errors.load(Ordering::Relaxed),
    )
}

/// Bucket-wise histogram delta (the registry entries are process-global).
fn snap_delta(before: &HistogramSnapshot, after: &HistogramSnapshot) -> HistogramSnapshot {
    HistogramSnapshot {
        bounds: after.bounds.clone(),
        buckets: after
            .buckets
            .iter()
            .zip(before.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(a, b)| a.saturating_sub(*b))
            .collect(),
        sum: after.sum.saturating_sub(before.sum),
        count: after.count.saturating_sub(before.count),
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Run E16: sampler+watch overhead plus the wakeup-latency distribution.
pub fn run(quick: bool) -> Table {
    let clients = if quick { 4 } else { 8 };
    let requests_per_client: u64 = if quick { 800 } else { 2_500 };
    let pairs = 3;
    let n_imps = if quick { 64 } else { 256 };

    let (st, interface, imps) = fanout_store(n_imps, 4, 4);
    let shared = SharedStore::from_store(st);
    // The server's config enables `watch`; the arms flip the
    // process-global sampler themselves, so the config's own interval is
    // only the streaming gate here.
    let server = Server::start(
        ServerConfig {
            workers: 4,
            queue_depth: 128,
            sample_interval_ms: 100,
            ..ServerConfig::default()
        },
        shared,
    )
    .expect("server binds");
    let addr = server.local_addr();

    let wakeup_hist =
        ccdb_obs::global().histogram("ccdb_server_wakeup_latency_ns", LATENCY_BUCKETS_NS);
    let wakeup_before = wakeup_hist.snapshot();

    // Warmup arm (not measured): populate the rescache, fault in pages.
    run_arm(addr, interface, &imps, clients, requests_per_client / 4);

    let mut thr_off = Vec::new();
    let mut thr_on = Vec::new();
    let mut errors = 0u64;
    let mut frames_seen = 0u64;
    for _ in 0..pairs {
        // Arm A: sampler stopped, nobody watching.
        stop_global_sampler();
        let (thr, e) = run_arm(addr, interface, &imps, clients, requests_per_client);
        thr_off.push(thr);
        errors += e;

        // Arm B: sampler on at the server's cadence, one live subscriber
        // draining frames for the duration of the arm.
        start_global_sampler(100, 512);
        let stop = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let watcher = {
            let (stop, frames) = (Arc::clone(&stop), Arc::clone(&frames));
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("watcher connects");
                c.set_read_timeout(Some(Duration::from_millis(500))).ok();
                if c.watch(100, &["ccdb_server_*"]).is_err() {
                    return;
                }
                while !stop.load(Ordering::Relaxed) {
                    if c.recv_watch_frame().is_ok() {
                        frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };
        let (thr, e) = run_arm(addr, interface, &imps, clients, requests_per_client);
        thr_on.push(thr);
        errors += e;
        stop.store(true, Ordering::Relaxed);
        watcher.join().expect("watcher joins");
        frames_seen += frames.load(Ordering::Relaxed);
    }
    // Leave the process-global sampler running for whoever runs next.
    start_global_sampler(100, 512);
    server.shutdown();

    let wakeup = snap_delta(&wakeup_before, &wakeup_hist.snapshot());
    let off = median(thr_off);
    let on = median(thr_on);
    let overhead_pct = if off > 0.0 {
        100.0 * (off - on) / off
    } else {
        0.0
    };

    let mut t = Table::new(
        "E16: telemetry sampler + watch subscriber overhead (E12 workload, interleaved A/B)",
        &["metric", "value", "note"],
    );
    t.row(vec![
        "throughput off".into(),
        format!("{off:.0} req/s"),
        "median, sampler stopped".into(),
    ]);
    t.row(vec![
        "throughput on".into(),
        format!("{on:.0} req/s"),
        "median, sampler @100ms + 1 watcher".into(),
    ]);
    t.row(vec![
        "overhead".into(),
        format!("{overhead_pct:.2}%"),
        "target <=2% (release), guard <=10%".into(),
    ]);
    t.row(vec![
        "watch frames".into(),
        frames_seen.to_string(),
        "streamed to the subscriber".into(),
    ]);
    t.row(vec![
        "errors".into(),
        errors.to_string(),
        "server error responses".into(),
    ]);
    let q = |p: f64| {
        wakeup
            .quantile(p)
            .map(|v| format!("{:.1} us", v / 1e3))
            .unwrap_or_else(|| "-".into())
    };
    t.row(vec![
        "wakeup count".into(),
        wakeup.count.to_string(),
        "enqueue->dequeue observations".into(),
    ]);
    t.row(vec!["wakeup p50".into(), q(0.50), "queue wait".into()]);
    t.row(vec!["wakeup p95".into(), q(0.95), "queue wait".into()]);
    t.row(vec!["wakeup p99".into(), q(0.99), "queue wait".into()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_and_watcher_cost_stays_inside_the_guard() {
        let t = run(true);
        let get = |name: &str| -> &Vec<String> {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("no `{name}` row in {:?}", t.rows))
        };
        assert_eq!(get("errors")[1], "0", "{:?}", t.rows);
        let overhead: f64 = get("overhead")[1].trim_end_matches('%').parse().unwrap();
        assert!(
            overhead <= 10.0,
            "sampler+watch overhead {overhead:.2}% exceeds the 10% CI guard: {:?}",
            t.rows
        );
        // The watcher actually received frames and the queue's own
        // histogram saw the workload.
        let frames: u64 = get("watch frames")[1].parse().unwrap();
        assert!(frames > 0, "subscriber saw no frames: {:?}", t.rows);
        let wakeups: u64 = get("wakeup count")[1].parse().unwrap();
        assert!(wakeups > 0, "wakeup histogram empty: {:?}", t.rows);
    }
}
