//! E10 — configuration control: capture / diff / apply over component
//! closures.
//!
//! Paper §2 (aspect 1): configuration control "is concerned with the
//! problem of providing all components of an object"; §6 adds change
//! management ("composite objects may use old versions of interfaces").
//! Measured: cost of capturing a composite's binding snapshot, diffing two
//! snapshots after a partial redesign, and applying a snapshot back
//! (restoring a shipped state), as the number of component slots grows.

use ccdb_version::Configuration;

use crate::table::{fmt_nanos, Table};
use crate::workload::reuse_dag;

/// Run E10.
pub fn run(quick: bool) -> Table {
    let sweep: &[usize] = if quick {
        &[5, 20]
    } else {
        &[10, 50, 200, 1000]
    };
    let mut t = Table::new(
        "E10: configuration control — capture/diff/apply over component closures",
        &[
            "slots",
            "capture",
            "diff (10% rebound)",
            "apply (restore)",
            "rebound",
        ],
    );
    for &n in sweep {
        // One composite with n component slots bound into a 20-part library.
        let mut dag = reuse_dag(20, 1, n, 4, 11);
        let asm_parts = dag.composites[0].clone();
        let asm = dag
            .store
            .object(asm_parts[0])
            .unwrap()
            .owner
            .as_ref()
            .unwrap()
            .parent;

        let start = std::time::Instant::now();
        let release = Configuration::capture("release", &dag.store, asm).unwrap();
        let capture_ns = start.elapsed().as_nanos() as f64;
        assert_eq!(release.entries.len(), n);

        // Redesign 10% of the slots to a different library part.
        let rebound_slots = (n / 10).max(1);
        for part in asm_parts.iter().take(rebound_slots) {
            let rel = dag.store.binding_of(*part, "AllOf_If").unwrap();
            let old = dag.store.object(rel).unwrap().transmitter().unwrap();
            let new = *dag
                .store
                .object(old)
                .ok()
                .and_then(|_| dag.library.iter().find(|l| **l != old))
                .unwrap();
            dag.store.unbind(rel).unwrap();
            dag.store.bind("AllOf_If", new, *part, vec![]).unwrap();
        }

        let start = std::time::Instant::now();
        let current = Configuration::capture("current", &dag.store, asm).unwrap();
        let deltas = release.diff(&current);
        let diff_ns = start.elapsed().as_nanos() as f64;
        assert_eq!(deltas.len(), rebound_slots);

        let start = std::time::Instant::now();
        let report = release.apply(&mut dag.store);
        let apply_ns = start.elapsed().as_nanos() as f64;
        assert_eq!(report.rebound, rebound_slots);
        assert!(report.failed.is_empty());

        t.row(vec![
            n.to_string(),
            fmt_nanos(capture_ns),
            fmt_nanos(diff_ns),
            fmt_nanos(apply_ns),
            format!("{rebound_slots}/{n}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_restores_exactly_the_rebound_slots() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][4], "2/20");
    }
}
