//! E2 — read overhead of value resolution through inheritance chains.
//!
//! The price of the paper's view semantics: an inherited read walks the
//! binding chain (interface hierarchies make it multi-hop, §4.2). Measured:
//! ns per attribute read at chain depth d (d = 1 is a plain local read),
//! with the effective-schema memo on and off (ablation: the memo is our
//! implementation device, not part of the model).

use super::time_per_iter;
use crate::table::{fmt_nanos, Table};
use crate::workload::chain_store;

/// Run E2.
pub fn run(quick: bool) -> Table {
    let depths: &[usize] = if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 3, 4, 6, 8]
    };
    let iters = if quick { 2_000 } else { 100_000 };
    let mut t = Table::new(
        "E2: attribute-read latency vs inheritance-chain depth",
        &[
            "chain depth d",
            "hops",
            "read (cached schema)",
            "read (uncached)",
            "local read",
            "read (memoized)",
        ],
    );
    for &d in depths {
        let (st, leaf, root) = chain_store(d);
        // This experiment measures the *walk*; the resolution value cache
        // would answer every repeat in O(1) and flatten the curve (that
        // effect is E11's subject). Switch it off for the walk columns.
        st.set_resolution_cache(false);
        st.reset_stats();
        st.attr(leaf, "X").unwrap();
        let hops = st.stats().hops;

        let cached = time_per_iter(iters, || {
            std::hint::black_box(st.attr(leaf, "X").unwrap());
        });
        st.set_schema_cache(false);
        let uncached = time_per_iter(iters, || {
            std::hint::black_box(st.attr(leaf, "X").unwrap());
        });
        st.set_schema_cache(true);
        let local = time_per_iter(iters, || {
            std::hint::black_box(st.attr(root, "X").unwrap());
        });
        st.set_resolution_cache(true);
        let memoized = time_per_iter(iters, || {
            std::hint::black_box(st.attr(leaf, "X").unwrap());
        });
        t.row(vec![
            d.to_string(),
            hops.to_string(),
            fmt_nanos(cached),
            fmt_nanos(uncached),
            fmt_nanos(local),
            fmt_nanos(memoized),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_equal_depth_minus_one() {
        let t = run(true);
        for row in &t.rows {
            let d: u64 = row[0].parse().unwrap();
            let hops: u64 = row[1].parse().unwrap();
            assert_eq!(hops, d - 1);
        }
    }
}
