//! E9 — storage amplification under component reuse.
//!
//! §2: reusability of designed parts is the point of composition; copies
//! duplicate component data per use, the inheritance relationship shares it.
//! Measured: attribute bytes held by the inheritance store vs. the copy
//! baseline (library + embedded copies) on a Zipf-reuse workload, sweeping
//! the number of composites.

use ccdb_baseline::CopyBaseline;
use ccdb_core::Value;

use crate::table::{fmt_bytes, Table};
use crate::workload::{reuse_dag, rng, store_attr_bytes, zipf_sample};

const LIB: usize = 20;
const PER_COMPOSITE: usize = 8;
const N_ATTRS: usize = 16;

/// Run E9.
pub fn run(quick: bool) -> Table {
    let sweep: &[usize] = if quick {
        &[10, 50]
    } else {
        &[10, 100, 500, 2000]
    };
    let mut t = Table::new(
        "E9: storage amplification — shared (inheritance) vs duplicated (copy) component data",
        &[
            "composites",
            "inherit bytes",
            "copy bytes",
            "amplification",
            "component uses",
        ],
    );
    for &n in sweep {
        let dag = reuse_dag(LIB, n, PER_COMPOSITE, N_ATTRS, 7);
        let inherit_bytes = store_attr_bytes(&dag.store);

        // Equivalent copy-baseline population (same Zipf draw).
        let mut cb = CopyBaseline::new();
        let mut lib = Vec::new();
        for k in 0..LIB {
            let attrs: Vec<(String, Value)> = (0..N_ATTRS)
                .map(|i| (format!("A{i}"), Value::Int((k * 1000 + i) as i64)))
                .collect();
            let refs: Vec<(&str, Value)> =
                attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            lib.push(cb.add_component(refs));
        }
        let mut r = rng(7);
        for _ in 0..n {
            let picks: Vec<_> = (0..PER_COMPOSITE)
                .map(|_| lib[zipf_sample(&mut r, LIB)])
                .collect();
            cb.build_composite(&picks, None);
        }
        let copy_bytes = cb.library_bytes() + cb.copied_bytes();
        let uses = n * PER_COMPOSITE;
        t.row(vec![
            n.to_string(),
            fmt_bytes(inherit_bytes),
            fmt_bytes(copy_bytes),
            format!("{:.1}x", copy_bytes as f64 / inherit_bytes as f64),
            uses.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_approach_amplifies_storage() {
        let t = run(true);
        let last = t.rows.last().unwrap();
        let amp: f64 = last[3].trim_end_matches('x').parse().unwrap();
        assert!(
            amp > 2.0,
            "copying should clearly amplify storage, got {amp}"
        );
    }
}
