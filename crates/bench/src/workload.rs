//! Workload generators shared by the experiment binaries and the Criterion
//! benches. All randomness is seeded; all schemas come from the paper
//! ([`ccdb_lang::paper`]) or small purpose-built catalogs.

use ccdb_core::domain::Domain;
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A catalog with one interface type (`If`, `n_attrs` integer attributes
/// named `A0..`), an inheritance relationship `AllOf_If` letting the first
/// `permeable` of them through, and an implementation type `Impl`.
pub fn fanout_catalog(n_attrs: usize, permeable: usize) -> Catalog {
    assert!(permeable <= n_attrs);
    let mut c = Catalog::new();
    let attrs: Vec<AttrDef> = (0..n_attrs)
        .map(|i| AttrDef::new(&format!("A{i}"), Domain::Int))
        .collect();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: attrs,
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: (0..permeable).map(|i| format!("A{i}")).collect(),
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Impl".into(),
        inheritor_in: vec!["AllOf_If".into()],
        attributes: vec![AttrDef::new("Local", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c
}

/// One interface with `n` bound implementations. Returns
/// `(store, interface, implementations)`.
pub fn fanout_store(
    n: usize,
    n_attrs: usize,
    permeable: usize,
) -> (ObjectStore, Surrogate, Vec<Surrogate>) {
    fanout_store_with_shards(
        n,
        n_attrs,
        permeable,
        ccdb_core::rescache::DEFAULT_RESOLUTION_CACHE_SHARDS,
    )
}

/// [`fanout_store`] with an explicit resolution-cache shard count, for
/// experiments that compare lock-striping configurations (E13a). `1`
/// reproduces the pre-striping single-lock cache shape.
pub fn fanout_store_with_shards(
    n: usize,
    n_attrs: usize,
    permeable: usize,
    shards: usize,
) -> (ObjectStore, Surrogate, Vec<Surrogate>) {
    let mut st =
        ObjectStore::with_resolution_cache_shards(fanout_catalog(n_attrs, permeable), shards)
            .unwrap();
    let attrs: Vec<(String, Value)> = (0..n_attrs)
        .map(|i| (format!("A{i}"), Value::Int(i as i64)))
        .collect();
    let attr_refs: Vec<(&str, Value)> =
        attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let interface = st.create_object("If", attr_refs).unwrap();
    let mut imps = Vec::with_capacity(n);
    for k in 0..n {
        let imp = st
            .create_object("Impl", vec![("Local", Value::Int(k as i64))])
            .unwrap();
        st.bind("AllOf_If", interface, imp, vec![]).unwrap();
        imps.push(imp);
    }
    (st, interface, imps)
}

/// A catalog forming an abstraction *chain* of `depth` levels: `L0` is the
/// most abstract; each `L{i+1}` inherits attribute `X` from `L{i}` through
/// `AllOf_L{i}`.
pub fn chain_catalog(depth: usize) -> Catalog {
    assert!(depth >= 1);
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "L0".into(),
        attributes: vec![AttrDef::new("X", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    for i in 1..depth {
        c.register_inher_rel_type(InherRelTypeDef {
            name: format!("AllOf_L{}", i - 1),
            transmitter_type: format!("L{}", i - 1),
            inheritor_type: None,
            inheriting: vec!["X".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: format!("L{i}"),
            inheritor_in: vec![format!("AllOf_L{}", i - 1)],
            ..Default::default()
        })
        .unwrap();
    }
    c
}

/// A bound chain of `depth` objects; reading `X` on the last object walks
/// `depth - 1` hops. Returns `(store, leaf, root)`.
pub fn chain_store(depth: usize) -> (ObjectStore, Surrogate, Surrogate) {
    let mut st = ObjectStore::new(chain_catalog(depth)).unwrap();
    let root = st.create_object("L0", vec![("X", Value::Int(7))]).unwrap();
    let mut prev = root;
    let mut leaf = root;
    for i in 1..depth {
        let o = st.create_object(&format!("L{i}"), vec![]).unwrap();
        st.bind(&format!("AllOf_L{}", i - 1), prev, o, vec![])
            .unwrap();
        prev = o;
        leaf = o;
    }
    (st, leaf, root)
}

/// A store populated with `n_types` unrelated object types (`T0..`), each
/// holding `per_type` objects whose integer attribute `V` is its creation
/// index. The shape class-extent indexing is for: selecting one type out
/// of a store dominated by *other* types' objects. Returns the store and
/// the type names.
pub fn multitype_store(n_types: usize, per_type: usize) -> (ObjectStore, Vec<String>) {
    let mut c = Catalog::new();
    let names: Vec<String> = (0..n_types).map(|k| format!("T{k}")).collect();
    for name in &names {
        c.register_object_type(ObjectTypeDef {
            name: name.clone(),
            attributes: vec![AttrDef::new("V", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
    }
    let mut st = ObjectStore::new(c).unwrap();
    // Interleave creation so no type's extent is contiguous in surrogate
    // order (the index, not allocation luck, must provide the locality).
    for v in 0..per_type {
        for name in &names {
            st.create_object(name, vec![("V", Value::Int(v as i64))])
                .unwrap();
        }
    }
    (st, names)
}

/// Zipf-ish popularity sampler over `n` items (rank-1/r weights).
pub fn zipf_sample(r: &mut StdRng, n: usize) -> usize {
    let total: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    let mut x = r.gen::<f64>() * total;
    for k in 1..=n {
        x -= 1.0 / k as f64;
        if x <= 0.0 {
            return k - 1;
        }
    }
    n - 1
}

/// A reuse workload: `lib_size` library interfaces (each with `n_attrs`
/// attributes) and `n_composites` composites, each using `per_composite`
/// components drawn with Zipf popularity. Returns the store plus the
/// composite inheritor surrogates.
pub struct ReuseDag {
    /// The populated store.
    pub store: ObjectStore,
    /// Library interfaces.
    pub library: Vec<Surrogate>,
    /// All component subobjects (inheritors), grouped by composite.
    pub composites: Vec<Vec<Surrogate>>,
}

/// Build a reuse DAG (see [`ReuseDag`]). `seed` fixes the draw.
pub fn reuse_dag(
    lib_size: usize,
    n_composites: usize,
    per_composite: usize,
    n_attrs: usize,
    seed: u64,
) -> ReuseDag {
    let mut c = Catalog::new();
    let attrs: Vec<AttrDef> = (0..n_attrs)
        .map(|i| AttrDef::new(&format!("A{i}"), Domain::Int))
        .collect();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: attrs,
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: (0..n_attrs).map(|i| format!("A{i}")).collect(),
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    // A composite owns component subobjects which are the inheritors.
    c.register_object_type(ObjectTypeDef {
        name: "Component".into(),
        inheritor_in: vec!["AllOf_If".into()],
        attributes: vec![AttrDef::new("Pos", Domain::Point)],
        ..Default::default()
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Assembly".into(),
        attributes: vec![AttrDef::new("Name", Domain::Text)],
        subclasses: vec![ccdb_core::schema::SubclassSpec {
            name: "Parts".into(),
            element_type: "Component".into(),
        }],
        ..Default::default()
    })
    .unwrap();

    let mut st = ObjectStore::new(c).unwrap();
    let mut r = rng(seed);
    let mut library = Vec::with_capacity(lib_size);
    for k in 0..lib_size {
        let attrs: Vec<(String, Value)> = (0..n_attrs)
            .map(|i| (format!("A{i}"), Value::Int((k * 1000 + i) as i64)))
            .collect();
        let refs: Vec<(&str, Value)> = attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        library.push(st.create_object("If", refs).unwrap());
    }
    let mut composites = Vec::with_capacity(n_composites);
    for a in 0..n_composites {
        let asm = st
            .create_object("Assembly", vec![("Name", Value::Str(format!("asm-{a}")))])
            .unwrap();
        let mut parts = Vec::with_capacity(per_composite);
        for p in 0..per_composite {
            let comp = st
                .create_subobject(
                    asm,
                    "Parts",
                    vec![(
                        "Pos",
                        Value::Point {
                            x: p as i64,
                            y: a as i64,
                        },
                    )],
                )
                .unwrap();
            let lib_idx = zipf_sample(&mut r, lib_size);
            st.bind("AllOf_If", library[lib_idx], comp, vec![]).unwrap();
            parts.push(comp);
        }
        composites.push(parts);
    }
    ReuseDag {
        store: st,
        library,
        composites,
    }
}

/// A nested composite tree: each node is a complex object with `fanout`
/// subobjects down to `depth`. Returns `(store, root, object_count)`.
pub fn nested_tree(depth: usize, fanout: usize) -> (ObjectStore, Surrogate, usize) {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "Node".into(),
        attributes: vec![AttrDef::new("Tag", Domain::Int)],
        subclasses: vec![ccdb_core::schema::SubclassSpec {
            name: "Children".into(),
            element_type: "Node".into(),
        }],
        ..Default::default()
    })
    .unwrap();
    let mut st = ObjectStore::new(c).unwrap();
    let root = st
        .create_object("Node", vec![("Tag", Value::Int(0))])
        .unwrap();
    let mut count = 1usize;
    let mut frontier = vec![root];
    for d in 1..=depth {
        let mut next = Vec::new();
        for parent in frontier {
            for k in 0..fanout {
                let child = st
                    .create_subobject(
                        parent,
                        "Children",
                        vec![("Tag", Value::Int((d * 1000 + k) as i64))],
                    )
                    .unwrap();
                count += 1;
                next.push(child);
            }
        }
        frontier = next;
    }
    (st, root, count)
}

/// A complete §5 steel scenario: one weight-carrying structure assembled
/// from one girder and one plate (each bound to its interface) with
/// `n_screwings` screwing relationships, every constraint satisfiable.
/// Returns `(store, structure)`.
pub fn steel_structure(n_screwings: usize) -> (ObjectStore, Surrogate) {
    let catalog = ccdb_lang::paper::steel_catalog().expect("paper schema compiles");
    let mut st = ObjectStore::new(catalog).unwrap();

    // Interfaces with one bore per screwing each.
    let girder_if = st
        .create_object(
            "GirderInterface",
            vec![
                ("Length", Value::Int(400)),
                ("Height", Value::Int(20)),
                ("Width", Value::Int(10)),
            ],
        )
        .unwrap();
    let plate_if = st
        .create_object(
            "PlateInterface",
            vec![
                ("Thickness", Value::Int(5)),
                (
                    "Area",
                    Value::record(vec![
                        ("Length".into(), Value::Int(100)),
                        ("Width".into(), Value::Int(50)),
                    ]),
                ),
            ],
        )
        .unwrap();
    let mut girder_bores = Vec::new();
    let mut plate_bores = Vec::new();
    for i in 0..n_screwings {
        girder_bores.push(
            st.create_subobject(
                girder_if,
                "Bores",
                vec![
                    ("Diameter", Value::Int(8)),
                    ("Length", Value::Int(10)),
                    ("Position", Value::Point { x: i as i64, y: 0 }),
                ],
            )
            .unwrap(),
        );
        plate_bores.push(
            st.create_subobject(
                plate_if,
                "Bores",
                vec![
                    ("Diameter", Value::Int(8)),
                    ("Length", Value::Int(5)),
                    ("Position", Value::Point { x: i as i64, y: 1 }),
                ],
            )
            .unwrap(),
        );
    }

    // Bolt/nut library parts: bolt long enough for both bores + nut.
    let bolt = st
        .create_object(
            "BoltType",
            vec![("Length", Value::Int(19)), ("Diameter", Value::Int(8))],
        )
        .unwrap();
    let nut = st
        .create_object(
            "NutType",
            vec![("Length", Value::Int(4)), ("Diameter", Value::Int(8))],
        )
        .unwrap();

    // The structure with its component subobjects.
    let structure = st
        .create_object(
            "WeightCarrying_Structure",
            vec![
                ("Designer", Value::Str("G. Pegels".into())),
                ("Description", Value::Str("frame".into())),
            ],
        )
        .unwrap();
    let g = st.create_subobject(structure, "Girders", vec![]).unwrap();
    st.bind("AllOf_GirderIf", girder_if, g, vec![]).unwrap();
    let p = st.create_subobject(structure, "Plates", vec![]).unwrap();
    st.bind("AllOf_PlateIf", plate_if, p, vec![]).unwrap();

    // Screwings: each joins one girder bore with one plate bore and embeds
    // a bolt + nut (as subobjects of the relationship, §5).
    for i in 0..n_screwings {
        let screwing = st
            .create_subrel(
                structure,
                "Screwings",
                vec![("Bores", vec![girder_bores[i], plate_bores[i]])],
                vec![("Strength", Value::Int(100))],
            )
            .unwrap();
        let b = st.create_rel_subobject(screwing, "Bolt", vec![]).unwrap();
        st.bind("AllOf_BoltType", bolt, b, vec![]).unwrap();
        let n = st.create_rel_subobject(screwing, "Nut", vec![]).unwrap();
        st.bind("AllOf_NutType", nut, n, vec![]).unwrap();
    }
    (st, structure)
}

/// Bytes of attribute payload held by live objects in a store (for E9).
pub fn store_attr_bytes(st: &ObjectStore) -> usize {
    st.surrogates()
        .map(|s| {
            let o = st.object(s).unwrap();
            o.attrs
                .iter()
                .map(|(k, v)| k.len() + v.byte_size())
                .sum::<usize>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_store_binds_all() {
        let (st, interface, imps) = fanout_store(10, 4, 2);
        assert_eq!(imps.len(), 10);
        assert_eq!(st.inheritance_rels_of(interface).len(), 10);
        assert_eq!(st.attr(imps[3], "A1").unwrap(), Value::Int(1));
        // Non-permeable attr invisible.
        assert!(st.attr(imps[3], "A2").is_err());
    }

    #[test]
    fn chain_store_resolves_to_root() {
        let (st, leaf, root) = chain_store(5);
        st.reset_stats();
        assert_eq!(st.attr(leaf, "X").unwrap(), Value::Int(7));
        assert_eq!(st.stats().hops, 4);
        assert_ne!(leaf, root);
    }

    #[test]
    fn multitype_store_partitions_extents() {
        let (st, names) = multitype_store(4, 8);
        assert_eq!(names.len(), 4);
        assert_eq!(st.object_count(), 32);
        for name in &names {
            assert_eq!(st.extent_of(name).len(), 8);
        }
        assert!(st.verify_integrity().is_empty());
    }

    #[test]
    fn fanout_store_with_one_shard_still_resolves() {
        let (st, _interface, imps) = fanout_store_with_shards(4, 2, 2, 1);
        assert_eq!(st.resolution_cache_shards(), 1);
        assert_eq!(st.attr(imps[0], "A1").unwrap(), Value::Int(1));
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut r = rng(1);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_sample(&mut r, 10)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn reuse_dag_shapes() {
        let dag = reuse_dag(5, 20, 3, 4, 42);
        assert_eq!(dag.library.len(), 5);
        assert_eq!(dag.composites.len(), 20);
        assert!(dag.composites.iter().all(|c| c.len() == 3));
        // Every part resolves its inherited attributes.
        let part = dag.composites[0][0];
        assert!(dag.store.attr(part, "A0").is_ok());
        // Determinism.
        let dag2 = reuse_dag(5, 20, 3, 4, 42);
        let a = dag.store.attr(part, "A0").unwrap();
        let b = dag2.store.attr(dag2.composites[0][0], "A0").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn steel_structure_satisfies_all_constraints() {
        let (st, structure) = steel_structure(2);
        let violations = st.check_all().unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        // Bolt length = nut length + sum of bore lengths: 4 + 10 + 5 = 19.
        let screwings = st.subclass_members(structure, "Screwings").unwrap();
        assert_eq!(screwings.len(), 2);
        let bolts = st.subclass_members(screwings[0], "Bolt").unwrap();
        assert_eq!(st.attr(bolts[0], "Length").unwrap(), Value::Int(19));
    }

    #[test]
    fn steel_structure_detects_bad_bolt() {
        let (mut st, _structure) = steel_structure(1);
        // Shorten the library bolt: the screwing constraint must fail.
        let bolt = st
            .surrogates()
            .find(|s| st.object(*s).unwrap().type_name == "BoltType")
            .unwrap();
        st.set_attr(bolt, "Length", Value::Int(3)).unwrap();
        let violations = st.check_all().unwrap();
        assert!(!violations.is_empty());
    }

    #[test]
    fn nested_tree_counts() {
        let (st, root, count) = nested_tree(3, 2);
        assert_eq!(count, 1 + 2 + 4 + 8);
        assert_eq!(st.object_count(), count);
        assert_eq!(st.subclass_members(root, "Children").unwrap().len(), 2);
    }
}
