#![warn(missing_docs)]

//! # ccdb-bench
//!
//! Evaluation harness for the ccdb reproduction: seeded workload generators
//! ([`workload`]), the paper's five figure scenarios ([`figures`]), the
//! quantitative experiment suite E1–E11 ([`experiments`]), and a small table
//! printer ([`table`]).
//!
//! Binaries:
//! - `figures` — builds and prints the five figure reproductions;
//! - `experiments` — runs E1–E11 and prints their result tables
//!   (`--quick` for a fast pass).
//!
//! Criterion benches (one per experiment) live under `benches/`.

pub mod experiments;
pub mod figures;
pub mod table;
pub mod workload;

pub use table::Table;
