//! Run the E1–E12 experiment suite and print the result tables.
//!
//! Usage: `experiments [--quick] [--json] [--out <dir>]`
//!
//! With `--out <dir>`, the suite additionally writes `<dir>/experiments.json`
//! (the result tables) and a `<dir>/metrics.json` sidecar holding the
//! process-global [`ccdb_obs`] metrics snapshot accumulated while the
//! experiments ran — so every result file ships with the observability
//! counters (resolution, locking, WAL, buffer pool) that produced it.

use std::io::Write;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let out_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    ccdb_obs::global().reset_all();
    let tables = ccdb_bench::experiments::run_all(quick);
    let all: Vec<serde_json::Value> = tables.iter().map(|t| t.to_json()).collect();

    if let Some(dir) = &out_dir {
        let write_results = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            std::fs::write(
                dir.join("experiments.json"),
                serde_json::to_string_pretty(&all).unwrap(),
            )?;
            std::fs::write(dir.join("metrics.json"), ccdb_obs::global().render_json())
        };
        if let Err(e) = write_results() {
            eprintln!("experiments: cannot write --out {}: {e}", dir.display());
            std::process::exit(2);
        }
        writeln!(
            out,
            "wrote {}/experiments.json and metrics.json",
            dir.display()
        )
        .unwrap();
    }

    if json {
        writeln!(out, "{}", serde_json::to_string_pretty(&all).unwrap()).unwrap();
        return;
    }
    writeln!(
        out,
        "ccdb experiment suite (E1–E12){}\n",
        if quick { " — quick mode" } else { "" }
    )
    .unwrap();
    for table in tables {
        writeln!(out, "{}", table.render()).unwrap();
    }
}
