//! Run the E1–E10 experiment suite and print the result tables.
//!
//! Usage: `experiments [--quick] [--json]`

use std::io::Write;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let tables = ccdb_bench::experiments::run_all(quick);
    if json {
        let all: Vec<serde_json::Value> = tables.iter().map(|t| t.to_json()).collect();
        writeln!(out, "{}", serde_json::to_string_pretty(&all).unwrap()).unwrap();
        return;
    }
    writeln!(
        out,
        "ccdb experiment suite (E1–E10){}\n",
        if quick { " — quick mode" } else { "" }
    )
    .unwrap();
    for table in tables {
        writeln!(out, "{}", table.render()).unwrap();
    }
}
