//! Print the reproductions of the paper's five figures.

use std::io::Write;

fn main() {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (id, text) in ccdb_bench::figures::all_figures() {
        writeln!(out, "==================== {id} ====================").unwrap();
        writeln!(out, "{text}").unwrap();
    }
    writeln!(out, "All figure checks passed.").unwrap();
}
