#![warn(missing_docs)]

//! # ccdb-lang
//!
//! The definition language of *Complex and Composite Objects in CAD/CAM
//! Databases* (Wilkes/Klahold/Schlageter 1988), in the paper's concrete
//! syntax: `domain`, `obj-type`, `rel-type`, and `inher-rel-type`
//! declarations with `attributes:`, `types-of-subclasses:`,
//! `types-of-subrels:`/`connections:`, `constraints:`, `inheritor-in:`,
//! `transmitter:`/`inheritor:`/`inheriting:` sections — so that the
//! listings in the paper compile verbatim into a [`Catalog`].
//!
//! ```
//! use ccdb_core::schema::Catalog;
//! use ccdb_lang::compile_str;
//!
//! let mut catalog = Catalog::new();
//! compile_str(r#"
//!     obj-type GateInterface =
//!         attributes:
//!             Length, Width: integer;
//!     end GateInterface;
//!
//!     inher-rel-type AllOf_GateInterface =
//!         transmitter: object-of-type GateInterface;
//!         inheritor:   object;
//!         inheriting:  Length, Width;
//!     end AllOf_GateInterface;
//!
//!     obj-type GateImplementation =
//!         inheritor-in: AllOf_GateInterface;
//!         attributes:
//!             Function: matrix-of boolean;
//!     end GateImplementation;
//! "#, &mut catalog).unwrap();
//! catalog.validate().unwrap();
//! ```

pub mod ast;
pub mod compile;
pub mod paper;
pub mod parser;
pub mod render;
pub mod token;

use ccdb_core::schema::Catalog;

pub use compile::{compile, CompileError};
pub use parser::{parse, parse_expr, ParseError};
pub use render::render;
pub use token::{lex, LexError};

/// Any error from the language pipeline.
#[derive(Clone, PartialEq, Debug)]
pub enum LangError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Lowering to the catalog failed.
    Compile(CompileError),
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Parse(e) => write!(f, "{e}"),
            LangError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}

impl From<CompileError> for LangError {
    fn from(e: CompileError) -> Self {
        LangError::Compile(e)
    }
}

/// Parse and compile `src` into `catalog`. May be called repeatedly to
/// compile schema chunks incrementally; call [`Catalog::validate`] when all
/// chunks are in.
pub fn compile_str(src: &str, catalog: &mut Catalog) -> Result<(), LangError> {
    let decls = parser::parse(src)?;
    compile::compile(&decls, catalog)?;
    Ok(())
}

/// Parse and lower a stand-alone boolean expression (paper syntax) against
/// an existing catalog — bare identifiers that name enum literals of the
/// catalog resolve to literals, everything else roots at the queried
/// object. Used for top-down version-selection queries and ad-hoc
/// [`ObjectStore::select`](ccdb_core::store::ObjectStore::select) calls.
///
/// ```
/// use ccdb_core::schema::Catalog;
/// use ccdb_lang::{compile_str, compile_expr};
///
/// let mut catalog = Catalog::new();
/// compile_str("obj-type Gate = attributes: Length: integer; end Gate;", &mut catalog).unwrap();
/// let q = compile_expr("Length >= 10 and Length < 20", &catalog).unwrap();
/// assert!(q.to_string().contains("Length"));
/// ```
pub fn compile_expr(src: &str, catalog: &Catalog) -> Result<ccdb_core::expr::Expr, LangError> {
    let ast = parser::parse_expr(src)?;
    compile::lower_query_expr(&ast, catalog).map_err(LangError::Compile)
}
