//! Abstract syntax tree for the paper's definition language.
//!
//! The AST stays close to the concrete syntax; name/variable resolution and
//! enum-literal disambiguation happen in [`mod@crate::compile`].

/// A top-level declaration.
#[derive(Clone, PartialEq, Debug)]
pub enum Decl {
    /// `domain <name> = …`
    Domain {
        /// Domain name (may contain `/`, e.g. `I/O`).
        name: String,
        /// Body.
        body: DomainExpr,
    },
    /// `obj-type <name> = … end`
    ObjType(ObjTypeDecl),
    /// `rel-type <name> = … end`
    RelType(RelTypeDecl),
    /// `inher-rel-type <name> = … end`
    InherRelType(InherRelDecl),
}

/// A domain expression.
#[derive(Clone, PartialEq, Debug)]
pub enum DomainExpr {
    /// `integer`
    Int,
    /// `boolean`
    Bool,
    /// `char`
    Text,
    /// Reference to a named domain (or the built-in `Point`).
    Named(String),
    /// `(IN, OUT)`
    Enum(Vec<String>),
    /// `(X, Y: integer)` or `record: … end-domain` — grouped fields.
    Record(Vec<(Vec<String>, DomainExpr)>),
    /// `set-of D`
    SetOf(Box<DomainExpr>),
    /// `list-of D`
    ListOf(Box<DomainExpr>),
    /// `matrix-of D`
    MatrixOf(Box<DomainExpr>),
}

/// `Length, Width: integer;` — one attribute group.
#[derive(Clone, PartialEq, Debug)]
pub struct AttrGroup {
    /// Attribute names sharing the domain.
    pub names: Vec<String>,
    /// The shared domain.
    pub domain: DomainExpr,
}

/// One `types-of-subclasses:` entry.
#[derive(Clone, PartialEq, Debug)]
pub enum SubclassDecl {
    /// `Pins: PinType;`
    Named {
        /// Subclass name.
        name: String,
        /// Element type name.
        element_type: String,
    },
    /// Inline member-type declaration, e.g. the paper's
    /// `SubGates: inheritor-in: AllOf_GateInterface; attributes: GateLocation: Point;`
    Inline {
        /// Subclass name.
        name: String,
        /// `inheritor-in:` relationships of the member type.
        inheritor_in: Vec<String>,
        /// Extra attributes of the member type.
        attributes: Vec<AttrGroup>,
    },
}

/// One `types-of-subrels:` entry: `Wires: WireType where <expr>;`.
#[derive(Clone, PartialEq, Debug)]
pub struct SubrelDecl {
    /// Subrel name.
    pub name: String,
    /// Relationship type of the members.
    pub rel_type: String,
    /// The member-level `where` clause.
    pub where_expr: Option<LExpr>,
}

/// An `obj-type` declaration.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ObjTypeDecl {
    /// Type name.
    pub name: String,
    /// `inheritor-in:` list.
    pub inheritor_in: Vec<String>,
    /// `attributes:` groups.
    pub attributes: Vec<AttrGroup>,
    /// `types-of-subclasses:` entries.
    pub subclasses: Vec<SubclassDecl>,
    /// `types-of-subrels:` entries.
    pub subrels: Vec<SubrelDecl>,
    /// `constraints:` entries.
    pub constraints: Vec<ConstraintDecl>,
}

/// One `relates:` entry: `Pin1, Pin2: object-of-type PinType;`.
#[derive(Clone, PartialEq, Debug)]
pub struct ParticipantDecl {
    /// Role names sharing the spec.
    pub names: Vec<String>,
    /// `set-of` prefix present?
    pub many: bool,
    /// `object-of-type T` gives `Some(T)`; plain `object` gives `None`.
    pub of_type: Option<String>,
}

/// A `rel-type` declaration.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RelTypeDecl {
    /// Type name.
    pub name: String,
    /// `relates:` entries.
    pub participants: Vec<ParticipantDecl>,
    /// `attributes:` groups.
    pub attributes: Vec<AttrGroup>,
    /// `types-of-subclasses:` entries (e.g. ScrewingType's Bolt/Nut).
    pub subclasses: Vec<SubclassDecl>,
    /// `constraints:` entries.
    pub constraints: Vec<ConstraintDecl>,
}

/// An `inher-rel-type` declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct InherRelDecl {
    /// Type name.
    pub name: String,
    /// `transmitter: object-of-type T;`
    pub transmitter_type: String,
    /// `inheritor: object;` → `None`; `inheritor: object-of-type T;` → `Some`.
    pub inheritor_type: Option<String>,
    /// `inheriting:` item names.
    pub inheriting: Vec<String>,
    /// Own attributes of the relationship.
    pub attributes: Vec<AttrGroup>,
}

/// A constraint in a `constraints:` block.
///
/// Per the paper's §5 listing, `for` bindings accumulate over the rest of
/// the block: each constraint carries the bindings visible at its position
/// and is implicitly universally quantified over them.
#[derive(Clone, PartialEq, Debug)]
pub struct ConstraintDecl {
    /// Accumulated `for` bindings (variable, class path).
    pub bindings: Vec<(String, Vec<String>)>,
    /// The boolean expression.
    pub expr: LExpr,
    /// Trailing `where` filter (the paper's
    /// `count (Pins) = 2 where Pins.InOut = IN` form) — attached to the
    /// `count` during lowering.
    pub where_expr: Option<LExpr>,
}

/// Binary operators at the language level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

/// Aggregate functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LAgg {
    /// `sum (path)`
    Sum,
    /// `min (path)`
    Min,
    /// `max (path)`
    Max,
}

/// Language-level expressions (paths unresolved).
#[derive(Clone, PartialEq, Debug)]
pub enum LExpr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Dotted path, e.g. `SubGates.Pins` or `s.Diameter` or a bare
    /// identifier (maybe an enum literal — resolved at compile time).
    Path(Vec<String>),
    /// `count (path)`.
    Count(Vec<String>),
    /// `#v in path` — cardinality of a class.
    HashCount {
        /// The counting variable (unused semantically).
        var: String,
        /// The class path.
        path: Vec<String>,
    },
    /// `sum`/`min`/`max` over a path.
    Agg {
        /// Which aggregate.
        op: LAgg,
        /// The path.
        path: Vec<String>,
    },
    /// Unary minus.
    Neg(Box<LExpr>),
    /// `not`.
    Not(Box<LExpr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: LBinOp,
        /// Left operand.
        lhs: Box<LExpr>,
        /// Right operand.
        rhs: Box<LExpr>,
    },
    /// `item in path` (membership).
    In {
        /// Tested expression.
        item: Box<LExpr>,
        /// Class path.
        path: Vec<String>,
    },
    /// Inline `for (v in path, …): body` quantifier.
    ForAll {
        /// Bindings.
        bindings: Vec<(String, Vec<String>)>,
        /// Body.
        body: Box<LExpr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_construct_and_compare() {
        let a = LExpr::Binary {
            op: LBinOp::Eq,
            lhs: Box::new(LExpr::Path(vec!["s".into(), "Diameter".into()])),
            rhs: Box::new(LExpr::Path(vec!["n".into(), "Diameter".into()])),
        };
        let b = a.clone();
        assert_eq!(a, b);
        let d = DomainExpr::SetOf(Box::new(DomainExpr::Record(vec![(
            vec!["PinId".into()],
            DomainExpr::Int,
        )])));
        assert_ne!(d, DomainExpr::Int);
    }
}
