//! Lexer for the paper's concrete syntax.
//!
//! Identifier rules accommodate the paper's names: `-` and `/` continue an
//! identifier when immediately followed by a letter (so `obj-type`,
//! `inher-rel-type`, `I/O`, `AllOf_GateInterface` lex as single tokens).
//! Consequently, binary minus/division in expressions must be surrounded by
//! whitespace or non-letter characters — which matches how the paper writes
//! them (`100*Height*Width`, `n.Length + sum (…)`).

use std::fmt;

/// A lexical token with its source line (1-based) for error reporting.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token proper.
    pub kind: TokenKind,
    /// Source line the token starts on.
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are matched contextually by the
    /// parser against the exact spelling, e.g. `obj-type`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Quoted string literal.
    Str(String),
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-` (standalone)
    Minus,
    /// `*`
    Star,
    /// `/` (standalone)
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `#`
    Hash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Hash => write!(f, "`#`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexing error with line information.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, stripping `/* … */` comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment.
                let start_line = line;
                i += 2;
                loop {
                    match (chars.get(i), chars.get(i + 1)) {
                        (Some('*'), Some('/')) => {
                            i += 2;
                            break;
                        }
                        (Some('\n'), _) => {
                            line += 1;
                            i += 1;
                        }
                        (Some(_), _) => i += 1,
                        (None, _) => {
                            return Err(LexError {
                                message: "unterminated comment".into(),
                                line: start_line,
                            })
                        }
                    }
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\n') => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                line: start_line,
                            })
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                line: start_line,
                            })
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line: start_line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text.parse::<i64>().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    line,
                })?;
                out.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
            }
            _ if is_ident_start(c) => {
                let start = i;
                i += 1;
                loop {
                    match chars.get(i) {
                        Some(&ch) if is_ident_continue(ch) => i += 1,
                        // `-` or `/` joined to a following letter continues
                        // the identifier: obj-type, I/O, end-domain.
                        Some(&('-' | '/'))
                            if chars.get(i + 1).map(|c| c.is_alphabetic()).unwrap_or(false) =>
                        {
                            i += 2;
                        }
                        _ => break,
                    }
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    line,
                });
                i += 1;
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push(Token {
                        kind: TokenKind::Le,
                        line,
                    });
                    i += 2;
                }
                Some('>') => {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        line,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        line,
                    });
                    i += 1;
                }
            },
            '>' => match chars.get(i + 1) {
                Some('=') => {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        line,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        line,
                    });
                    i += 1;
                }
            },
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    line,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    line,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            ':' => {
                out.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
                i += 1;
            }
            '#' => {
                out.push(Token {
                    kind: TokenKind::Hash,
                    line,
                });
                i += 1;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line,
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_with_hyphens_are_single_tokens() {
        let k = kinds("obj-type inher-rel-type end-domain set-of list-of matrix-of object-of-type");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("obj-type".into()),
                TokenKind::Ident("inher-rel-type".into()),
                TokenKind::Ident("end-domain".into()),
                TokenKind::Ident("set-of".into()),
                TokenKind::Ident("list-of".into()),
                TokenKind::Ident("matrix-of".into()),
                TokenKind::Ident("object-of-type".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn slash_identifier_vs_division() {
        assert_eq!(
            kinds("I/O"),
            vec![TokenKind::Ident("I/O".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("a / 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn minus_binds_into_identifier_only_before_letters() {
        assert_eq!(
            kinds("Length - 1"),
            vec![
                TokenKind::Ident("Length".into()),
                TokenKind::Minus,
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("end-domain"),
            vec![TokenKind::Ident("end-domain".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn operators_and_punctuation() {
        let k = kinds("= <> < <= > >= + * ( ) : ; , . #");
        assert_eq!(
            k,
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Star,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Colon,
                TokenKind::Semi,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Hash,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_stripped_and_lines_tracked() {
        let toks = lex("a /* comment\nspanning lines */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokenKind::Ident("b".into()));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn paper_snippet_lexes() {
        let src = "count (Pins) = 2 where Pins.InOut = IN;";
        let k = kinds(src);
        assert_eq!(k[0], TokenKind::Ident("count".into()));
        assert_eq!(k[1], TokenKind::LParen);
        assert!(k.contains(&TokenKind::Ident("where".into())));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = lex("ok\n  @").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("@"));
        let err = lex("\"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = lex("/* no end").unwrap_err();
        assert!(err.message.contains("comment"));
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds("42 \"hello\""),
            vec![
                TokenKind::Int(42),
                TokenKind::Str("hello".into()),
                TokenKind::Eof
            ]
        );
        assert!(lex("99999999999999999999").is_err());
    }
}
