//! The paper's schema listings, as compilable source text.
//!
//! [`CHIP_SCHEMA`] collects the chip-design listings of §3–§4 (Figures 1–4);
//! [`STEEL_SCHEMA`] the steel-construction listings of §5 (Figure 5). The
//! texts follow the paper *verbatim up to documented normalizations*:
//!
//! - casing/typo fixes: `Wiretype` → `WireType`, `inher-rel-typ` is accepted
//!   as written, `Positiion` → `Position`, `bolds` → bolts;
//! - §4 defines `GateInterface` twice (flat, then split into the
//!   `GateInterface_I` hierarchy); the *hierarchy* version is used here, so
//!   `Pins` flows `GateInterface_I` → `GateInterface` → implementations;
//! - `GateImplementation` carries the `TimeBehavior` attribute introduced in
//!   the §4.2 permeability discussion, and `SomeOf_Gate` is included;
//! - §3's stand-alone `SimpleGate`, `ElementaryGate` and `Gate` (Figure 1)
//!   are kept under their own names.

use ccdb_core::schema::Catalog;

use crate::{compile_str, LangError};

/// §3 + §4 chip-design schema (Figures 1–4).
pub const CHIP_SCHEMA: &str = r#"
/* ---- domains (section 3) ---- */
domain I/O = (IN, OUT);
domain Point = (X, Y: integer);

/* ---- SimpleGate: pins as a set-valued attribute (section 3) ---- */
obj-type SimpleGate =
    attributes:
        Length, Width: integer;
        Function: (AND, OR, NOR, NAND);
        Pins: set-of ( PinId: integer;
                       InOut: I/O;
                     );
    constraints:
        count (Pins) = 2 where Pins.InOut = IN;
        count (Pins) = 1 where Pins.InOut = OUT;
end SimpleGate;

/* ---- pins as objects, wires as relationships (section 3) ---- */
obj-type PinType =
    attributes:
        InOut: I/O;
        PinLocation: Point;
end PinType;

rel-type WireType =
    relates:
        Pin1,
        Pin2: object-of-type PinType;
    attributes:
        Corners: list-of Point;
end WireType;

/* ---- ElementaryGate: complex object with Pin subobjects ---- */
obj-type ElementaryGate =
    attributes:
        Length, Width: integer;
        Function: (AND, OR, NOR, NAND);
        GatePosition: Point;
    types-of-subclasses:
        Pins: PinType;
    constraints:
        count (Pins) = 2 where Pins.InOut = IN;
        count (Pins) = 1 where Pins.InOut = OUT;
end ElementaryGate;

/* ---- Gate: circuits from elementary gates (Figure 1) ---- */
obj-type Gate =
    attributes:
        Length,
        Width: integer;
        Function: matrix-of boolean;
    types-of-subclasses:
        Pins: PinType;
        SubGates: ElementaryGate;
    types-of-subrels:
        Wires: WireType
            where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins)
              and (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
end Gate;

/* ---- interface hierarchy (section 4.2, Figure 2) ---- */
obj-type GateInterface_I =
    types-of-subclasses:
        Pins: PinType;
end GateInterface_I;

inher-rel-type AllOf_GateInterface_I =
    transmitter: object-of-type GateInterface_I;
    inheritor: object;
    inheriting: Pins;
end AllOf_GateInterface_I;

obj-type GateInterface =
    inheritor-in: AllOf_GateInterface_I;
    attributes:
        Length,
        Width: integer;
end GateInterface;

inher-rel-type AllOf_GateInterface =
    /* enables objects to inherit all data of GateInterface objects */
    transmitter: object-of-type GateInterface;
    inheritor: object;
    inheriting:
        Length, Width, Pins;
end AllOf_GateInterface;

/* ---- implementations and composites (section 4.2/4.3, Figures 3-4) ---- */
obj-type GateImplementation =
    inheritor-in: AllOf_GateInterface;
    attributes:
        Function: matrix-of boolean;
        TimeBehavior: integer;
    types-of-subclasses:
        SubGates:
            inheritor-in: AllOf_GateInterface;
            attributes:
                GateLocation: Point;
    types-of-subrels:
        Wires: WireType
            where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins)
              and (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
end GateImplementation;

/* ---- tailored permeability (section 4.3) ---- */
inher-rel-type SomeOf_Gate =
    transmitter: object-of-type GateImplementation;
    inheritor: object;
    inheriting:
        Length, Width,
        TimeBehavior, Pins;
end SomeOf_Gate;
"#;

/// §5 steel-construction schema (Figure 5).
pub const STEEL_SCHEMA: &str = r#"
domain Point = (X, Y: integer);

domain AreaDom = record:
    Length, Width: integer;
end-domain AreaDom;

obj-type BoltType =
    attributes:
        Length,
        Diameter: integer;
end BoltType;

obj-type NutType =
    attributes:
        Length,
        Diameter: integer;
end NutType;

obj-type BoreType =
    attributes:
        Diameter,
        Length: integer;
        Position: Point;
end BoreType;

/* ---- 1. interface definitions ---- */
obj-type GirderInterface =
    attributes:
        Length, Height, Width: integer;
    types-of-subclasses:
        Bores: BoreType;
    constraints:
        Length < 100*Height*Width;
end GirderInterface;

obj-type PlateInterface =
    attributes:
        Thickness: integer;
        Area: AreaDom;
    types-of-subclasses:
        Bores: BoreType;
end PlateInterface;

/* ---- 2. inheritance relationships ---- */
inher-rel-type AllOf_GirderIf =
    transmitter: object-of-type GirderInterface;
    inheritor: object-of-type Girder;
    inheriting:
        Length, Height, Width, Bores;
end AllOf_GirderIf;

inher-rel-type AllOf_PlateIf =
    transmitter: object-of-type PlateInterface;
    inheritor: object-of-type Plate;
    inheriting:
        Thickness, Area, Bores;
end AllOf_PlateIf;

/* ---- 3. Plate and Girder ---- */
obj-type Plate =
    inheritor-in: AllOf_PlateIf;
    attributes:
        Material: (wood, metal);
end Plate;

obj-type Girder =
    inheritor-in: AllOf_GirderIf;
    attributes:
        Material: (wood, metal);
end Girder;

/* ---- bolts and nuts as components of the screwing ---- */
inher-rel-type AllOf_BoltType =
    transmitter: object-of-type BoltType;
    inheritor: object;
    inheriting:
        Length, Diameter,
end AllOf_BoltType;

inher-rel-type AllOf_NutType =
    transmitter: object-of-type NutType;
    inheritor: object;
    inheriting:
        Length, Diameter;
end AllOf_NutType;

rel-type ScrewingType =
    relates:
        Bores: set-of object-of-type BoreType;
    attributes:
        Strength: integer;
    types-of-subclasses:
        Bolt:
            inheritor-in: AllOf_BoltType;
        Nut:
            inheritor-in: AllOf_NutType;
    constraints:
        #s in Bolt = 1;
        #n in Nut = 1;
        for (s in Bolt, n in Nut):
            s.Diameter = n.Diameter;
        for b in Bores:
            s.Diameter <= b.Diameter;
        s.Length = n.Length + sum (Bores.Length);
end ScrewingType;

obj-type WeightCarrying_Structure =
    attributes:
        Designer: char;
        Description: char;
    types-of-subclasses:
        Girders:
            inheritor-in: AllOf_GirderIf;
        Plates:
            inheritor-in: AllOf_PlateIf;
    types-of-subrels:
        Screwings: ScrewingType
            where for x in Bores:
                x in Girders.Bores or x in Plates.Bores;
end WeightCarrying_Structure;
"#;

/// Compile the chip-design schema into a fresh, validated catalog.
pub fn chip_catalog() -> Result<Catalog, LangError> {
    let mut c = Catalog::new();
    compile_str(CHIP_SCHEMA, &mut c)?;
    c.validate().map_err(|e| {
        LangError::Compile(crate::CompileError {
            message: e.to_string(),
        })
    })?;
    Ok(c)
}

/// Compile the steel-construction schema into a fresh, validated catalog.
pub fn steel_catalog() -> Result<Catalog, LangError> {
    let mut c = Catalog::new();
    compile_str(STEEL_SCHEMA, &mut c)?;
    c.validate().map_err(|e| {
        LangError::Compile(crate::CompileError {
            message: e.to_string(),
        })
    })?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_schema_compiles_and_validates() {
        let c = chip_catalog().unwrap();
        assert!(c.object_type("SimpleGate").is_ok());
        assert!(c.object_type("ElementaryGate").is_ok());
        assert!(c.object_type("Gate").is_ok());
        assert!(c.object_type("GateInterface_I").is_ok());
        assert!(c.object_type("GateInterface").is_ok());
        assert!(c.object_type("GateImplementation").is_ok());
        assert!(c.object_type("GateImplementation.SubGates").is_ok());
        assert!(c.rel_type("WireType").is_ok());
        assert!(c.inher_rel_type("AllOf_GateInterface").is_ok());
        assert!(c.inher_rel_type("SomeOf_Gate").is_ok());
        // Transitive effective schema: implementations see Pins.
        let eff = c.effective_schema("GateImplementation").unwrap();
        assert!(eff.subclass("Pins").is_some());
        assert!(eff.attr("Length").is_some());
    }

    #[test]
    fn steel_schema_compiles_and_validates() {
        let c = steel_catalog().unwrap();
        assert!(c.object_type("BoltType").is_ok());
        assert!(c.object_type("GirderInterface").is_ok());
        assert!(c.object_type("Girder").is_ok());
        assert!(c.rel_type("ScrewingType").is_ok());
        assert!(c.object_type("WeightCarrying_Structure").is_ok());
        // Anonymous member types generated.
        assert!(c.object_type("ScrewingType.Bolt").is_ok());
        assert!(c.object_type("WeightCarrying_Structure.Girders").is_ok());
        // ScrewingType got all five constraints.
        assert_eq!(c.rel_type("ScrewingType").unwrap().constraints.len(), 5);
        // Structure members inherit the interfaces' items.
        let eff = c
            .effective_schema("WeightCarrying_Structure.Girders")
            .unwrap();
        assert!(eff.attr("Height").is_some());
        assert!(eff.subclass("Bores").is_some());
    }

    #[test]
    fn schemas_do_not_collide_when_loaded_separately() {
        // Both schemas define `Point`; loading both into one catalog is a
        // duplicate-domain error by design — they are separate worlds.
        let mut c = Catalog::new();
        compile_str(CHIP_SCHEMA, &mut c).unwrap();
        assert!(compile_str(STEEL_SCHEMA, &mut c).is_err());
    }
}
