//! Recursive-descent parser for the paper's definition language.
//!
//! Syntax notes (documented deviations are in DESIGN.md):
//!
//! - `connections:` is accepted as a synonym of `types-of-subrels:` (the
//!   paper's `GateImplementation` listing uses it).
//! - In a `constraints:` block, `for` bindings accumulate for the remaining
//!   constraints of the block (the paper's §5 `ScrewingType` relies on this).
//! - An *inline* subclass declaration (with `inheritor-in:`/`attributes:`)
//!   ends at the next section keyword or at the next inline subclass; a
//!   *named* subclass entry after an inline one is not distinguishable from
//!   an attribute and is therefore not supported (the paper never does it).
//! - Trailing semicolons/commas are tolerated where the paper is
//!   inconsistent.

use crate::ast::*;
use crate::token::{lex, LexError, Token, TokenKind};

/// Parse error with source line.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Section keywords that terminate entry lists.
const SECTIONS: &[&str] = &[
    "attributes",
    "constraints",
    "types-of-subclasses",
    "types-of-subrels",
    "connections",
    "relates",
    "transmitter",
    "inheritor",
    "inheriting",
    "inheritor-in",
    "end",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parse a whole source text into declarations.
pub fn parse(src: &str) -> Result<Vec<Decl>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut decls = Vec::new();
    while !p.at_eof() {
        decls.push(p.decl()?);
    }
    Ok(decls)
}

/// Parse a single expression (used by tests and the version-selection DSL).
pub fn parse_expr(src: &str) -> Result<LExpr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if !p.at_eof() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: format!("{msg} (found {})", self.peek()),
            line: self.line(),
        }
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.err(&format!("expected {what}"))),
        }
    }

    fn at_section(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if SECTIONS.contains(&s.as_str()))
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    fn decl(&mut self) -> Result<Decl, ParseError> {
        if self.eat_kw("domain") {
            return self.domain_decl();
        }
        if self.eat_kw("obj-type") {
            return self.obj_type_decl();
        }
        if self.eat_kw("rel-type") {
            return self.rel_type_decl();
        }
        if self.eat_kw("inher-rel-type") || self.eat_kw("inher-rel-typ") {
            // (the paper's §5 contains the typo `inher-rel-typ`)
            return self.inher_rel_decl();
        }
        Err(self.err("expected `domain`, `obj-type`, `rel-type`, or `inher-rel-type`"))
    }

    fn domain_decl(&mut self) -> Result<Decl, ParseError> {
        let name = self.ident("domain name")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let body = if self.eat_kw("record") {
            // `record: fields… end-domain <name>;`
            self.expect(&TokenKind::Colon, "`:`")?;
            let mut fields = Vec::new();
            while !self.is_kw("end-domain") {
                fields.push(self.record_field()?);
            }
            self.expect_kw("end-domain")?;
            let _ = self.ident("domain name after end-domain");
            DomainExpr::Record(fields)
        } else {
            self.domain_expr()?
        };
        self.eat(&TokenKind::Semi);
        Ok(Decl::Domain { name, body })
    }

    /// `names… : domain ;` — one record field group.
    fn record_field(&mut self) -> Result<(Vec<String>, DomainExpr), ParseError> {
        let mut names = vec![self.ident("field name")?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.ident("field name")?);
        }
        self.expect(&TokenKind::Colon, "`:`")?;
        let d = self.domain_expr()?;
        self.eat(&TokenKind::Semi);
        Ok((names, d))
    }

    fn domain_expr(&mut self) -> Result<DomainExpr, ParseError> {
        if self.eat_kw("integer") {
            return Ok(DomainExpr::Int);
        }
        if self.eat_kw("boolean") {
            return Ok(DomainExpr::Bool);
        }
        if self.eat_kw("char") {
            return Ok(DomainExpr::Text);
        }
        if self.eat_kw("set-of") {
            return Ok(DomainExpr::SetOf(Box::new(self.domain_expr()?)));
        }
        if self.eat_kw("list-of") {
            return Ok(DomainExpr::ListOf(Box::new(self.domain_expr()?)));
        }
        if self.eat_kw("matrix-of") {
            return Ok(DomainExpr::MatrixOf(Box::new(self.domain_expr()?)));
        }
        if self.eat(&TokenKind::LParen) {
            // Enum `(IN, OUT)` or record `(X, Y: integer; …)`.
            let mut names = vec![self.ident("identifier")?];
            while self.eat(&TokenKind::Comma) {
                names.push(self.ident("identifier")?);
            }
            if self.eat(&TokenKind::RParen) {
                return Ok(DomainExpr::Enum(names));
            }
            self.expect(&TokenKind::Colon, "`,`, `)`, or `:`")?;
            let d = self.domain_expr()?;
            self.eat(&TokenKind::Semi);
            let mut fields = vec![(names, d)];
            while !self.eat(&TokenKind::RParen) {
                fields.push(self.record_field()?);
            }
            return Ok(DomainExpr::Record(fields));
        }
        let name = self.ident("domain")?;
        Ok(DomainExpr::Named(name))
    }

    fn obj_type_decl(&mut self) -> Result<Decl, ParseError> {
        let name = self.ident("type name")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let mut d = ObjTypeDecl {
            name,
            ..Default::default()
        };
        loop {
            if self.eat_kw("end") {
                break;
            }
            if self.eat_kw("inheritor-in") || self.eat_kw("inheritor") {
                // `inheritor-in: R;` (the §5 Girder listing writes
                // `inheritor: AllOf_GirderIf;` — tolerated).
                self.expect(&TokenKind::Colon, "`:`")?;
                d.inheritor_in
                    .push(self.ident("inheritance relationship name")?);
                while self.eat(&TokenKind::Comma) {
                    d.inheritor_in
                        .push(self.ident("inheritance relationship name")?);
                }
                self.eat(&TokenKind::Semi);
                continue;
            }
            if self.eat_kw("attributes") {
                self.expect(&TokenKind::Colon, "`:`")?;
                d.attributes.extend(self.attr_groups()?);
                continue;
            }
            if self.eat_kw("types-of-subclasses") {
                self.expect(&TokenKind::Colon, "`:`")?;
                d.subclasses.extend(self.subclass_entries()?);
                continue;
            }
            if self.eat_kw("types-of-subrels") || self.eat_kw("connections") {
                self.expect(&TokenKind::Colon, "`:`")?;
                d.subrels.extend(self.subrel_entries()?);
                continue;
            }
            if self.eat_kw("constraints") {
                self.expect(&TokenKind::Colon, "`:`")?;
                d.constraints.extend(self.constraint_entries()?);
                continue;
            }
            return Err(self.err("expected a section or `end`"));
        }
        let _ = self.ident("type name after end");
        self.eat(&TokenKind::Semi);
        Ok(Decl::ObjType(d))
    }

    fn rel_type_decl(&mut self) -> Result<Decl, ParseError> {
        let name = self.ident("type name")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let mut d = RelTypeDecl {
            name,
            ..Default::default()
        };
        loop {
            if self.eat_kw("end") {
                break;
            }
            if self.eat_kw("relates") {
                self.expect(&TokenKind::Colon, "`:`")?;
                while !self.at_section() {
                    d.participants.push(self.participant()?);
                }
                continue;
            }
            if self.eat_kw("attributes") {
                self.expect(&TokenKind::Colon, "`:`")?;
                d.attributes.extend(self.attr_groups()?);
                continue;
            }
            if self.eat_kw("types-of-subclasses") {
                self.expect(&TokenKind::Colon, "`:`")?;
                d.subclasses.extend(self.subclass_entries()?);
                continue;
            }
            if self.eat_kw("constraints") {
                self.expect(&TokenKind::Colon, "`:`")?;
                d.constraints.extend(self.constraint_entries()?);
                continue;
            }
            return Err(self.err("expected a section or `end`"));
        }
        let _ = self.ident("type name after end");
        self.eat(&TokenKind::Semi);
        Ok(Decl::RelType(d))
    }

    fn participant(&mut self) -> Result<ParticipantDecl, ParseError> {
        let mut names = vec![self.ident("participant role")?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.ident("participant role")?);
        }
        self.expect(&TokenKind::Colon, "`:`")?;
        let many = self.eat_kw("set-of");
        let of_type = if self.eat_kw("object-of-type") {
            Some(self.ident("participant type")?)
        } else if self.eat_kw("object") {
            None
        } else {
            return Err(self.err("expected `object` or `object-of-type`"));
        };
        self.eat(&TokenKind::Semi);
        Ok(ParticipantDecl {
            names,
            many,
            of_type,
        })
    }

    fn inher_rel_decl(&mut self) -> Result<Decl, ParseError> {
        let name = self.ident("type name")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let mut transmitter_type = None;
        let mut inheritor_type: Option<String> = None;
        let mut inheriting = Vec::new();
        let mut attributes = Vec::new();
        loop {
            if self.eat_kw("end") {
                break;
            }
            if self.eat_kw("transmitter") {
                self.expect(&TokenKind::Colon, "`:`")?;
                self.expect_kw("object-of-type")?;
                transmitter_type = Some(self.ident("transmitter type")?);
                self.eat(&TokenKind::Semi);
                continue;
            }
            if self.eat_kw("inheritor") {
                self.expect(&TokenKind::Colon, "`:`")?;
                if self.eat_kw("object-of-type") {
                    inheritor_type = Some(self.ident("inheritor type")?);
                } else {
                    self.expect_kw("object")?;
                }
                // The paper writes `object;` and also `object-of-type X
                // object;` variants; tolerate a trailing `/ object` list.
                self.eat(&TokenKind::Semi);
                continue;
            }
            if self.eat_kw("inheriting") {
                self.expect(&TokenKind::Colon, "`:`")?;
                loop {
                    if self.is_kw("end") || self.at_section() {
                        break;
                    }
                    inheriting.push(self.ident("inherited item")?);
                    if self.eat(&TokenKind::Comma) {
                        continue;
                    }
                    self.eat(&TokenKind::Semi);
                    if self.at_section() || self.is_kw("end") {
                        break;
                    }
                }
                continue;
            }
            if self.eat_kw("attributes") {
                self.expect(&TokenKind::Colon, "`:`")?;
                attributes.extend(self.attr_groups()?);
                continue;
            }
            return Err(self.err("expected a section or `end`"));
        }
        let _ = self.ident("type name after end");
        self.eat(&TokenKind::Semi);
        let transmitter_type =
            transmitter_type.ok_or_else(|| self.err("inher-rel-type needs a transmitter"))?;
        Ok(Decl::InherRelType(InherRelDecl {
            name,
            transmitter_type,
            inheritor_type,
            inheriting,
            attributes,
        }))
    }

    // ------------------------------------------------------------------
    // Sections
    // ------------------------------------------------------------------

    fn attr_groups(&mut self) -> Result<Vec<AttrGroup>, ParseError> {
        let mut out = Vec::new();
        while !self.at_section() && !self.at_eof() {
            // Stop at an inline-subclass start (`Name:` then `inheritor-in`).
            if matches!(self.peek(), TokenKind::Ident(_))
                && matches!(self.peek2(), TokenKind::Colon)
            {
                // fine: attr groups look the same; inline detection happens
                // in subclass_entries, not here.
            }
            let mut names = vec![self.ident("attribute name")?];
            while self.eat(&TokenKind::Comma) {
                names.push(self.ident("attribute name")?);
            }
            self.expect(&TokenKind::Colon, "`:`")?;
            let domain = self.domain_expr()?;
            self.eat(&TokenKind::Semi);
            out.push(AttrGroup { names, domain });
        }
        Ok(out)
    }

    fn subclass_entries(&mut self) -> Result<Vec<SubclassDecl>, ParseError> {
        let mut out = Vec::new();
        while !self.at_section() && !self.at_eof() {
            let name = self.ident("subclass name")?;
            self.expect(&TokenKind::Colon, "`:`")?;
            if self.is_kw("inheritor-in") || self.is_kw("attributes") {
                // Inline member-type declaration.
                let mut inheritor_in = Vec::new();
                let mut attributes = Vec::new();
                loop {
                    if self.eat_kw("inheritor-in") {
                        self.expect(&TokenKind::Colon, "`:`")?;
                        inheritor_in.push(self.ident("inheritance relationship name")?);
                        self.eat(&TokenKind::Semi);
                        continue;
                    }
                    if self.is_kw("attributes") && !self.inline_section_done() {
                        self.bump();
                        self.expect(&TokenKind::Colon, "`:`")?;
                        attributes.extend(self.inline_attr_groups()?);
                        continue;
                    }
                    break;
                }
                out.push(SubclassDecl::Inline {
                    name,
                    inheritor_in,
                    attributes,
                });
                // The next entry may be another inline subclass.
                continue;
            }
            let element_type = self.ident("element type")?;
            self.eat(&TokenKind::Semi);
            out.push(SubclassDecl::Named { name, element_type });
        }
        Ok(out)
    }

    /// Is the upcoming `attributes` actually the start of an *outer*
    /// section? (It never is: outer `attributes` cannot follow
    /// `types-of-subclasses` mid-type in the paper's grammar; inline wins.)
    fn inline_section_done(&self) -> bool {
        false
    }

    /// Attribute groups inside an inline subclass: stop at section keywords
    /// or at the start of the next inline subclass (`Name:` + `inheritor-in`).
    fn inline_attr_groups(&mut self) -> Result<Vec<AttrGroup>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.at_section() || self.at_eof() {
                break;
            }
            // Next inline subclass?
            if matches!(self.peek(), TokenKind::Ident(_))
                && matches!(self.peek2(), TokenKind::Colon)
            {
                let save = self.pos;
                let _ = self.bump();
                let _ = self.bump();
                let next_is_inline = self.is_kw("inheritor-in");
                self.pos = save;
                if next_is_inline {
                    break;
                }
            }
            let mut names = vec![self.ident("attribute name")?];
            while self.eat(&TokenKind::Comma) {
                names.push(self.ident("attribute name")?);
            }
            self.expect(&TokenKind::Colon, "`:`")?;
            let domain = self.domain_expr()?;
            self.eat(&TokenKind::Semi);
            out.push(AttrGroup { names, domain });
        }
        Ok(out)
    }

    fn subrel_entries(&mut self) -> Result<Vec<SubrelDecl>, ParseError> {
        let mut out = Vec::new();
        while !self.at_section() && !self.at_eof() {
            let name = self.ident("subrel name")?;
            self.expect(&TokenKind::Colon, "`:`")?;
            let rel_type = self.ident("relationship type")?;
            let where_expr = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            self.eat(&TokenKind::Semi);
            out.push(SubrelDecl {
                name,
                rel_type,
                where_expr,
            });
        }
        Ok(out)
    }

    fn constraint_entries(&mut self) -> Result<Vec<ConstraintDecl>, ParseError> {
        let mut out = Vec::new();
        let mut bindings: Vec<(String, Vec<String>)> = Vec::new();
        while !self.at_section() && !self.at_eof() {
            if self.eat_kw("for") {
                // `for (s in Bolt, n in Nut):` or `for b in Bores:` — the
                // bindings accumulate for the remaining constraints; a
                // re-declared variable shadows (replaces) its prior binding.
                let parens = self.eat(&TokenKind::LParen);
                loop {
                    let var = self.ident("binding variable")?;
                    self.expect_kw("in")?;
                    let path = self.path()?;
                    bindings.retain(|(v, _)| v != &var);
                    bindings.push((var, path));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                if parens {
                    self.expect(&TokenKind::RParen, "`)`")?;
                }
                self.expect(&TokenKind::Colon, "`:`")?;
                continue;
            }
            let expr = self.expr()?;
            let where_expr = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            self.eat(&TokenKind::Semi);
            out.push(ConstraintDecl {
                bindings: bindings.clone(),
                expr,
                where_expr,
            });
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn path(&mut self) -> Result<Vec<String>, ParseError> {
        let mut segs = vec![self.ident("path")?];
        while self.eat(&TokenKind::Dot) {
            segs.push(self.ident("path segment")?);
        }
        Ok(segs)
    }

    fn expr(&mut self) -> Result<LExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<LExpr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = LExpr::Binary {
                op: LBinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<LExpr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = LExpr::Binary {
                op: LBinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<LExpr, ParseError> {
        if self.eat_kw("not") {
            return Ok(LExpr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<LExpr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            TokenKind::Eq => LBinOp::Eq,
            TokenKind::Ne => LBinOp::Ne,
            TokenKind::Lt => LBinOp::Lt,
            TokenKind::Le => LBinOp::Le,
            TokenKind::Gt => LBinOp::Gt,
            TokenKind::Ge => LBinOp::Ge,
            TokenKind::Ident(s) if s == "in" => {
                self.bump();
                let path = self.path()?;
                return Ok(LExpr::In {
                    item: Box::new(lhs),
                    path,
                });
            }
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(LExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn additive(&mut self) -> Result<LExpr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => LBinOp::Add,
                TokenKind::Minus => LBinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = LExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<LExpr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => LBinOp::Mul,
                TokenKind::Slash => LBinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = LExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<LExpr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            return Ok(LExpr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<LExpr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(LExpr::Int(i))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(LExpr::Str(s))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Hash => {
                // `#s in Bolt` — cardinality.
                self.bump();
                let var = self.ident("counting variable")?;
                self.expect_kw("in")?;
                let path = self.path()?;
                Ok(LExpr::HashCount { var, path })
            }
            TokenKind::Ident(s) if s == "count" && matches!(self.peek2(), TokenKind::LParen) => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let path = self.path()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(LExpr::Count(path))
            }
            TokenKind::Ident(s)
                if matches!(s.as_str(), "sum" | "min" | "max")
                    && matches!(self.peek2(), TokenKind::LParen) =>
            {
                self.bump();
                let op = match s.as_str() {
                    "sum" => LAgg::Sum,
                    "min" => LAgg::Min,
                    _ => LAgg::Max,
                };
                self.expect(&TokenKind::LParen, "`(`")?;
                let path = self.path()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(LExpr::Agg { op, path })
            }
            TokenKind::Ident(s) if s == "for" => {
                // Inline quantifier: `for (b in Bores): expr` / `for b in B: expr`.
                self.bump();
                let parens = self.eat(&TokenKind::LParen);
                let mut bindings = Vec::new();
                loop {
                    let var = self.ident("binding variable")?;
                    self.expect_kw("in")?;
                    bindings.push((var, self.path()?));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                if parens {
                    self.expect(&TokenKind::RParen, "`)`")?;
                }
                self.expect(&TokenKind::Colon, "`:`")?;
                let body = self.expr()?;
                Ok(LExpr::ForAll {
                    bindings,
                    body: Box::new(body),
                })
            }
            TokenKind::Ident(_) => Ok(LExpr::Path(self.path()?)),
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_gate_from_paper() {
        let src = r#"
            domain I/O = (IN, OUT);
            domain Point = (X, Y: integer);

            obj-type SimpleGate =
                attributes:
                    Length, Width: integer;
                    Function: (AND, OR, NOR, NAND);
                    Pins: set-of ( PinId: integer;
                                   InOut: I/O;
                                 );
                constraints:
                    count (Pins) = 2 where Pins.InOut = IN;
                    count (Pins) = 1 where Pins.InOut = OUT;
            end SimpleGate;
        "#;
        let decls = parse(src).unwrap();
        assert_eq!(decls.len(), 3);
        let Decl::ObjType(g) = &decls[2] else {
            panic!("expected obj-type")
        };
        assert_eq!(g.name, "SimpleGate");
        assert_eq!(g.attributes.len(), 3);
        assert_eq!(g.attributes[0].names, vec!["Length", "Width"]);
        assert!(matches!(g.attributes[1].domain, DomainExpr::Enum(_)));
        assert!(matches!(g.attributes[2].domain, DomainExpr::SetOf(_)));
        assert_eq!(g.constraints.len(), 2);
        assert!(g.constraints[0].where_expr.is_some());
    }

    #[test]
    fn parses_rel_type_with_typed_participants() {
        let src = r#"
            rel-type WireType =
                relates:
                    Pin1,
                    Pin2: object-of-type PinType;
                attributes:
                    Corners: list-of Point;
            end WireType;
        "#;
        let decls = parse(src).unwrap();
        let Decl::RelType(r) = &decls[0] else {
            panic!()
        };
        assert_eq!(r.participants.len(), 1);
        assert_eq!(r.participants[0].names, vec!["Pin1", "Pin2"]);
        assert_eq!(r.participants[0].of_type.as_deref(), Some("PinType"));
        assert!(!r.participants[0].many);
    }

    #[test]
    fn parses_inher_rel_type() {
        let src = r#"
            inher-rel-type AllOf_GateInterface =
                transmitter: object-of-type GateInterface
                inheritor: object;
                inheriting:
                    Length, Width, Pins;
            end AllOf_GateInterface;
        "#;
        let decls = parse(src).unwrap();
        let Decl::InherRelType(r) = &decls[0] else {
            panic!()
        };
        assert_eq!(r.transmitter_type, "GateInterface");
        assert_eq!(r.inheritor_type, None);
        assert_eq!(r.inheriting, vec!["Length", "Width", "Pins"]);
    }

    #[test]
    fn parses_typed_inheritor_and_trailing_comma() {
        // §5 has `inheriting: Length, Diameter,` with a trailing comma.
        let src = r#"
            inher-rel-type AllOf_BoltType =
                transmitter: object-of-type BoltType;
                inheritor: object;
                inheriting:
                    Length, Diameter,
            end AllOf_BoltType;
        "#;
        let decls = parse(src).unwrap();
        let Decl::InherRelType(r) = &decls[0] else {
            panic!()
        };
        assert_eq!(r.inheriting, vec!["Length", "Diameter"]);
    }

    #[test]
    fn parses_inline_subclass_with_inheritor_and_attrs() {
        let src = r#"
            obj-type GateImplementation =
                inheritor-in: AllOf_GateInterface;
                attributes:
                    Function: matrix-of boolean;
                types-of-subclasses:
                    SubGates:
                        inheritor-in: AllOf_GateInterface;
                        attributes:
                            GateLocation: Point;
                types-of-subrels:
                    Wire: WireType
                        where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins)
                          and (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
            end GateImplementation;
        "#;
        let decls = parse(src).unwrap();
        let Decl::ObjType(g) = &decls[0] else {
            panic!()
        };
        assert_eq!(g.inheritor_in, vec!["AllOf_GateInterface"]);
        let SubclassDecl::Inline {
            name,
            inheritor_in,
            attributes,
        } = &g.subclasses[0]
        else {
            panic!("expected inline subclass")
        };
        assert_eq!(name, "SubGates");
        assert_eq!(inheritor_in, &vec!["AllOf_GateInterface".to_string()]);
        assert_eq!(attributes[0].names, vec!["GateLocation"]);
        assert_eq!(g.subrels.len(), 1);
        assert_eq!(g.subrels[0].rel_type, "WireType");
        assert!(g.subrels[0].where_expr.is_some());
    }

    #[test]
    fn parses_screwing_type_with_embedded_bolt_and_nut() {
        let src = r#"
            rel-type ScrewingType =
                relates:
                    Bores: set-of object-of-type BoreType;
                attributes:
                    Strength: integer;
                types-of-subclasses:
                    Bolt:
                        inheritor-in: AllOf_BoltType;
                    Nut:
                        inheritor-in: AllOf_NutType;
                constraints:
                    #s in Bolt = 1;
                    #n in Nut = 1;
                    for (s in Bolt, n in Nut):
                        s.Diameter = n.Diameter;
                    for b in Bores:
                        s.Diameter <= b.Diameter;
                        s.Length = n.Length + sum (Bores.Length)
            end ScrewingType;
        "#;
        let decls = parse(src).unwrap();
        let Decl::RelType(r) = &decls[0] else {
            panic!()
        };
        assert!(r.participants[0].many);
        assert_eq!(r.subclasses.len(), 2);
        assert_eq!(r.constraints.len(), 5);
        // Binding accumulation: the last two constraints see s, n, and b.
        assert_eq!(r.constraints[2].bindings.len(), 2);
        assert_eq!(r.constraints[3].bindings.len(), 3);
        assert_eq!(r.constraints[4].bindings.len(), 3);
        assert!(matches!(
            r.constraints[0].expr,
            LExpr::Binary { op: LBinOp::Eq, .. }
        ));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("Length < 100*Height*Width").unwrap();
        let LExpr::Binary {
            op: LBinOp::Lt,
            rhs,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(
            *rhs,
            LExpr::Binary {
                op: LBinOp::Mul,
                ..
            }
        ));
        let e = parse_expr("a + b * c").unwrap();
        let LExpr::Binary {
            op: LBinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(
            *rhs,
            LExpr::Binary {
                op: LBinOp::Mul,
                ..
            }
        ));
        let e = parse_expr("a = b or c = d and e = f").unwrap();
        assert!(matches!(e, LExpr::Binary { op: LBinOp::Or, .. }));
    }

    #[test]
    fn membership_and_aggregates() {
        let e = parse_expr("Wire.Pin1 in SubGates.Pins").unwrap();
        let LExpr::In { item, path } = e else {
            panic!()
        };
        assert!(matches!(*item, LExpr::Path(_)));
        assert_eq!(path, vec!["SubGates", "Pins"]);
        let e = parse_expr("s.Length = n.Length + sum (Bores.Length)").unwrap();
        assert!(matches!(e, LExpr::Binary { op: LBinOp::Eq, .. }));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("obj-type = end").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = parse("obj-type T = bogus-section: x; end T;").unwrap_err();
        assert!(err.message.contains("section"), "{err}");
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("a b").is_err(), "trailing input");
    }

    #[test]
    fn girder_interface_with_constraint() {
        let src = r#"
            obj-type GirderInterface =
                attributes:
                    Length,Height,Width: integer;
                types-of-subclasses:
                    Bores: BoreType;
                constraints:
                    Length < 100*Height*Width;
            end GirderInterface;
        "#;
        let decls = parse(src).unwrap();
        let Decl::ObjType(g) = &decls[0] else {
            panic!()
        };
        assert_eq!(g.attributes[0].names, vec!["Length", "Height", "Width"]);
        assert!(
            matches!(&g.subclasses[0], SubclassDecl::Named { element_type, .. } if element_type == "BoreType")
        );
        assert_eq!(g.constraints.len(), 1);
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The parser must never panic, whatever bytes come in.
        #[test]
        fn parse_is_total_on_arbitrary_text(src in "\\PC{0,200}") {
            let _ = parse(&src);
            let _ = parse_expr(&src);
        }

        /// Token soup assembled from the language's own vocabulary — more
        /// likely to reach deep parser states than raw unicode.
        #[test]
        fn parse_is_total_on_token_soup(words in proptest::collection::vec(
            prop_oneof![
                Just("obj-type"), Just("rel-type"), Just("inher-rel-type"),
                Just("end"), Just("attributes"), Just("constraints"),
                Just("types-of-subclasses"), Just("types-of-subrels"),
                Just("relates"), Just("transmitter"), Just("inheritor"),
                Just("inheriting"), Just("inheritor-in"), Just("where"),
                Just("for"), Just("in"), Just("count"), Just("sum"),
                Just("integer"), Just("set-of"), Just("object-of-type"),
                Just("="), Just(":"), Just(";"), Just(","), Just("("),
                Just(")"), Just("<"), Just("#"), Just("X"), Just("Y"),
                Just("1"), Just("2"),
            ],
            0..60,
        )) {
            let src = words.join(" ");
            let _ = parse(&src);
        }
    }
}
