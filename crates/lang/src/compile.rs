//! Lowering from the parsed AST to the `ccdb-core` catalog.
//!
//! Responsibilities beyond mechanical translation:
//!
//! - **Enum-literal disambiguation**: a bare identifier in an expression is
//!   an enum literal iff it appears in a previously declared enum domain
//!   (e.g. `IN`, `NAND`, `wood`); otherwise it is a self-rooted path.
//! - **Variable resolution**: `for` bindings and the subrel member alias
//!   (e.g. `Wire` in `Wires: WireType where Wire.Pin1 in …`) become
//!   variable-rooted paths; the member alias maps to [`REL_VAR`].
//! - **`count … where` attachment**: the paper writes
//!   `count (Pins) = 2 where Pins.InOut = IN`; the trailing filter is
//!   attached to the `count` node, with element-rooted paths rewritten to
//!   [`ELEM_VAR`].
//! - **Inline member types**: inline subclass declarations generate
//!   anonymous object types named `<owner>.<subclass>`.

use std::collections::{HashMap, HashSet};

use ccdb_core::domain::Domain;
use ccdb_core::expr::{BinOp, Expr, PathExpr, PathRoot, ELEM_VAR, REL_VAR};
use ccdb_core::schema::{
    AttrDef, Catalog, Constraint, InherRelTypeDef, ObjectTypeDef, ParticipantSpec, RelTypeDef,
    SubclassSpec, SubrelSpec,
};
use ccdb_core::value::Value;

use crate::ast::*;

/// Compilation error.
#[derive(Clone, PartialEq, Debug)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn cerr<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        message: msg.into(),
    })
}

/// Compile parsed declarations into `catalog`. Call
/// [`Catalog::validate`] (or build an `ObjectStore`) afterwards.
pub fn compile(decls: &[Decl], catalog: &mut Catalog) -> Result<(), CompileError> {
    let mut cx = Cx {
        catalog,
        enum_literals: HashSet::new(),
    };
    cx.harvest_existing_literals();
    // Pre-scan the whole chunk for enum literals so constraint lowering is
    // insensitive to declaration order.
    for d in decls {
        prescan_literals(d, &mut cx.enum_literals);
    }
    for d in decls {
        cx.decl(d)?;
    }
    Ok(())
}

fn prescan_literals(d: &Decl, out: &mut HashSet<String>) {
    fn walk(d: &DomainExpr, out: &mut HashSet<String>) {
        match d {
            DomainExpr::Enum(lits) => out.extend(lits.iter().cloned()),
            DomainExpr::Record(groups) => groups.iter().for_each(|(_, fd)| walk(fd, out)),
            DomainExpr::SetOf(i) | DomainExpr::ListOf(i) | DomainExpr::MatrixOf(i) => walk(i, out),
            _ => {}
        }
    }
    let attr_groups: &[AttrGroup] = match d {
        Decl::Domain { body, .. } => {
            walk(body, out);
            &[]
        }
        Decl::ObjType(t) => {
            for sc in &t.subclasses {
                if let SubclassDecl::Inline { attributes, .. } = sc {
                    for g in attributes {
                        walk(&g.domain, out);
                    }
                }
            }
            &t.attributes
        }
        Decl::RelType(t) => {
            for sc in &t.subclasses {
                if let SubclassDecl::Inline { attributes, .. } = sc {
                    for g in attributes {
                        walk(&g.domain, out);
                    }
                }
            }
            &t.attributes
        }
        Decl::InherRelType(t) => &t.attributes,
    };
    for g in attr_groups {
        walk(&g.domain, out);
    }
}

struct Cx<'a> {
    catalog: &'a mut Catalog,
    enum_literals: HashSet<String>,
}

impl<'a> Cx<'a> {
    /// Collect enum literals already known to the catalog (so incremental
    /// `compile_str` calls resolve literals from earlier chunks).
    fn harvest_existing_literals(&mut self) {
        fn walk(d: &Domain, out: &mut HashSet<String>) {
            match d {
                Domain::Enum(lits) => out.extend(lits.iter().cloned()),
                Domain::Record(fields) => fields.iter().for_each(|(_, fd)| walk(fd, out)),
                Domain::ListOf(i) | Domain::SetOf(i) | Domain::MatrixOf(i) => walk(i, out),
                _ => {}
            }
        }
        let mut lits = HashSet::new();
        for name in self.catalog.object_type_names() {
            if let Ok(def) = self.catalog.object_type(name) {
                for a in &def.attributes {
                    walk(&a.domain, &mut lits);
                }
            }
        }
        for name in self.catalog.rel_type_names() {
            if let Ok(def) = self.catalog.rel_type(name) {
                for a in &def.attributes {
                    walk(&a.domain, &mut lits);
                }
            }
        }
        // Named domains are not enumerable through the public API piecemeal;
        // attribute domains cover the constraint use cases.
        self.enum_literals.extend(lits);
    }

    fn decl(&mut self, d: &Decl) -> Result<(), CompileError> {
        match d {
            Decl::Domain { name, body } => {
                let domain = if name == "Point" && is_point_record(body) {
                    Domain::Point
                } else {
                    self.domain(body)?
                };
                self.catalog
                    .register_domain(name, domain)
                    .map_err(|e| CompileError {
                        message: e.to_string(),
                    })
            }
            Decl::ObjType(t) => self.obj_type(t),
            Decl::RelType(t) => self.rel_type(t),
            Decl::InherRelType(t) => self.inher_rel_type(t),
        }
    }

    fn domain(&mut self, d: &DomainExpr) -> Result<Domain, CompileError> {
        Ok(match d {
            DomainExpr::Int => Domain::Int,
            DomainExpr::Bool => Domain::Bool,
            DomainExpr::Text => Domain::Text,
            DomainExpr::Named(n) => {
                if n == "Point" {
                    Domain::Point
                } else {
                    match self.catalog.domain(n) {
                        Ok(found) => found.clone(),
                        Err(_) => return cerr(format!("unknown domain `{n}`")),
                    }
                }
            }
            DomainExpr::Enum(lits) => {
                self.enum_literals.extend(lits.iter().cloned());
                Domain::Enum(lits.clone())
            }
            DomainExpr::Record(groups) => {
                let mut fields = Vec::new();
                for (names, fd) in groups {
                    let lowered = self.domain(fd)?;
                    for n in names {
                        fields.push((n.clone(), lowered.clone()));
                    }
                }
                Domain::Record(fields)
            }
            DomainExpr::SetOf(i) => Domain::SetOf(Box::new(self.domain(i)?)),
            DomainExpr::ListOf(i) => Domain::ListOf(Box::new(self.domain(i)?)),
            DomainExpr::MatrixOf(i) => Domain::MatrixOf(Box::new(self.domain(i)?)),
        })
    }

    fn attrs(&mut self, groups: &[AttrGroup]) -> Result<Vec<AttrDef>, CompileError> {
        let mut out = Vec::new();
        for g in groups {
            let d = self.domain(&g.domain)?;
            for n in &g.names {
                out.push(AttrDef {
                    name: n.clone(),
                    domain: d.clone(),
                });
            }
        }
        Ok(out)
    }

    fn subclasses(
        &mut self,
        owner: &str,
        decls: &[SubclassDecl],
    ) -> Result<Vec<SubclassSpec>, CompileError> {
        let mut out = Vec::new();
        for sc in decls {
            match sc {
                SubclassDecl::Named { name, element_type } => out.push(SubclassSpec {
                    name: name.clone(),
                    element_type: element_type.clone(),
                }),
                SubclassDecl::Inline {
                    name,
                    inheritor_in,
                    attributes,
                } => {
                    let attrs = self.attrs(attributes)?;
                    let member_type = self
                        .catalog
                        .register_inline_member_type(owner, name, inheritor_in.clone(), attrs)
                        .map_err(|e| CompileError {
                            message: e.to_string(),
                        })?;
                    out.push(SubclassSpec {
                        name: name.clone(),
                        element_type: member_type,
                    });
                }
            }
        }
        Ok(out)
    }

    fn obj_type(&mut self, t: &ObjTypeDecl) -> Result<(), CompileError> {
        let attributes = self.attrs(&t.attributes)?;
        let subclasses = self.subclasses(&t.name, &t.subclasses)?;
        let mut subrels = Vec::new();
        for sr in &t.subrels {
            let member_constraints = match &sr.where_expr {
                None => vec![],
                Some(w) => {
                    let aliases = subrel_aliases(&sr.name, &sr.rel_type);
                    let mut member_items = HashSet::new();
                    if let Ok(rt) = self.catalog.rel_type(&sr.rel_type) {
                        member_items.extend(rt.participants.iter().map(|p| p.name.clone()));
                        member_items.extend(rt.attributes.iter().map(|a| a.name.clone()));
                        member_items.extend(rt.subclasses.iter().map(|sc| sc.name.clone()));
                    }
                    let scope = Scope {
                        vars: HashSet::new(),
                        aliases,
                        member_items,
                    };
                    let expr = self.expr(w, &scope)?;
                    vec![Constraint::named(
                        &format!("{} where-clause", sr.name),
                        expr,
                    )]
                }
            };
            subrels.push(SubrelSpec {
                name: sr.name.clone(),
                rel_type: sr.rel_type.clone(),
                member_constraints,
            });
        }
        let constraints = self.constraints(&t.constraints)?;
        self.catalog
            .register_object_type(ObjectTypeDef {
                name: t.name.clone(),
                inheritor_in: t.inheritor_in.clone(),
                attributes,
                subclasses,
                subrels,
                constraints,
            })
            .map_err(|e| CompileError {
                message: e.to_string(),
            })
    }

    fn rel_type(&mut self, t: &RelTypeDecl) -> Result<(), CompileError> {
        let mut participants = Vec::new();
        for p in &t.participants {
            for n in &p.names {
                participants.push(ParticipantSpec {
                    name: n.clone(),
                    many: p.many,
                    required_type: p.of_type.clone(),
                });
            }
        }
        let attributes = self.attrs(&t.attributes)?;
        let subclasses = self.subclasses(&t.name, &t.subclasses)?;
        let constraints = self.constraints(&t.constraints)?;
        self.catalog
            .register_rel_type(RelTypeDef {
                name: t.name.clone(),
                participants,
                attributes,
                subclasses,
                subrels: vec![],
                constraints,
            })
            .map_err(|e| CompileError {
                message: e.to_string(),
            })
    }

    fn inher_rel_type(&mut self, t: &InherRelDecl) -> Result<(), CompileError> {
        let attributes = self.attrs(&t.attributes)?;
        self.catalog
            .register_inher_rel_type(InherRelTypeDef {
                name: t.name.clone(),
                transmitter_type: t.transmitter_type.clone(),
                inheritor_type: t.inheritor_type.clone(),
                inheriting: t.inheriting.clone(),
                attributes,
                constraints: vec![],
            })
            .map_err(|e| CompileError {
                message: e.to_string(),
            })
    }

    fn constraints(&mut self, decls: &[ConstraintDecl]) -> Result<Vec<Constraint>, CompileError> {
        let mut out = Vec::new();
        for c in decls {
            let mut scope = Scope::default();
            for (v, _) in &c.bindings {
                scope.vars.insert(v.clone());
            }
            let mut expr = self.expr(&c.expr, &scope)?;
            if let Some(w) = &c.where_expr {
                expr = self.attach_count_filter(expr, w, &scope)?;
            }
            if !c.bindings.is_empty() {
                // Binding paths are resolved in the *outer* scope (no vars).
                let outer = Scope::default();
                let mut bindings = Vec::new();
                for (v, p) in &c.bindings {
                    bindings.push((v.clone(), self.class_path(p, &outer)));
                }
                expr = Expr::ForAll {
                    bindings,
                    body: Box::new(expr),
                };
            }
            out.push(Constraint::new(expr));
        }
        Ok(out)
    }

    /// Attach a trailing `where` filter to the first `count` node of `expr`
    /// (the paper's `count (Pins) = 2 where Pins.InOut = IN` form).
    fn attach_count_filter(
        &mut self,
        expr: Expr,
        filter: &LExpr,
        scope: &Scope,
    ) -> Result<Expr, CompileError> {
        // Locate the count path to know the element alias.
        fn find_count(e: &Expr) -> Option<&PathExpr> {
            match e {
                Expr::Count { path, .. } => Some(path),
                Expr::Binary { lhs, rhs, .. } => find_count(lhs).or_else(|| find_count(rhs)),
                Expr::Not(i) | Expr::Neg(i) => find_count(i),
                _ => None,
            }
        }
        let Some(count_path) = find_count(&expr) else {
            return cerr("`where` filter without a count(...) to attach it to");
        };
        let elem_alias = count_path.segments.last().cloned().ok_or(CompileError {
            message: "count over empty path".into(),
        })?;
        let mut filter_scope = scope.clone();
        filter_scope
            .aliases
            .insert(elem_alias, ELEM_VAR.to_string());
        let lowered = self.expr(filter, &filter_scope)?;

        fn attach(e: Expr, filter: &Expr, done: &mut bool) -> Expr {
            match e {
                Expr::Count { path, filter: None } if !*done => {
                    *done = true;
                    Expr::Count {
                        path,
                        filter: Some(Box::new(filter.clone())),
                    }
                }
                Expr::Binary { op, lhs, rhs } => {
                    let lhs = attach(*lhs, filter, done);
                    let rhs = attach(*rhs, filter, done);
                    Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    }
                }
                Expr::Not(i) => Expr::Not(Box::new(attach(*i, filter, done))),
                Expr::Neg(i) => Expr::Neg(Box::new(attach(*i, filter, done))),
                other => other,
            }
        }
        let mut done = false;
        Ok(attach(expr, &lowered, &mut done))
    }

    fn class_path(&self, segs: &[String], scope: &Scope) -> PathExpr {
        self.lower_path(segs, scope)
    }

    fn lower_path(&self, segs: &[String], scope: &Scope) -> PathExpr {
        let first = &segs[0];
        if let Some(var) = scope.aliases.get(first) {
            return PathExpr {
                root: PathRoot::Var(var.clone()),
                segments: segs[1..].to_vec(),
            };
        }
        if scope.vars.contains(first) {
            return PathExpr {
                root: PathRoot::Var(first.clone()),
                segments: segs[1..].to_vec(),
            };
        }
        if scope.member_items.contains(first) {
            return PathExpr {
                root: PathRoot::Var(REL_VAR.into()),
                segments: segs.to_vec(),
            };
        }
        PathExpr {
            root: PathRoot::SelfObject,
            segments: segs.to_vec(),
        }
    }

    fn expr(&mut self, e: &LExpr, scope: &Scope) -> Result<Expr, CompileError> {
        Ok(match e {
            LExpr::Int(i) => Expr::Lit(Value::Int(*i)),
            LExpr::Str(s) => Expr::Lit(Value::Str(s.clone())),
            LExpr::Path(segs) => {
                // A bare identifier naming a known enum literal is a literal.
                if segs.len() == 1
                    && !scope.vars.contains(&segs[0])
                    && !scope.aliases.contains_key(&segs[0])
                    && self.enum_literals.contains(&segs[0])
                {
                    Expr::Lit(Value::Enum(segs[0].clone()))
                } else {
                    Expr::Path(self.lower_path(segs, scope))
                }
            }
            LExpr::Count(path) => Expr::Count {
                path: self.lower_path(path, scope),
                filter: None,
            },
            LExpr::HashCount { path, .. } => Expr::Count {
                path: self.lower_path(path, scope),
                filter: None,
            },
            LExpr::Agg { op, path } => {
                let p = self.lower_path(path, scope);
                match op {
                    LAgg::Sum => Expr::Sum(p),
                    LAgg::Min => Expr::Min(p),
                    LAgg::Max => Expr::Max(p),
                }
            }
            LExpr::Neg(i) => Expr::Neg(Box::new(self.expr(i, scope)?)),
            LExpr::Not(i) => Expr::Not(Box::new(self.expr(i, scope)?)),
            LExpr::Binary { op, lhs, rhs } => Expr::Binary {
                op: lower_binop(*op),
                lhs: Box::new(self.expr(lhs, scope)?),
                rhs: Box::new(self.expr(rhs, scope)?),
            },
            LExpr::In { item, path } => Expr::InClass {
                item: Box::new(self.expr(item, scope)?),
                class: self.lower_path(path, scope),
            },
            LExpr::ForAll { bindings, body } => {
                let mut inner = scope.clone();
                let mut lowered = Vec::new();
                for (v, p) in bindings {
                    lowered.push((v.clone(), self.lower_path(p, scope)));
                    inner.vars.insert(v.clone());
                }
                Expr::ForAll {
                    bindings: lowered,
                    body: Box::new(self.expr(body, &inner)?),
                }
            }
        })
    }
}

#[derive(Clone, Default)]
struct Scope {
    /// Quantifier-bound variables.
    vars: HashSet<String>,
    /// Alias → canonical variable (subrel member alias, count element).
    aliases: HashMap<String, String>,
    /// Item names (participants/attributes/subclasses) of the subrel member
    /// type: a path starting with one of these roots at [`REL_VAR`] *keeping*
    /// the segment (`Bores` in the §5 `Screwings` where-clause).
    member_items: HashSet<String>,
}

/// The identifiers a subrel `where` clause may use for the member under
/// test: the subrel name, the relationship type name, and the type name
/// minus a trailing `Type`/`type` (the paper writes `Wire` for `WireType`
/// members of subclass `Wires`). Singular of a plural subrel name works too
/// (`Wires` → `Wire`).
fn subrel_aliases(subrel: &str, rel_type: &str) -> HashMap<String, String> {
    let mut m = HashMap::new();
    m.insert(subrel.to_string(), REL_VAR.to_string());
    m.insert(rel_type.to_string(), REL_VAR.to_string());
    for suffix in ["Type", "type"] {
        if let Some(stripped) = rel_type.strip_suffix(suffix) {
            if !stripped.is_empty() {
                m.insert(stripped.to_string(), REL_VAR.to_string());
            }
        }
    }
    if let Some(singular) = subrel.strip_suffix('s') {
        if !singular.is_empty() {
            m.insert(singular.to_string(), REL_VAR.to_string());
        }
    }
    m
}

fn is_point_record(d: &DomainExpr) -> bool {
    matches!(
        d,
        DomainExpr::Record(groups)
            if groups.iter().map(|(ns, _)| ns.len()).sum::<usize>() == 2
    )
}

fn lower_binop(op: LBinOp) -> BinOp {
    match op {
        LBinOp::Add => BinOp::Add,
        LBinOp::Sub => BinOp::Sub,
        LBinOp::Mul => BinOp::Mul,
        LBinOp::Div => BinOp::Div,
        LBinOp::Eq => BinOp::Eq,
        LBinOp::Ne => BinOp::Ne,
        LBinOp::Lt => BinOp::Lt,
        LBinOp::Le => BinOp::Le,
        LBinOp::Gt => BinOp::Gt,
        LBinOp::Ge => BinOp::Ge,
        LBinOp::And => BinOp::And,
        LBinOp::Or => BinOp::Or,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Catalog {
        let mut c = Catalog::new();
        compile(&parse(src).unwrap(), &mut c).unwrap();
        c
    }

    #[test]
    fn simple_gate_compiles_with_filtered_count() {
        let c = compile_src(
            r#"
            domain I/O = (IN, OUT);
            obj-type SimpleGate =
                attributes:
                    Length, Width: integer;
                    Function: (AND, OR, NOR, NAND);
                    Pins: set-of ( PinId: integer; InOut: I/O; );
                constraints:
                    count (Pins) = 2 where Pins.InOut = IN;
            end SimpleGate;
            "#,
        );
        let def = c.object_type("SimpleGate").unwrap();
        assert_eq!(def.attributes.len(), 4);
        assert_eq!(def.attributes[0].name, "Length");
        assert!(matches!(def.attributes[3].domain, Domain::SetOf(_)));
        // Constraint: count with attached filter comparing to enum literal.
        let Expr::Binary {
            op: BinOp::Eq, lhs, ..
        } = &def.constraints[0].expr
        else {
            panic!("expected comparison")
        };
        let Expr::Count {
            filter: Some(f), ..
        } = lhs.as_ref()
        else {
            panic!("expected count with filter: {lhs:?}")
        };
        let Expr::Binary {
            lhs: fl, rhs: fr, ..
        } = f.as_ref()
        else {
            panic!()
        };
        assert!(
            matches!(fl.as_ref(), Expr::Path(p) if p.root == PathRoot::Var(ELEM_VAR.into())),
            "{fl:?}"
        );
        assert_eq!(fr.as_ref(), &Expr::Lit(Value::Enum("IN".into())));
    }

    #[test]
    fn point_domain_lowered_to_builtin() {
        let c = compile_src("domain Point = (X, Y: integer);");
        assert_eq!(c.domain("Point").unwrap(), &Domain::Point);
    }

    #[test]
    fn subrel_where_clause_binds_member_alias() {
        let c = compile_src(
            r#"
            obj-type PinType = attributes: Id: integer; end PinType;
            rel-type WireType =
                relates: Pin1, Pin2: object-of-type PinType;
            end WireType;
            obj-type Gate =
                types-of-subclasses:
                    Pins: PinType;
                types-of-subrels:
                    Wires: WireType
                        where Wire.Pin1 in Pins and Wire.Pin2 in Pins;
            end Gate;
            "#,
        );
        let def = c.object_type("Gate").unwrap();
        let sr = &def.subrels[0];
        assert_eq!(sr.rel_type, "WireType");
        let Expr::Binary { lhs, .. } = &sr.member_constraints[0].expr else {
            panic!()
        };
        let Expr::InClass { item, class } = lhs.as_ref() else {
            panic!("{lhs:?}")
        };
        let Expr::Path(p) = item.as_ref() else {
            panic!()
        };
        assert_eq!(
            p.root,
            PathRoot::Var(REL_VAR.into()),
            "`Wire.` → member var"
        );
        assert_eq!(p.segments, vec!["Pin1"]);
        assert_eq!(class.root, PathRoot::SelfObject);
    }

    #[test]
    fn inline_subclass_generates_member_type() {
        let c = compile_src(
            r#"
            obj-type GateInterface =
                attributes: Length, Width: integer;
            end GateInterface;
            inher-rel-type AllOf_GateInterface =
                transmitter: object-of-type GateInterface;
                inheritor: object;
                inheriting: Length, Width;
            end AllOf_GateInterface;
            obj-type GateImplementation =
                inheritor-in: AllOf_GateInterface;
                types-of-subclasses:
                    SubGates:
                        inheritor-in: AllOf_GateInterface;
                        attributes:
                            GateLocation: Point;
            end GateImplementation;
            "#,
        );
        c.validate().unwrap();
        let member = c.object_type("GateImplementation.SubGates").unwrap();
        assert_eq!(member.inheritor_in, vec!["AllOf_GateInterface"]);
        assert_eq!(member.attributes[0].name, "GateLocation");
        assert_eq!(member.attributes[0].domain, Domain::Point);
        let owner = c.object_type("GateImplementation").unwrap();
        assert_eq!(
            owner.subclasses[0].element_type,
            "GateImplementation.SubGates"
        );
    }

    #[test]
    fn accumulated_for_bindings_quantify_constraints() {
        let c = compile_src(
            r#"
            obj-type BoltPart = attributes: Diameter, Length: integer; end BoltPart;
            rel-type ScrewingType =
                relates: Bores: set-of object-of-type BoltPart;
                types-of-subclasses:
                    Bolt: BoltPart;
                    Nut: BoltPart;
                constraints:
                    #s in Bolt = 1;
                    for (s in Bolt, n in Nut):
                        s.Diameter = n.Diameter;
                    for b in Bores:
                        s.Diameter <= b.Diameter;
            end ScrewingType;
            "#,
        );
        let def = c.rel_type("ScrewingType").unwrap();
        // First: plain count.
        assert!(matches!(&def.constraints[0].expr, Expr::Binary { .. }));
        // Second: ForAll over (s, n).
        let Expr::ForAll { bindings, .. } = &def.constraints[1].expr else {
            panic!()
        };
        assert_eq!(bindings.len(), 2);
        // Third: ForAll over (s, n, b).
        let Expr::ForAll { bindings, body } = &def.constraints[2].expr else {
            panic!()
        };
        assert_eq!(bindings.len(), 3);
        let Expr::Binary {
            op: BinOp::Le,
            lhs,
            rhs,
        } = body.as_ref()
        else {
            panic!()
        };
        assert!(matches!(lhs.as_ref(), Expr::Path(p) if p.root == PathRoot::Var("s".into())));
        assert!(matches!(rhs.as_ref(), Expr::Path(p) if p.root == PathRoot::Var("b".into())));
    }

    #[test]
    fn enum_literals_resolve_across_incremental_compiles() {
        let mut c = Catalog::new();
        compile(
            &parse("obj-type Plate = attributes: Material: (wood, metal); end Plate;").unwrap(),
            &mut c,
        )
        .unwrap();
        // Second chunk uses `wood` in a constraint — must resolve as a literal.
        compile(
            &parse(
                "obj-type Check = attributes: M: (wood, metal); constraints: M = wood; end Check;",
            )
            .unwrap(),
            &mut c,
        )
        .unwrap();
        let def = c.object_type("Check").unwrap();
        let Expr::Binary { rhs, .. } = &def.constraints[0].expr else {
            panic!()
        };
        assert_eq!(rhs.as_ref(), &Expr::Lit(Value::Enum("wood".into())));
    }

    #[test]
    fn unknown_domain_is_an_error() {
        let mut c = Catalog::new();
        let decls = parse("obj-type T = attributes: X: NoSuchDomain; end T;").unwrap();
        let err = compile(&decls, &mut c).unwrap_err();
        assert!(err.to_string().contains("NoSuchDomain"));
    }

    #[test]
    fn where_without_count_is_an_error() {
        let mut c = Catalog::new();
        let decls =
            parse("obj-type T = attributes: X: integer; constraints: X = 1 where X = 2; end T;")
                .unwrap();
        let err = compile(&decls, &mut c).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }
}

/// Lower a stand-alone query expression against an existing catalog (no
/// bound variables; enum literals resolved from the catalog's domains).
pub fn lower_query_expr(
    ast: &LExpr,
    catalog: &Catalog,
) -> Result<ccdb_core::expr::Expr, CompileError> {
    // Cx needs &mut Catalog only to register things; queries never register,
    // so work on a clone of the catalog handle via an owned copy.
    let mut scratch = catalog.clone();
    let mut cx = Cx {
        catalog: &mut scratch,
        enum_literals: HashSet::new(),
    };
    cx.harvest_existing_literals();
    cx.expr(ast, &Scope::default())
}

#[cfg(test)]
mod query_tests {
    use crate::compile_expr;
    use crate::compile_str;
    use ccdb_core::expr::{Expr, PathRoot};
    use ccdb_core::schema::Catalog;
    use ccdb_core::value::Value;

    #[test]
    fn query_expr_resolves_enum_literals_from_catalog() {
        let mut c = Catalog::new();
        compile_str(
            "obj-type Pin = attributes: InOut: (IN, OUT); Id: integer; end Pin;",
            &mut c,
        )
        .unwrap();
        let q = compile_expr("InOut = IN and Id > 3", &c).unwrap();
        let Expr::Binary { lhs, .. } = &q else {
            panic!()
        };
        let Expr::Binary { rhs, .. } = lhs.as_ref() else {
            panic!()
        };
        assert_eq!(rhs.as_ref(), &Expr::Lit(Value::Enum("IN".into())));
    }

    #[test]
    fn query_expr_paths_root_at_subject() {
        let c = Catalog::new();
        let q = compile_expr("Length >= 10", &c).unwrap();
        let Expr::Binary { lhs, .. } = &q else {
            panic!()
        };
        let Expr::Path(p) = lhs.as_ref() else {
            panic!()
        };
        assert_eq!(p.root, PathRoot::SelfObject);
    }

    #[test]
    fn query_expr_rejects_garbage() {
        let c = Catalog::new();
        assert!(compile_expr("Length >=", &c).is_err());
    }
}
