//! Rendering a compiled [`Catalog`] back to the paper's concrete syntax.
//!
//! `render(catalog)` produces source text that [`compile_str`](crate::compile_str)
//! accepts again; the round-trip is semantics-preserving (checked for the
//! paper's full §3–§5 schemas in the tests). Named domains referenced by
//! attributes were structurally resolved at compile time, so they are
//! re-emitted inline — equivalent, if less pretty.
//!
//! Limitations (returned as errors, never silently dropped): constraint
//! expressions using forms outside the paper grammar (e.g. boolean
//! literals) cannot be rendered.

use ccdb_core::domain::Domain;
use ccdb_core::expr::{BinOp, Expr, PathExpr, PathRoot, ELEM_VAR, REL_VAR};
use ccdb_core::schema::{Catalog, Constraint, ObjectTypeDef, RelTypeDef};
use ccdb_core::value::Value;

use crate::compile::CompileError;

fn rerr<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        message: format!("render: {}", msg.into()),
    })
}

/// Render the whole catalog as compilable source text.
pub fn render(catalog: &Catalog) -> Result<String, CompileError> {
    let mut out = String::new();
    // Object types first (inheritance relationships may reference them),
    // but inheritance-relationship types must appear before the types that
    // declare `inheritor-in` them. Easiest dependency-safe order: emit
    // object types and inher-rel types interleaved by need. A simple two
    // pass scheme works because the compiler resolves names lazily except
    // for `inheriting:` items (validated later) — so emit: all plain object
    // types WITHOUT inheritor-in first? Those may still inherit. In
    // practice `compile` never needs forward declarations except the
    // `rel_type` lookup for subrel member aliases, so order: object types
    // (topologically by inheritance), inher-rel types interleaved, rel
    // types, then complex owners. We reuse the registration order proxy:
    // alphabetical with dependency fixup is overkill — the compiler only
    // *requires* that (a) a subrel's rel-type exists when the owner is
    // compiled (for member-item aliases) and (b) domains exist. We therefore
    // emit: inher-rel types have no ordering constraint at compile time, so:
    // 1. leaf object types (no subrels), 2. inher-rel types, 3. rel types,
    // 4. object types with subrels.
    let mut leafs = Vec::new();
    let mut owners = Vec::new();
    for name in catalog.object_type_names() {
        if name.contains('.') {
            continue; // anonymous member types render inline
        }
        let def = catalog.object_type(name).expect("listed");
        if def.subrels.is_empty() {
            leafs.push(def);
        } else {
            owners.push(def);
        }
    }
    for def in leafs {
        out.push_str(&render_obj_type(catalog, def)?);
        out.push('\n');
    }
    for name in catalog.inher_rel_type_names() {
        let def = catalog.inher_rel_type(name).expect("listed");
        out.push_str(&format!(
            "inher-rel-type {} =\n    transmitter: object-of-type {};\n    inheritor: {};\n    inheriting:\n        {};\n",
            def.name,
            def.transmitter_type,
            match &def.inheritor_type {
                Some(t) => format!("object-of-type {t}"),
                None => "object".to_string(),
            },
            def.inheriting.join(", "),
        ));
        if !def.attributes.is_empty() {
            out.push_str("    attributes:\n");
            for a in &def.attributes {
                out.push_str(&format!(
                    "        {}: {};\n",
                    a.name,
                    render_domain(&a.domain)?
                ));
            }
        }
        out.push_str(&format!("end {};\n\n", def.name));
    }
    for name in catalog.rel_type_names() {
        out.push_str(&render_rel_type(
            catalog,
            catalog.rel_type(name).expect("listed"),
        )?);
        out.push('\n');
    }
    for def in owners {
        out.push_str(&render_obj_type(catalog, def)?);
        out.push('\n');
    }
    Ok(out)
}

fn render_domain(d: &Domain) -> Result<String, CompileError> {
    Ok(match d {
        Domain::Int => "integer".into(),
        Domain::Real => return rerr("`real` domains are not part of the paper grammar"),
        Domain::Bool => "boolean".into(),
        Domain::Text => "char".into(),
        Domain::Enum(lits) => format!("({})", lits.join(", ")),
        Domain::Point => "Point".into(),
        Domain::Record(fields) => {
            let mut inner = String::new();
            for (n, fd) in fields {
                inner.push_str(&format!("{}: {}; ", n, render_domain(fd)?));
            }
            format!("( {inner})")
        }
        Domain::ListOf(i) => format!("list-of {}", render_domain(i)?),
        Domain::SetOf(i) => format!("set-of {}", render_domain(i)?),
        Domain::MatrixOf(i) => format!("matrix-of {}", render_domain(i)?),
        Domain::Ref(_) => return rerr("object references are not attribute domains"),
    })
}

fn render_obj_type(catalog: &Catalog, def: &ObjectTypeDef) -> Result<String, CompileError> {
    let mut out = format!("obj-type {} =\n", def.name);
    for rel in &def.inheritor_in {
        out.push_str(&format!("    inheritor-in: {rel};\n"));
    }
    if !def.attributes.is_empty() {
        out.push_str("    attributes:\n");
        for a in &def.attributes {
            out.push_str(&format!(
                "        {}: {};\n",
                a.name,
                render_domain(&a.domain)?
            ));
        }
    }
    if !def.subclasses.is_empty() {
        out.push_str("    types-of-subclasses:\n");
        for sc in &def.subclasses {
            if sc.element_type.contains('.') {
                // Inline member type.
                let member = catalog
                    .object_type(&sc.element_type)
                    .map_err(|e| CompileError {
                        message: e.to_string(),
                    })?;
                out.push_str(&format!("        {}:\n", sc.name));
                for rel in &member.inheritor_in {
                    out.push_str(&format!("            inheritor-in: {rel};\n"));
                }
                if !member.attributes.is_empty() {
                    out.push_str("            attributes:\n");
                    for a in &member.attributes {
                        out.push_str(&format!(
                            "                {}: {};\n",
                            a.name,
                            render_domain(&a.domain)?
                        ));
                    }
                }
            } else {
                out.push_str(&format!("        {}: {};\n", sc.name, sc.element_type));
            }
        }
    }
    if !def.subrels.is_empty() {
        out.push_str("    types-of-subrels:\n");
        for sr in &def.subrels {
            out.push_str(&format!("        {}: {}", sr.name, sr.rel_type));
            match sr.member_constraints.len() {
                0 => {}
                1 => {
                    let alias = rel_alias(&sr.rel_type);
                    out.push_str(&format!(
                        "\n            where {}",
                        render_expr(&sr.member_constraints[0].expr, &Cx::subrel(&alias))?
                    ));
                }
                _ => return rerr("multiple where-clauses per subrel"),
            }
            out.push_str(";\n");
        }
    }
    if !def.constraints.is_empty() {
        out.push_str("    constraints:\n");
        for c in &def.constraints {
            out.push_str(&format!("        {};\n", render_constraint(c)?));
        }
    }
    out.push_str(&format!("end {};\n", def.name));
    Ok(out)
}

fn render_rel_type(catalog: &Catalog, def: &RelTypeDef) -> Result<String, CompileError> {
    let mut out = format!("rel-type {} =\n", def.name);
    if !def.participants.is_empty() {
        out.push_str("    relates:\n");
        for p in &def.participants {
            let ty = match (&p.required_type, p.many) {
                (Some(t), true) => format!("set-of object-of-type {t}"),
                (Some(t), false) => format!("object-of-type {t}"),
                (None, true) => "set-of object".into(),
                (None, false) => "object".into(),
            };
            out.push_str(&format!("        {}: {};\n", p.name, ty));
        }
    }
    if !def.attributes.is_empty() {
        out.push_str("    attributes:\n");
        for a in &def.attributes {
            out.push_str(&format!(
                "        {}: {};\n",
                a.name,
                render_domain(&a.domain)?
            ));
        }
    }
    if !def.subclasses.is_empty() {
        out.push_str("    types-of-subclasses:\n");
        for sc in &def.subclasses {
            if sc.element_type.contains('.') {
                let member = catalog
                    .object_type(&sc.element_type)
                    .map_err(|e| CompileError {
                        message: e.to_string(),
                    })?;
                out.push_str(&format!("        {}:\n", sc.name));
                for rel in &member.inheritor_in {
                    out.push_str(&format!("            inheritor-in: {rel};\n"));
                }
                if !member.attributes.is_empty() {
                    out.push_str("            attributes:\n");
                    for a in &member.attributes {
                        out.push_str(&format!(
                            "                {}: {};\n",
                            a.name,
                            render_domain(&a.domain)?
                        ));
                    }
                }
            } else {
                out.push_str(&format!("        {}: {};\n", sc.name, sc.element_type));
            }
        }
    }
    if !def.constraints.is_empty() {
        out.push_str("    constraints:\n");
        for c in &def.constraints {
            out.push_str(&format!("        {};\n", render_constraint(c)?));
        }
    }
    out.push_str(&format!("end {};\n", def.name));
    Ok(out)
}

/// Rendering context: how to spell the special variables.
struct Cx {
    /// Spelling for [`REL_VAR`] (subrel member alias).
    rel_alias: Option<String>,
    /// Spelling for [`ELEM_VAR`] (count filter element).
    elem_alias: Option<String>,
}

impl Cx {
    fn plain() -> Self {
        Cx {
            rel_alias: None,
            elem_alias: None,
        }
    }
    fn subrel(alias: &str) -> Self {
        Cx {
            rel_alias: Some(alias.to_string()),
            elem_alias: None,
        }
    }
}

fn rel_alias(rel_type: &str) -> String {
    rel_type
        .strip_suffix("Type")
        .or_else(|| rel_type.strip_suffix("type"))
        .filter(|s| !s.is_empty())
        .unwrap_or(rel_type)
        .to_string()
}

/// Render a top-level constraint, re-sugaring `count … where` and top-level
/// `for` quantifiers.
fn render_constraint(c: &Constraint) -> Result<String, CompileError> {
    render_top(&c.expr, &Cx::plain())
}

fn render_top(e: &Expr, cx: &Cx) -> Result<String, CompileError> {
    match e {
        Expr::ForAll { bindings, body } => {
            let bs: Vec<String> = bindings
                .iter()
                .map(|(v, p)| Ok(format!("{v} in {}", render_path(p, cx)?)))
                .collect::<Result<_, CompileError>>()?;
            Ok(format!(
                "for ({}): {}",
                bs.join(", "),
                render_top(body, cx)?
            ))
        }
        // `count (P) = n  where F` — re-sugar a filtered count inside a
        // comparison into the paper's trailing-where form.
        Expr::Binary { op, lhs, rhs } => {
            if let Expr::Count {
                path,
                filter: Some(f),
            } = lhs.as_ref()
            {
                let elem = path.segments.last().cloned().ok_or(CompileError {
                    message: "render: count over empty path".into(),
                })?;
                let inner = Cx {
                    rel_alias: cx.rel_alias.clone(),
                    elem_alias: Some(elem),
                };
                return Ok(format!(
                    "count ({}) {} {} where {}",
                    render_path(path, cx)?,
                    render_op(*op),
                    render_expr(rhs, cx)?,
                    render_expr(f, &inner)?
                ));
            }
            render_expr(e, cx)
        }
        _ => render_expr(e, cx),
    }
}

fn render_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Eq => "=",
        BinOp::Ne => "<>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

fn render_path(p: &PathExpr, cx: &Cx) -> Result<String, CompileError> {
    let mut segs: Vec<String> = Vec::new();
    match &p.root {
        PathRoot::SelfObject => {}
        PathRoot::Var(v) if v == REL_VAR => match &cx.rel_alias {
            Some(a) => segs.push(a.clone()),
            None => return rerr("member variable outside a subrel where-clause"),
        },
        PathRoot::Var(v) if v == ELEM_VAR => match &cx.elem_alias {
            Some(a) => segs.push(a.clone()),
            None => return rerr("count element variable outside a count filter"),
        },
        PathRoot::Var(v) => segs.push(v.clone()),
    }
    segs.extend(p.segments.iter().cloned());
    if segs.is_empty() {
        return rerr("empty path");
    }
    Ok(segs.join("."))
}

fn render_expr(e: &Expr, cx: &Cx) -> Result<String, CompileError> {
    Ok(match e {
        Expr::Lit(Value::Int(i)) => i.to_string(),
        Expr::Lit(Value::Str(s)) => format!("{s:?}"),
        Expr::Lit(Value::Enum(s)) => s.clone(),
        Expr::Lit(v) => return rerr(format!("literal {v} has no source form")),
        Expr::Path(p) => render_path(p, cx)?,
        Expr::Count { path, filter: None } => format!("count ({})", render_path(path, cx)?),
        Expr::Count { .. } => {
            return rerr("filtered count outside a `count (…) = n where …` comparison")
        }
        Expr::Sum(p) => format!("sum ({})", render_path(p, cx)?),
        Expr::Min(p) => format!("min ({})", render_path(p, cx)?),
        Expr::Max(p) => format!("max ({})", render_path(p, cx)?),
        Expr::Neg(i) => format!("- ({})", render_expr(i, cx)?),
        Expr::Not(i) => format!("not ({})", render_expr(i, cx)?),
        Expr::Binary { op, lhs, rhs } => format!(
            "({} {} {})",
            render_expr(lhs, cx)?,
            render_op(*op),
            render_expr(rhs, cx)?
        ),
        Expr::ForAll { bindings, body } => {
            let bs: Vec<String> = bindings
                .iter()
                .map(|(v, p)| Ok(format!("{v} in {}", render_path(p, cx)?)))
                .collect::<Result<_, CompileError>>()?;
            format!("for ({}): ({})", bs.join(", "), render_expr(body, cx)?)
        }
        Expr::Exists { .. } => return rerr("`exists` has no paper-syntax form"),
        Expr::InClass { item, class } => {
            format!("{} in {}", render_expr(item, cx)?, render_path(class, cx)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{chip_catalog, steel_catalog, CHIP_SCHEMA, STEEL_SCHEMA};
    use crate::{compile_str, parse};

    fn roundtrip(src: &str) -> (Catalog, Catalog) {
        let mut c1 = Catalog::new();
        compile_str(src, &mut c1).unwrap();
        c1.validate().unwrap();
        let rendered = render(&c1).unwrap();
        let mut c2 = Catalog::new();
        compile_str(&rendered, &mut c2)
            .unwrap_or_else(|e| panic!("re-compile failed: {e}\n---\n{rendered}"));
        c2.validate().unwrap();
        (c1, c2)
    }

    fn assert_equivalent(c1: &Catalog, c2: &Catalog) {
        assert_eq!(c1.object_type_names(), c2.object_type_names());
        assert_eq!(c1.rel_type_names(), c2.rel_type_names());
        assert_eq!(c1.inher_rel_type_names(), c2.inher_rel_type_names());
        for name in c1.object_type_names() {
            let a = c1.object_type(name).unwrap();
            let b = c2.object_type(name).unwrap();
            assert_eq!(a.attributes, b.attributes, "attrs of {name}");
            assert_eq!(a.subclasses, b.subclasses, "subclasses of {name}");
            assert_eq!(a.inheritor_in, b.inheritor_in, "inheritor-in of {name}");
            assert_eq!(
                a.constraints.len(),
                b.constraints.len(),
                "constraint count of {name}"
            );
            for (ca, cb) in a.constraints.iter().zip(&b.constraints) {
                assert_eq!(ca.expr, cb.expr, "constraint of {name}");
            }
            for (sa, sb) in a.subrels.iter().zip(&b.subrels) {
                assert_eq!(sa.name, sb.name);
                assert_eq!(sa.rel_type, sb.rel_type);
                assert_eq!(
                    sa.member_constraints.len(),
                    sb.member_constraints.len(),
                    "where-clauses of {name}.{}",
                    sa.name
                );
                for (ca, cb) in sa.member_constraints.iter().zip(&sb.member_constraints) {
                    assert_eq!(ca.expr, cb.expr, "where-clause of {name}.{}", sa.name);
                }
            }
        }
        for name in c1.rel_type_names() {
            let a = c1.rel_type(name).unwrap();
            let b = c2.rel_type(name).unwrap();
            assert_eq!(a.participants, b.participants);
            assert_eq!(a.attributes, b.attributes);
            assert_eq!(a.subclasses, b.subclasses);
            for (ca, cb) in a.constraints.iter().zip(&b.constraints) {
                assert_eq!(ca.expr, cb.expr, "constraint of {name}");
            }
        }
        for name in c1.inher_rel_type_names() {
            let a = c1.inher_rel_type(name).unwrap();
            let b = c2.inher_rel_type(name).unwrap();
            assert_eq!(a.transmitter_type, b.transmitter_type);
            assert_eq!(a.inheriting, b.inheriting);
        }
    }

    #[test]
    fn chip_schema_roundtrips() {
        let (c1, c2) = roundtrip(CHIP_SCHEMA);
        assert_equivalent(&c1, &c2);
    }

    #[test]
    fn steel_schema_roundtrips() {
        let (c1, c2) = roundtrip(STEEL_SCHEMA);
        assert_equivalent(&c1, &c2);
    }

    #[test]
    fn rendered_source_parses_standalone() {
        let c = chip_catalog().unwrap();
        let rendered = render(&c).unwrap();
        assert!(parse(&rendered).is_ok());
        let c = steel_catalog().unwrap();
        let rendered = render(&c).unwrap();
        assert!(rendered.contains("inher-rel-type AllOf_BoltType"));
        assert!(rendered.contains("count (") || rendered.contains("#"));
    }
}

#[cfg(test)]
mod property {
    use super::*;
    use crate::compile_str;
    use ccdb_core::domain::Domain as D;
    use ccdb_core::schema::{AttrDef, InherRelTypeDef, ObjectTypeDef, SubclassSpec};
    use proptest::prelude::*;

    fn domain_strategy() -> impl Strategy<Value = D> {
        let leaf = prop_oneof![
            Just(D::Int),
            Just(D::Bool),
            Just(D::Text),
            Just(D::Point),
            proptest::collection::vec("[A-Z]{2,6}", 1..4)
                .prop_map(|ls| D::Enum(ls.into_iter().collect())),
        ];
        leaf.prop_recursive(2, 8, 3, |inner| {
            prop_oneof![
                inner.clone().prop_map(|d| D::SetOf(Box::new(d))),
                inner.clone().prop_map(|d| D::ListOf(Box::new(d))),
                inner.clone().prop_map(|d| D::MatrixOf(Box::new(d))),
                proptest::collection::vec(("[A-Z][a-z]{1,5}", inner), 1..3).prop_map(|fs| {
                    let mut fields: Vec<(String, D)> = Vec::new();
                    for (n, d) in fs {
                        if !fields.iter().any(|(en, _)| en == &n) {
                            fields.push((n, d));
                        }
                    }
                    D::Record(fields)
                }),
            ]
        })
    }

    /// A random, *valid* catalog: a base type with random attributes, an
    /// inheritance relationship letting a random prefix through, and an
    /// inheritor type with its own attributes and a subclass of the base.
    fn catalog_strategy() -> impl Strategy<Value = Catalog> {
        (
            proptest::collection::vec(("[A-Z][a-z]{2,8}", domain_strategy()), 1..6),
            proptest::collection::vec(("[A-Z][a-z]{2,8}", domain_strategy()), 0..4),
            any::<usize>(),
        )
            .prop_map(|(base_attrs, extra_attrs, k)| {
                // Dedup attr names within and across the two types.
                let mut seen = std::collections::HashSet::new();
                let base: Vec<AttrDef> = base_attrs
                    .into_iter()
                    .filter(|(n, _)| seen.insert(n.clone()))
                    .map(|(n, d)| AttrDef { name: n, domain: d })
                    .collect();
                let extra: Vec<AttrDef> = extra_attrs
                    .into_iter()
                    .filter(|(n, _)| seen.insert(n.clone()))
                    .map(|(n, d)| AttrDef { name: n, domain: d })
                    .collect();
                let permeable: Vec<String> = base
                    .iter()
                    .take((k % (base.len() + 1)).max(1).min(base.len()))
                    .map(|a| a.name.clone())
                    .collect();
                let mut c = Catalog::new();
                c.register_object_type(ObjectTypeDef {
                    name: "Base".into(),
                    attributes: base,
                    ..Default::default()
                })
                .unwrap();
                c.register_inher_rel_type(InherRelTypeDef {
                    name: "AllOf_Base".into(),
                    transmitter_type: "Base".into(),
                    inheritor_type: None,
                    inheriting: permeable,
                    attributes: vec![],
                    constraints: vec![],
                })
                .unwrap();
                c.register_object_type(ObjectTypeDef {
                    name: "User".into(),
                    inheritor_in: vec!["AllOf_Base".into()],
                    attributes: extra,
                    subclasses: vec![SubclassSpec {
                        name: "Parts".into(),
                        element_type: "Base".into(),
                    }],
                    ..Default::default()
                })
                .unwrap();
                c
            })
            .prop_filter("catalog must validate", |c| c.validate().is_ok())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_catalogs_roundtrip(c1 in catalog_strategy()) {
            let rendered = render(&c1).unwrap();
            let mut c2 = Catalog::new();
            compile_str(&rendered, &mut c2)
                .unwrap_or_else(|e| panic!("re-compile failed: {e}\n---\n{rendered}"));
            c2.validate().unwrap();
            prop_assert_eq!(c1.object_type_names(), c2.object_type_names());
            for name in c1.object_type_names() {
                let a = c1.object_type(name).unwrap();
                let b = c2.object_type(name).unwrap();
                prop_assert_eq!(&a.attributes, &b.attributes, "attrs of {}", name);
                prop_assert_eq!(&a.subclasses, &b.subclasses);
                prop_assert_eq!(&a.inheritor_in, &b.inheritor_in);
            }
            let a = c1.inher_rel_type("AllOf_Base").unwrap();
            let b = c2.inher_rel_type("AllOf_Base").unwrap();
            prop_assert_eq!(&a.inheriting, &b.inheriting);
        }
    }
}
