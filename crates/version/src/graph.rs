//! Version graphs (§6, after \[KSWi86\]/\[Wilk87\]).
//!
//! Each *design object* (identified by name) owns a [`VersionSet`]: a DAG of
//! versions connected by derivation edges. Alternatives are siblings derived
//! from the same parent; merges have several parents. Versions carry a
//! status classification ("degree of correctness") with forward-only
//! transitions, and a set may nominate a *default version* (the bottom-up
//! selection target).
//!
//! Combined with the interface hierarchies of §4.2 this yields the paper's
//! "versioned versions": versions of interfaces whose implementations are
//! versions again.

use std::collections::HashMap;

use ccdb_core::Surrogate;
use serde::{Deserialize, Serialize};

/// Version identifier within one version set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct VersionId(pub u32);

impl std::fmt::Display for VersionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Degree-of-correctness classification.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum VersionStatus {
    /// Being designed; freely mutable.
    InDesign,
    /// Passed validation.
    Tested,
    /// Released for use as a component.
    Released,
    /// Archived; must never change again.
    Frozen,
}

impl VersionStatus {
    /// Transitions move forward only.
    pub fn can_transition_to(self, next: VersionStatus) -> bool {
        next > self
    }
}

/// Errors of the version layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VersionError {
    /// Unknown version set.
    UnknownSet(String),
    /// Unknown version id in a set.
    UnknownVersion(String, VersionId),
    /// A parent reference did not resolve.
    UnknownParent(VersionId),
    /// Illegal status transition.
    BadTransition {
        /// From.
        from: VersionStatus,
        /// To.
        to: VersionStatus,
    },
    /// Set already exists.
    DuplicateSet(String),
    /// No version matched a selection.
    NoMatch(String),
}

impl std::fmt::Display for VersionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VersionError::UnknownSet(s) => write!(f, "unknown version set `{s}`"),
            VersionError::UnknownVersion(s, v) => write!(f, "unknown version {v} in `{s}`"),
            VersionError::UnknownParent(v) => write!(f, "unknown parent version {v}"),
            VersionError::BadTransition { from, to } => {
                write!(f, "illegal status transition {from:?} → {to:?}")
            }
            VersionError::DuplicateSet(s) => write!(f, "version set `{s}` already exists"),
            VersionError::NoMatch(s) => write!(f, "no version of `{s}` matches the selection"),
        }
    }
}

impl std::error::Error for VersionError {}

/// One version: a database object plus graph metadata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VersionEntry {
    /// Version id within the set.
    pub id: VersionId,
    /// The database object realizing this version.
    pub object: Surrogate,
    /// Derivation parents (empty for the initial version).
    pub parents: Vec<VersionId>,
    /// Status classification.
    pub status: VersionStatus,
    /// Logical creation time (manager-wide counter).
    pub created_at: u64,
}

/// The version DAG of one design object.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VersionSet {
    versions: Vec<VersionEntry>,
    default: Option<VersionId>,
}

impl VersionSet {
    /// Entry lookup.
    pub fn entry(&self, id: VersionId) -> Option<&VersionEntry> {
        self.versions.iter().find(|v| v.id == id)
    }

    /// All entries in creation order.
    pub fn entries(&self) -> &[VersionEntry] {
        &self.versions
    }

    /// The declared default version (bottom-up selection target).
    pub fn default_version(&self) -> Option<VersionId> {
        self.default
    }

    /// Versions without children (current design frontier).
    pub fn leaves(&self) -> Vec<VersionId> {
        self.versions
            .iter()
            .filter(|v| !self.versions.iter().any(|c| c.parents.contains(&v.id)))
            .map(|v| v.id)
            .collect()
    }

    /// The newest version by creation time.
    pub fn latest(&self) -> Option<VersionId> {
        self.versions
            .iter()
            .max_by_key(|v| v.created_at)
            .map(|v| v.id)
    }

    /// Alternatives of `id`: other versions sharing at least one parent.
    pub fn alternatives(&self, id: VersionId) -> Vec<VersionId> {
        let Some(me) = self.entry(id) else {
            return vec![];
        };
        self.versions
            .iter()
            .filter(|v| v.id != id && v.parents.iter().any(|p| me.parents.contains(p)))
            .map(|v| v.id)
            .collect()
    }

    /// Derivation history of `id` back to the roots (ancestors, oldest
    /// first, deduplicated).
    pub fn history(&self, id: VersionId) -> Vec<VersionId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            if out.contains(&v) {
                continue;
            }
            out.push(v);
            if let Some(e) = self.entry(v) {
                stack.extend(e.parents.iter().copied());
            }
        }
        out.reverse();
        out
    }
}

/// Manager of all version sets in a database.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VersionManager {
    sets: HashMap<String, VersionSet>,
    clock: u64,
    next_id: u32,
}

impl VersionManager {
    /// Empty manager.
    pub fn new() -> Self {
        VersionManager::default()
    }

    /// Create a version set for a design object.
    pub fn create_set(&mut self, name: &str) -> Result<(), VersionError> {
        if self.sets.contains_key(name) {
            return Err(VersionError::DuplicateSet(name.into()));
        }
        self.sets.insert(name.to_string(), VersionSet::default());
        Ok(())
    }

    /// Set lookup.
    pub fn set(&self, name: &str) -> Result<&VersionSet, VersionError> {
        self.sets
            .get(name)
            .ok_or_else(|| VersionError::UnknownSet(name.into()))
    }

    fn set_mut(&mut self, name: &str) -> Result<&mut VersionSet, VersionError> {
        self.sets
            .get_mut(name)
            .ok_or_else(|| VersionError::UnknownSet(name.into()))
    }

    /// Names of all sets (sorted).
    pub fn set_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.sets.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Add a version realized by `object`, derived from `parents`.
    pub fn add_version(
        &mut self,
        set_name: &str,
        object: Surrogate,
        parents: &[VersionId],
    ) -> Result<VersionId, VersionError> {
        self.clock += 1;
        self.next_id += 1;
        let id = VersionId(self.next_id);
        let created_at = self.clock;
        let set = self.set_mut(set_name)?;
        for p in parents {
            if set.entry(*p).is_none() {
                return Err(VersionError::UnknownParent(*p));
            }
        }
        set.versions.push(VersionEntry {
            id,
            object,
            parents: parents.to_vec(),
            status: VersionStatus::InDesign,
            created_at,
        });
        // First version becomes the default automatically.
        if set.default.is_none() {
            set.default = Some(id);
        }
        Ok(id)
    }

    /// Advance a version's status (forward-only).
    pub fn set_status(
        &mut self,
        set_name: &str,
        id: VersionId,
        status: VersionStatus,
    ) -> Result<(), VersionError> {
        let set = self.set_mut(set_name)?;
        let entry = set
            .versions
            .iter_mut()
            .find(|v| v.id == id)
            .ok_or_else(|| VersionError::UnknownVersion(set_name.into(), id))?;
        if !entry.status.can_transition_to(status) {
            return Err(VersionError::BadTransition {
                from: entry.status,
                to: status,
            });
        }
        entry.status = status;
        Ok(())
    }

    /// Nominate the default version (bottom-up selection, §6 item 2).
    pub fn set_default(&mut self, set_name: &str, id: VersionId) -> Result<(), VersionError> {
        let set = self.set_mut(set_name)?;
        if set.entry(id).is_none() {
            return Err(VersionError::UnknownVersion(set_name.into(), id));
        }
        set.default = Some(id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr_with_chain() -> (VersionManager, Vec<VersionId>) {
        let mut m = VersionManager::new();
        m.create_set("NAND-Gate").unwrap();
        let v1 = m.add_version("NAND-Gate", Surrogate(1), &[]).unwrap();
        let v2 = m.add_version("NAND-Gate", Surrogate(2), &[v1]).unwrap();
        let v3 = m.add_version("NAND-Gate", Surrogate(3), &[v2]).unwrap();
        (m, vec![v1, v2, v3])
    }

    #[test]
    fn linear_history() {
        let (m, v) = mgr_with_chain();
        let set = m.set("NAND-Gate").unwrap();
        assert_eq!(set.history(v[2]), v);
        assert_eq!(set.latest(), Some(v[2]));
        assert_eq!(set.leaves(), vec![v[2]]);
        assert_eq!(
            set.default_version(),
            Some(v[0]),
            "first version is default"
        );
    }

    #[test]
    fn alternatives_are_siblings() {
        let (mut m, v) = mgr_with_chain();
        let alt = m.add_version("NAND-Gate", Surrogate(4), &[v[1]]).unwrap();
        let set = m.set("NAND-Gate").unwrap();
        assert_eq!(set.alternatives(v[2]), vec![alt]);
        assert_eq!(set.alternatives(alt), vec![v[2]]);
        let mut leaves = set.leaves();
        leaves.sort();
        assert_eq!(leaves, vec![v[2], alt]);
    }

    #[test]
    fn merge_has_two_parents() {
        let (mut m, v) = mgr_with_chain();
        let alt = m.add_version("NAND-Gate", Surrogate(4), &[v[1]]).unwrap();
        let merged = m
            .add_version("NAND-Gate", Surrogate(5), &[v[2], alt])
            .unwrap();
        let set = m.set("NAND-Gate").unwrap();
        let hist = set.history(merged);
        assert!(hist.contains(&v[2]) && hist.contains(&alt) && hist.contains(&v[0]));
        assert_eq!(set.leaves(), vec![merged]);
    }

    #[test]
    fn status_transitions_forward_only() {
        let (mut m, v) = mgr_with_chain();
        m.set_status("NAND-Gate", v[0], VersionStatus::Tested)
            .unwrap();
        m.set_status("NAND-Gate", v[0], VersionStatus::Released)
            .unwrap();
        let err = m
            .set_status("NAND-Gate", v[0], VersionStatus::InDesign)
            .unwrap_err();
        assert!(matches!(err, VersionError::BadTransition { .. }));
        m.set_status("NAND-Gate", v[0], VersionStatus::Frozen)
            .unwrap();
        let err = m
            .set_status("NAND-Gate", v[0], VersionStatus::Frozen)
            .unwrap_err();
        assert!(matches!(err, VersionError::BadTransition { .. }));
    }

    #[test]
    fn unknown_references_rejected() {
        let (mut m, _) = mgr_with_chain();
        assert!(matches!(m.set("Ghost"), Err(VersionError::UnknownSet(_))));
        assert!(matches!(
            m.create_set("NAND-Gate"),
            Err(VersionError::DuplicateSet(_))
        ));
        assert!(matches!(
            m.add_version("NAND-Gate", Surrogate(9), &[VersionId(999)]),
            Err(VersionError::UnknownParent(_))
        ));
        assert!(matches!(
            m.set_default("NAND-Gate", VersionId(999)),
            Err(VersionError::UnknownVersion(..))
        ));
    }

    #[test]
    fn default_can_be_renominated() {
        let (mut m, v) = mgr_with_chain();
        m.set_default("NAND-Gate", v[2]).unwrap();
        assert_eq!(m.set("NAND-Gate").unwrap().default_version(), Some(v[2]));
    }

    #[test]
    fn ids_unique_across_sets() {
        let mut m = VersionManager::new();
        m.create_set("A").unwrap();
        m.create_set("B").unwrap();
        let a = m.add_version("A", Surrogate(1), &[]).unwrap();
        let b = m.add_version("B", Surrogate(2), &[]).unwrap();
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod property {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Add { parent_picks: Vec<usize> },
        Status(usize, u8),
        SetDefault(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => proptest::collection::vec(any::<usize>(), 0..3)
                .prop_map(|parent_picks| Op::Add { parent_picks }),
            1 => (any::<usize>(), 0u8..4).prop_map(|(i, s)| Op::Status(i, s)),
            1 => any::<usize>().prop_map(Op::SetDefault),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn graph_invariants(ops in proptest::collection::vec(op_strategy(), 1..40)) {
            let mut m = VersionManager::new();
            m.create_set("S").unwrap();
            let mut ids: Vec<VersionId> = Vec::new();
            for (n, op) in ops.into_iter().enumerate() {
                match op {
                    Op::Add { parent_picks } => {
                        let parents: Vec<VersionId> = parent_picks
                            .iter()
                            .filter(|_| !ids.is_empty())
                            .map(|p| ids[p % ids.len()])
                            .collect();
                        let mut parents = parents;
                        parents.dedup();
                        let id = m.add_version("S", Surrogate(n as u64), &parents).unwrap();
                        ids.push(id);
                    }
                    Op::Status(i, s) => {
                        if ids.is_empty() { continue; }
                        let id = ids[i % ids.len()];
                        let status = [
                            VersionStatus::InDesign,
                            VersionStatus::Tested,
                            VersionStatus::Released,
                            VersionStatus::Frozen,
                        ][s as usize];
                        let before = m.set("S").unwrap().entry(id).unwrap().status;
                        let res = m.set_status("S", id, status);
                        // Transition succeeds iff strictly forward.
                        prop_assert_eq!(res.is_ok(), status > before);
                    }
                    Op::SetDefault(i) => {
                        if ids.is_empty() { continue; }
                        m.set_default("S", ids[i % ids.len()]).unwrap();
                    }
                }
                let set = m.set("S").unwrap();
                // Invariants:
                // 1. history of any version starts at a root and contains it.
                for id in &ids {
                    let h = set.history(*id);
                    prop_assert!(h.contains(id));
                    prop_assert_eq!(h.last(), Some(id), "history ends at self");
                }
                // 2. every leaf really has no children.
                for leaf in set.leaves() {
                    prop_assert!(!set
                        .entries()
                        .iter()
                        .any(|e| e.parents.contains(&leaf)));
                }
                // 3. default (if set) resolves.
                if let Some(d) = set.default_version() {
                    prop_assert!(set.entry(d).is_some());
                }
                // 4. latest is the max creation time.
                if let Some(l) = set.latest() {
                    let lt = set.entry(l).unwrap().created_at;
                    prop_assert!(set.entries().iter().all(|e| e.created_at <= lt));
                }
            }
        }
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn version_manager_roundtrips_through_json() {
        let mut m = VersionManager::new();
        m.create_set("Gate").unwrap();
        let v1 = m.add_version("Gate", Surrogate(1), &[]).unwrap();
        let v2 = m.add_version("Gate", Surrogate(2), &[v1]).unwrap();
        m.set_status("Gate", v1, VersionStatus::Released).unwrap();
        m.set_default("Gate", v2).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: VersionManager = serde_json::from_str(&json).unwrap();
        assert_eq!(back.set("Gate").unwrap().default_version(), Some(v2));
        assert_eq!(
            back.set("Gate").unwrap().entry(v1).unwrap().status,
            VersionStatus::Released
        );
        // Id issuing continues correctly after reload.
        let mut back = back;
        let v3 = back.add_version("Gate", Surrogate(3), &[v2]).unwrap();
        assert!(v3 > v2);
    }
}
