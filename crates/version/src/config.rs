//! Configuration control (§2 aspect 1, after \[KaCB86\]/\[DiLo85\]/\[SVCC88\]).
//!
//! "Which components does a composite object have, which components do its
//! components have, etc.? … configuration control … is concerned with the
//! problem of providing all components of an object."
//!
//! A [`Configuration`] is a named snapshot of every inheritance binding in
//! a composite's component closure — which transmitter each inheritor was
//! bound to, transitively. Configurations can be **captured** from a live
//! store, **diffed** against each other (what changed between two released
//! states?), and **applied** back (rebinding the composite to a recorded
//! state — e.g. reproducing the exact component versions of a shipped
//! product).

use serde::{Deserialize, Serialize};

use ccdb_core::expand::expansion_footprint;
use ccdb_core::store::ObjectStore;
use ccdb_core::{CoreError, Surrogate};

/// One recorded binding: `inheritor` was bound to `transmitter` through
/// `rel_type`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ConfigEntry {
    /// The inheritor (component subobject, implementation, …).
    pub inheritor: Surrogate,
    /// The inheritance-relationship type.
    pub rel_type: String,
    /// The transmitter it was bound to at capture time.
    pub transmitter: Surrogate,
}

/// A difference between two configurations for one `(inheritor, rel_type)`
/// slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigDelta {
    /// The inheritor whose binding differs.
    pub inheritor: Surrogate,
    /// The relationship type.
    pub rel_type: String,
    /// Transmitter in `self` (None = slot absent).
    pub before: Option<Surrogate>,
    /// Transmitter in `other` (None = slot absent).
    pub after: Option<Surrogate>,
}

/// What [`Configuration::apply`] did.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ApplyReport {
    /// Bindings already as recorded.
    pub unchanged: usize,
    /// Bindings re-pointed to the recorded transmitter.
    pub rebound: usize,
    /// Entries that could not be applied (objects gone, bind failed).
    pub failed: Vec<ConfigEntry>,
}

/// A named, serializable snapshot of a composite's component bindings.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Configuration {
    /// Configuration name (e.g. "release-1.2").
    pub name: String,
    /// The composite whose closure was captured.
    pub root: Surrogate,
    /// All bindings, sorted by (inheritor, rel_type).
    pub entries: Vec<ConfigEntry>,
}

impl Configuration {
    /// Capture the bindings of every object in `root`'s expansion footprint
    /// (the component closure — subobjects and transmitters, transitively).
    pub fn capture(name: &str, store: &ObjectStore, root: Surrogate) -> Result<Self, CoreError> {
        let mut entries = Vec::new();
        for s in expansion_footprint(store, root)? {
            let o = store.object(s)?;
            for (rel_type, rel_obj) in &o.bindings {
                if let Some(t) = store.object(*rel_obj)?.transmitter() {
                    entries.push(ConfigEntry {
                        inheritor: s,
                        rel_type: rel_type.clone(),
                        transmitter: t,
                    });
                }
            }
        }
        entries.sort_by(|a, b| (a.inheritor, &a.rel_type).cmp(&(b.inheritor, &b.rel_type)));
        Ok(Configuration {
            name: name.to_string(),
            root,
            entries,
        })
    }

    /// Look up the recorded transmitter for a slot.
    pub fn transmitter_of(&self, inheritor: Surrogate, rel_type: &str) -> Option<Surrogate> {
        self.entries
            .iter()
            .find(|e| e.inheritor == inheritor && e.rel_type == rel_type)
            .map(|e| e.transmitter)
    }

    /// Rebind the store to this configuration. Bindings not mentioned are
    /// left alone; missing objects are reported, not fatal.
    pub fn apply(&self, store: &mut ObjectStore) -> ApplyReport {
        let mut report = ApplyReport::default();
        for e in &self.entries {
            let current = store
                .binding_of(e.inheritor, &e.rel_type)
                .and_then(|rel| store.object(rel).ok().and_then(|o| o.transmitter()));
            if current == Some(e.transmitter) {
                report.unchanged += 1;
                continue;
            }
            if let Some(rel) = store.binding_of(e.inheritor, &e.rel_type) {
                if store.unbind(rel).is_err() {
                    report.failed.push(e.clone());
                    continue;
                }
            }
            match store.bind(&e.rel_type, e.transmitter, e.inheritor, vec![]) {
                Ok(_) => report.rebound += 1,
                Err(_) => report.failed.push(e.clone()),
            }
        }
        report
    }

    /// Slot-wise difference `self → other`.
    pub fn diff(&self, other: &Configuration) -> Vec<ConfigDelta> {
        let mut out = Vec::new();
        for e in &self.entries {
            let after = other.transmitter_of(e.inheritor, &e.rel_type);
            if after != Some(e.transmitter) {
                out.push(ConfigDelta {
                    inheritor: e.inheritor,
                    rel_type: e.rel_type.clone(),
                    before: Some(e.transmitter),
                    after,
                });
            }
        }
        for e in &other.entries {
            if self.transmitter_of(e.inheritor, &e.rel_type).is_none() {
                out.push(ConfigDelta {
                    inheritor: e.inheritor,
                    rel_type: e.rel_type.clone(),
                    before: None,
                    after: Some(e.transmitter),
                });
            }
        }
        out.sort_by(|a, b| (a.inheritor, &a.rel_type).cmp(&(b.inheritor, &b.rel_type)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef, SubclassSpec};
    use ccdb_core::Value;

    /// Assembly with two component slots; two library interfaces to choose
    /// from per slot.
    fn setup() -> (ObjectStore, Surrogate, Vec<Surrogate>, Vec<Surrogate>) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("Length", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["Length".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Slot".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("Pos", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Assembly".into(),
            subclasses: vec![SubclassSpec {
                name: "Slots".into(),
                element_type: "Slot".into(),
            }],
            ..Default::default()
        })
        .unwrap();
        let mut st = ObjectStore::new(c).unwrap();
        let lib: Vec<Surrogate> = (0..2)
            .map(|k| {
                st.create_object("If", vec![("Length", Value::Int(10 + k))])
                    .unwrap()
            })
            .collect();
        let asm = st.create_object("Assembly", vec![]).unwrap();
        let slots: Vec<Surrogate> = (0..2)
            .map(|p| {
                let s = st
                    .create_subobject(asm, "Slots", vec![("Pos", Value::Int(p))])
                    .unwrap();
                st.bind("AllOf_If", lib[0], s, vec![]).unwrap();
                s
            })
            .collect();
        (st, asm, slots, lib)
    }

    #[test]
    fn capture_records_the_component_closure() {
        let (st, asm, slots, lib) = setup();
        let cfg = Configuration::capture("r1", &st, asm).unwrap();
        assert_eq!(cfg.entries.len(), 2);
        for s in &slots {
            assert_eq!(cfg.transmitter_of(*s, "AllOf_If"), Some(lib[0]));
        }
    }

    #[test]
    fn apply_restores_a_recorded_state() {
        let (mut st, asm, slots, lib) = setup();
        let release = Configuration::capture("release", &st, asm).unwrap();
        // Design moves on: slot 0 is rebound to the newer interface.
        let rel = st.binding_of(slots[0], "AllOf_If").unwrap();
        st.unbind(rel).unwrap();
        st.bind("AllOf_If", lib[1], slots[0], vec![]).unwrap();
        assert_eq!(st.attr(slots[0], "Length").unwrap(), Value::Int(11));
        // Applying the release configuration restores the shipped state.
        let report = release.apply(&mut st);
        assert_eq!(report.rebound, 1);
        assert_eq!(report.unchanged, 1);
        assert!(report.failed.is_empty());
        assert_eq!(st.attr(slots[0], "Length").unwrap(), Value::Int(10));
    }

    #[test]
    fn diff_reports_rebound_slots() {
        let (mut st, asm, slots, lib) = setup();
        let before = Configuration::capture("before", &st, asm).unwrap();
        let rel = st.binding_of(slots[1], "AllOf_If").unwrap();
        st.unbind(rel).unwrap();
        st.bind("AllOf_If", lib[1], slots[1], vec![]).unwrap();
        let after = Configuration::capture("after", &st, asm).unwrap();
        let deltas = before.diff(&after);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].inheritor, slots[1]);
        assert_eq!(deltas[0].before, Some(lib[0]));
        assert_eq!(deltas[0].after, Some(lib[1]));
        // Self-diff is empty.
        assert!(before.diff(&before).is_empty());
    }

    #[test]
    fn diff_sees_added_and_removed_slots() {
        let (mut st, asm, _slots, lib) = setup();
        let before = Configuration::capture("b", &st, asm).unwrap();
        let extra = st
            .create_subobject(asm, "Slots", vec![("Pos", Value::Int(9))])
            .unwrap();
        st.bind("AllOf_If", lib[1], extra, vec![]).unwrap();
        let after = Configuration::capture("a", &st, asm).unwrap();
        let deltas = before.diff(&after);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].before, None);
        assert_eq!(deltas[0].after, Some(lib[1]));
        // Reverse direction: the slot is "removed".
        let deltas = after.diff(&before);
        assert_eq!(deltas[0].after, None);
    }

    #[test]
    fn apply_reports_unfixable_entries() {
        let (mut st, asm, slots, _lib) = setup();
        let cfg = Configuration::capture("r", &st, asm).unwrap();
        // Destroy the library component the config points at.
        let rel = st.binding_of(slots[0], "AllOf_If").unwrap();
        let t = st.object(rel).unwrap().transmitter().unwrap();
        // Unbind everything first so delete succeeds.
        for s in &slots {
            let rel = st.binding_of(*s, "AllOf_If").unwrap();
            st.unbind(rel).unwrap();
        }
        st.delete(t).unwrap();
        let report = cfg.apply(&mut st);
        assert_eq!(
            report.failed.len(),
            2,
            "both slots referenced the deleted interface"
        );
    }

    #[test]
    fn configurations_serialize() {
        let (st, asm, ..) = setup();
        let cfg = Configuration::capture("r1", &st, asm).unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: Configuration = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
