#![warn(missing_docs)]

//! # ccdb-version
//!
//! Version management for the ccdb object model (§6 of the paper, following
//! its references \[KSWi86\]/\[Wilk87\]/\[DiLo85\]):
//!
//! - [`graph`]: per-design-object version DAGs with derivation edges,
//!   alternatives, merges, forward-only status classification
//!   (in-design → tested → released → frozen), and default versions —
//!   together with §4.2's interface hierarchies this realizes the paper's
//!   "versioned versions";
//! - [`select`]: **generic relationships** whose concrete component version
//!   is chosen at assembly time by the paper's three strategies (top-down
//!   query, bottom-up default, environment), plus re-resolution that rebinds
//!   composites when new versions appear.

pub mod config;
pub mod graph;
pub mod select;

pub use config::{ApplyReport, ConfigDelta, ConfigEntry, Configuration};
pub use graph::{VersionEntry, VersionError, VersionId, VersionManager, VersionSet, VersionStatus};
pub use select::{
    resolve, EnvironmentRegistry, GenericBindings, GenericRef, RebindOutcome, Selector,
};
