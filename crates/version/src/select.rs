//! Generic relationships and component-version selection (§6).
//!
//! With several versions of a component, a composite can use a **generic
//! relationship**: the concrete version is chosen at assembly time by one of
//! the paper's three strategies —
//!
//! 1. **top-down**: a query associated with the composite gives the required
//!    properties ([`Selector::Query`]);
//! 2. **bottom-up**: the design object nominates a default version
//!    ([`Selector::Default`]);
//! 3. **environment**: the choice comes from outside both, e.g. a named
//!    configuration pinning versions ([`Selector::Environment`], after
//!    \[DiLo85\]).
//!
//! [`GenericBindings`] keeps composite → design-object references and can
//! re-resolve them when new versions appear, rebinding the underlying
//! inheritance relationships and reporting what changed.

use std::collections::HashMap;

use ccdb_core::expr::{eval, Env, Expr};
use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};

use crate::graph::{VersionError, VersionId, VersionManager, VersionStatus};

/// How to choose among the versions of a design object.
#[derive(Clone, Debug)]
pub enum Selector {
    /// The set's nominated default version (bottom-up).
    Default,
    /// The newest version (by creation time).
    Latest,
    /// The newest version with at least this status.
    LatestWithStatus(VersionStatus),
    /// Top-down: the newest version whose object satisfies the predicate.
    Query(Expr),
    /// The version pinned by a named environment.
    Environment(String),
}

/// Named environments pinning versions per design object (e.g. a release
/// configuration).
#[derive(Clone, Debug, Default)]
pub struct EnvironmentRegistry {
    pins: HashMap<(String, String), VersionId>,
}

impl EnvironmentRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        EnvironmentRegistry::default()
    }

    /// Pin `set` to `version` within environment `env`.
    pub fn pin(&mut self, env: &str, set: &str, version: VersionId) {
        self.pins
            .insert((env.to_string(), set.to_string()), version);
    }

    /// The pinned version, if any.
    pub fn pinned(&self, env: &str, set: &str) -> Option<VersionId> {
        self.pins.get(&(env.to_string(), set.to_string())).copied()
    }
}

/// Resolve a selector against a version set. Returns the chosen version.
pub fn resolve(
    mgr: &VersionManager,
    store: &ObjectStore,
    envs: &EnvironmentRegistry,
    set_name: &str,
    selector: &Selector,
) -> Result<VersionId, VersionError> {
    let set = mgr.set(set_name)?;
    let chosen = match selector {
        Selector::Default => set.default_version(),
        Selector::Latest => set.latest(),
        Selector::LatestWithStatus(min) => set
            .entries()
            .iter()
            .filter(|e| e.status >= *min)
            .max_by_key(|e| e.created_at)
            .map(|e| e.id),
        Selector::Query(pred) => set
            .entries()
            .iter()
            .filter(|e| {
                matches!(
                    eval(store, e.object, &mut Env::new(), pred),
                    Ok(Value::Bool(true))
                )
            })
            .max_by_key(|e| e.created_at)
            .map(|e| e.id),
        Selector::Environment(env) => envs.pinned(env, set_name),
    };
    chosen.ok_or_else(|| VersionError::NoMatch(set_name.into()))
}

/// One generic component reference: `inheritor` uses some version of
/// `set` as its transmitter through `rel_type`.
#[derive(Clone, Debug)]
pub struct GenericRef {
    /// The component-subobject (or implementation) that inherits.
    pub inheritor: Surrogate,
    /// The inheritance-relationship type realizing the composition.
    pub rel_type: String,
    /// The design object (version set) referenced generically.
    pub set: String,
    /// The selection strategy.
    pub selector: Selector,
}

/// What a refresh did to one generic reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RebindOutcome {
    /// Already bound to the selected version.
    Unchanged,
    /// Rebound from the old to the new transmitter.
    Rebound {
        /// Previous transmitter (None = was unbound).
        from: Option<Surrogate>,
        /// New transmitter.
        to: Surrogate,
    },
    /// Selection failed; the old binding (if any) was left alone.
    NoMatch,
}

/// Registry of generic references with re-resolution.
#[derive(Clone, Debug, Default)]
pub struct GenericBindings {
    refs: Vec<GenericRef>,
}

impl GenericBindings {
    /// Empty registry.
    pub fn new() -> Self {
        GenericBindings::default()
    }

    /// Register a generic reference (no binding happens yet).
    pub fn register(&mut self, r: GenericRef) {
        self.refs.push(r);
    }

    /// Registered references.
    pub fn refs(&self) -> &[GenericRef] {
        &self.refs
    }

    /// Re-resolve every reference and (re)bind inheritors whose selected
    /// version changed. Returns one outcome per reference, in order.
    pub fn refresh(
        &self,
        store: &mut ObjectStore,
        mgr: &VersionManager,
        envs: &EnvironmentRegistry,
    ) -> Vec<(Surrogate, RebindOutcome)> {
        let mut out = Vec::with_capacity(self.refs.len());
        for r in &self.refs {
            let outcome = match resolve(mgr, store, envs, &r.set, &r.selector) {
                Err(_) => RebindOutcome::NoMatch,
                Ok(vid) => {
                    let target = mgr
                        .set(&r.set)
                        .ok()
                        .and_then(|s| s.entry(vid))
                        .map(|e| e.object);
                    match target {
                        None => RebindOutcome::NoMatch,
                        Some(to) => {
                            let current =
                                store.binding_of(r.inheritor, &r.rel_type).and_then(|rel| {
                                    store.object(rel).ok().and_then(|o| o.transmitter())
                                });
                            if current == Some(to) {
                                RebindOutcome::Unchanged
                            } else {
                                // Unbind (if bound), then bind to the target.
                                if let Some(rel) = store.binding_of(r.inheritor, &r.rel_type) {
                                    let _ = store.unbind(rel);
                                }
                                match store.bind(&r.rel_type, to, r.inheritor, vec![]) {
                                    Ok(_) => RebindOutcome::Rebound { from: current, to },
                                    Err(_) => RebindOutcome::NoMatch,
                                }
                            }
                        }
                    }
                }
            };
            out.push((r.inheritor, outcome));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::expr::{BinOp, PathExpr};
    use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};

    /// Interface versions with increasing Length; an implementation that
    /// binds generically.
    fn setup() -> (ObjectStore, VersionManager, Vec<VersionId>, Surrogate) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("Length", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["Length".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            ..Default::default()
        })
        .unwrap();
        let mut st = ObjectStore::new(c).unwrap();
        let mut mgr = VersionManager::new();
        mgr.create_set("Gate").unwrap();
        let mut ids = Vec::new();
        let mut prev: Vec<VersionId> = vec![];
        for len in [10, 20, 30] {
            let o = st
                .create_object("If", vec![("Length", Value::Int(len))])
                .unwrap();
            let id = mgr.add_version("Gate", o, &prev).unwrap();
            prev = vec![id];
            ids.push(id);
        }
        let imp = st.create_object("Impl", vec![]).unwrap();
        (st, mgr, ids, imp)
    }

    #[test]
    fn default_and_latest_selection() {
        let (st, mgr, ids, _) = setup();
        let envs = EnvironmentRegistry::new();
        assert_eq!(
            resolve(&mgr, &st, &envs, "Gate", &Selector::Default).unwrap(),
            ids[0]
        );
        assert_eq!(
            resolve(&mgr, &st, &envs, "Gate", &Selector::Latest).unwrap(),
            ids[2]
        );
    }

    #[test]
    fn status_filtered_selection() {
        let (st, mut mgr, ids, _) = setup();
        let envs = EnvironmentRegistry::new();
        mgr.set_status("Gate", ids[0], VersionStatus::Released)
            .unwrap();
        mgr.set_status("Gate", ids[1], VersionStatus::Tested)
            .unwrap();
        let sel = Selector::LatestWithStatus(VersionStatus::Released);
        assert_eq!(resolve(&mgr, &st, &envs, "Gate", &sel).unwrap(), ids[0]);
        // Release a newer one; the selection moves.
        mgr.set_status("Gate", ids[1], VersionStatus::Released)
            .unwrap();
        assert_eq!(resolve(&mgr, &st, &envs, "Gate", &sel).unwrap(), ids[1]);
    }

    #[test]
    fn top_down_query_selection() {
        let (st, mgr, ids, _) = setup();
        let envs = EnvironmentRegistry::new();
        // Require Length <= 20: newest satisfying is v2.
        let pred = Expr::bin(
            BinOp::Le,
            Expr::Path(PathExpr::self_path(&["Length"])),
            Expr::int(20),
        );
        assert_eq!(
            resolve(&mgr, &st, &envs, "Gate", &Selector::Query(pred)).unwrap(),
            ids[1]
        );
        // Impossible query → NoMatch.
        let never = Expr::bin(
            BinOp::Lt,
            Expr::Path(PathExpr::self_path(&["Length"])),
            Expr::int(0),
        );
        assert!(matches!(
            resolve(&mgr, &st, &envs, "Gate", &Selector::Query(never)),
            Err(VersionError::NoMatch(_))
        ));
    }

    #[test]
    fn environment_selection() {
        let (st, mgr, ids, _) = setup();
        let mut envs = EnvironmentRegistry::new();
        envs.pin("release-1", "Gate", ids[1]);
        assert_eq!(
            resolve(
                &mgr,
                &st,
                &envs,
                "Gate",
                &Selector::Environment("release-1".into())
            )
            .unwrap(),
            ids[1]
        );
        assert!(resolve(
            &mgr,
            &st,
            &envs,
            "Gate",
            &Selector::Environment("other".into())
        )
        .is_err());
    }

    #[test]
    fn refresh_binds_and_rebinds() {
        let (mut st, mut mgr, _, imp) = setup();
        let envs = EnvironmentRegistry::new();
        let mut gb = GenericBindings::new();
        gb.register(GenericRef {
            inheritor: imp,
            rel_type: "AllOf_If".into(),
            set: "Gate".into(),
            selector: Selector::Latest,
        });
        // First refresh: binds to v3 (Length 30).
        let report = gb.refresh(&mut st, &mgr, &envs);
        assert!(matches!(
            report[0].1,
            RebindOutcome::Rebound { from: None, .. }
        ));
        assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(30));
        // Second refresh: nothing to do.
        let report = gb.refresh(&mut st, &mgr, &envs);
        assert_eq!(report[0].1, RebindOutcome::Unchanged);
        // A new version appears; refresh rebinds and the new value is live.
        let v4obj = st
            .create_object("If", vec![("Length", Value::Int(40))])
            .unwrap();
        let latest = mgr.set("Gate").unwrap().latest().unwrap();
        mgr.add_version("Gate", v4obj, &[latest]).unwrap();
        let report = gb.refresh(&mut st, &mgr, &envs);
        assert!(matches!(
            report[0].1,
            RebindOutcome::Rebound { from: Some(_), .. }
        ));
        assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(40));
    }

    #[test]
    fn refresh_reports_no_match_and_keeps_binding() {
        let (mut st, mgr, ids, imp) = setup();
        let mut envs = EnvironmentRegistry::new();
        envs.pin("cfg", "Gate", ids[0]);
        let mut gb = GenericBindings::new();
        gb.register(GenericRef {
            inheritor: imp,
            rel_type: "AllOf_If".into(),
            set: "Gate".into(),
            selector: Selector::Environment("cfg".into()),
        });
        gb.refresh(&mut st, &mgr, &envs);
        assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
        // Unpin: NoMatch, binding untouched.
        let empty_envs = EnvironmentRegistry::new();
        let report = gb.refresh(&mut st, &mgr, &empty_envs);
        assert_eq!(report[0].1, RebindOutcome::NoMatch);
        assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    }
}
