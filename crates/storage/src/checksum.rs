//! CRC-32 (IEEE 802.3 polynomial) used to protect WAL records and page images.
//!
//! Implemented locally (table-driven, reflected) to avoid an extra
//! dependency; verified against known test vectors.

/// Polynomial for CRC-32/IEEE in reflected form.
const POLY: u32 = 0xEDB8_8320;

/// Lazily-computed 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 hasher for multi-part records.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum computation.
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        data[512] = 0x55;
        let base = crc32(&data);
        data[512] ^= 1;
        assert_ne!(base, crc32(&data));
    }
}
