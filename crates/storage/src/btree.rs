//! On-disk B+-tree mapping `u64` keys to `u64` values.
//!
//! Used by the object store to map surrogates to heap [`RecordId`]s (packed
//! via [`RecordId::to_u64`]). The tree lives in its own page file: page 0 is
//! a meta page holding the root pointer; all other pages are leaf or internal
//! nodes. Leaves are linked for range scans.
//!
//! Deletion is *lazy*: keys are removed from leaves without rebalancing.
//! Underfull (even empty) leaves remain linked and are skipped by scans —
//! a standard simplification that preserves correctness; space is reclaimed
//! when the index is rebuilt at checkpoint compaction.
//!
//! [`RecordId`]: crate::heap::RecordId
//! [`RecordId::to_u64`]: crate::heap::RecordId::to_u64

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PAGE_SIZE};

const MAGIC: &[u8; 8] = b"CCDBBTR1";
const NO_PAGE: u32 = u32::MAX;

/// Body offsets (the first 16 bytes of every page are the generic header).
const OFF_KIND: usize = 16;
const OFF_NKEYS: usize = 17;
const OFF_LINK: usize = 19; // leaf: next-leaf; internal: child[0]
const OFF_ENTRIES: usize = 23;

const LEAF_ENTRY: usize = 16; // key u64 + val u64
const INTERNAL_ENTRY: usize = 12; // key u64 + child u32

/// Default fanouts derived from the page size.
const LEAF_CAP: usize = (PAGE_SIZE - OFF_ENTRIES) / LEAF_ENTRY;
const INTERNAL_CAP: usize = (PAGE_SIZE - OFF_ENTRIES) / INTERNAL_ENTRY;

#[derive(Clone, Debug, PartialEq)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
        next: u32,
    },
    Internal {
        keys: Vec<u64>,
        children: Vec<u32>,
    },
}

/// A B+-tree over a dedicated page file.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: Mutex<PageId>,
    leaf_cap: usize,
    internal_cap: usize,
}

impl BTree {
    /// Open (creating if empty) a B+-tree over `pool` with default fanout.
    pub fn open(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::open_with_caps(pool, LEAF_CAP, INTERNAL_CAP)
    }

    /// Open with explicit fanout caps (small caps exercise splits in tests).
    pub fn open_with_caps(
        pool: Arc<BufferPool>,
        leaf_cap: usize,
        internal_cap: usize,
    ) -> StorageResult<Self> {
        assert!(
            leaf_cap >= 2 && internal_cap >= 2,
            "caps must allow splitting"
        );
        let root = if pool.disk().num_pages() == 0 {
            // Fresh file: meta page + empty root leaf.
            let meta = pool.allocate()?;
            debug_assert_eq!(meta, PageId(0));
            let root = pool.allocate()?;
            let tree = BTree {
                pool,
                root: Mutex::new(root),
                leaf_cap,
                internal_cap,
            };
            tree.write_node(
                root,
                &Node::Leaf {
                    keys: vec![],
                    vals: vec![],
                    next: NO_PAGE,
                },
            )?;
            tree.write_meta(root)?;
            return Ok(tree);
        } else {
            let (magic_ok, root) = pool.with_page(PageId(0), |p| {
                let b = p.as_bytes();
                let ok = &b[16..24] == MAGIC;
                let root = u32::from_le_bytes(b[24..28].try_into().unwrap());
                (ok, root)
            })?;
            if !magic_ok {
                return Err(StorageError::Corrupt(
                    "btree meta page magic mismatch".into(),
                ));
            }
            PageId(root)
        };
        Ok(BTree {
            pool,
            root: Mutex::new(root),
            leaf_cap,
            internal_cap,
        })
    }

    /// The buffer pool backing this tree.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    fn write_meta(&self, root: PageId) -> StorageResult<()> {
        self.pool.with_page_mut(PageId(0), |p| {
            let b = p.as_bytes_mut();
            b[16..24].copy_from_slice(MAGIC);
            b[24..28].copy_from_slice(&root.0.to_le_bytes());
        })
    }

    fn read_node(&self, id: PageId) -> StorageResult<Node> {
        self.pool.with_page(id, |p| {
            let b = p.as_bytes();
            let kind = b[OFF_KIND];
            let nkeys =
                u16::from_le_bytes(b[OFF_NKEYS..OFF_NKEYS + 2].try_into().unwrap()) as usize;
            let link = u32::from_le_bytes(b[OFF_LINK..OFF_LINK + 4].try_into().unwrap());
            match kind {
                1 => {
                    let mut keys = Vec::with_capacity(nkeys);
                    let mut vals = Vec::with_capacity(nkeys);
                    for i in 0..nkeys {
                        let e = OFF_ENTRIES + i * LEAF_ENTRY;
                        keys.push(u64::from_le_bytes(b[e..e + 8].try_into().unwrap()));
                        vals.push(u64::from_le_bytes(b[e + 8..e + 16].try_into().unwrap()));
                    }
                    Ok(Node::Leaf {
                        keys,
                        vals,
                        next: link,
                    })
                }
                2 => {
                    let mut keys = Vec::with_capacity(nkeys);
                    let mut children = Vec::with_capacity(nkeys + 1);
                    children.push(link);
                    for i in 0..nkeys {
                        let e = OFF_ENTRIES + i * INTERNAL_ENTRY;
                        keys.push(u64::from_le_bytes(b[e..e + 8].try_into().unwrap()));
                        children.push(u32::from_le_bytes(b[e + 8..e + 12].try_into().unwrap()));
                    }
                    Ok(Node::Internal { keys, children })
                }
                k => Err(StorageError::Corrupt(format!(
                    "btree node kind {k} at {id}"
                ))),
            }
        })?
    }

    fn write_node(&self, id: PageId, node: &Node) -> StorageResult<()> {
        self.pool.with_page_mut(id, |p| {
            let b = p.as_bytes_mut();
            match node {
                Node::Leaf { keys, vals, next } => {
                    b[OFF_KIND] = 1;
                    b[OFF_NKEYS..OFF_NKEYS + 2].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                    b[OFF_LINK..OFF_LINK + 4].copy_from_slice(&next.to_le_bytes());
                    for (i, (k, v)) in keys.iter().zip(vals).enumerate() {
                        let e = OFF_ENTRIES + i * LEAF_ENTRY;
                        b[e..e + 8].copy_from_slice(&k.to_le_bytes());
                        b[e + 8..e + 16].copy_from_slice(&v.to_le_bytes());
                    }
                }
                Node::Internal { keys, children } => {
                    debug_assert_eq!(children.len(), keys.len() + 1);
                    b[OFF_KIND] = 2;
                    b[OFF_NKEYS..OFF_NKEYS + 2].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                    b[OFF_LINK..OFF_LINK + 4].copy_from_slice(&children[0].to_le_bytes());
                    for (i, k) in keys.iter().enumerate() {
                        let e = OFF_ENTRIES + i * INTERNAL_ENTRY;
                        b[e..e + 8].copy_from_slice(&k.to_le_bytes());
                        b[e + 8..e + 12].copy_from_slice(&children[i + 1].to_le_bytes());
                    }
                }
            }
        })
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> StorageResult<Option<u64>> {
        let mut cur = *self.root.lock();
        loop {
            match self.read_node(cur)? {
                Node::Leaf { keys, vals, .. } => {
                    return Ok(keys.binary_search(&key).ok().map(|i| vals[i]));
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    cur = PageId(children[idx]);
                }
            }
        }
    }

    /// Insert a key; errors with [`StorageError::DuplicateKey`] if present.
    pub fn insert(&self, key: u64, val: u64) -> StorageResult<()> {
        self.put_impl(key, val, false)
    }

    /// Insert or overwrite a key.
    pub fn put(&self, key: u64, val: u64) -> StorageResult<()> {
        self.put_impl(key, val, true)
    }

    fn put_impl(&self, key: u64, val: u64, overwrite: bool) -> StorageResult<()> {
        let mut root_guard = self.root.lock();
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut cur = *root_guard;
        let leaf_id = loop {
            match self.read_node(cur)? {
                Node::Leaf { .. } => break cur,
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    path.push((cur, idx));
                    cur = PageId(children[idx]);
                }
            }
        };
        let Node::Leaf {
            mut keys,
            mut vals,
            next,
        } = self.read_node(leaf_id)?
        else {
            unreachable!()
        };
        match keys.binary_search(&key) {
            Ok(i) => {
                if !overwrite {
                    return Err(StorageError::DuplicateKey(key));
                }
                vals[i] = val;
                return self.write_node(leaf_id, &Node::Leaf { keys, vals, next });
            }
            Err(i) => {
                keys.insert(i, key);
                vals.insert(i, val);
            }
        }
        if keys.len() <= self.leaf_cap {
            return self.write_node(leaf_id, &Node::Leaf { keys, vals, next });
        }
        // Split the leaf.
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_vals = vals.split_off(mid);
        let sep = right_keys[0];
        let right_id = self.pool.allocate()?;
        self.write_node(
            right_id,
            &Node::Leaf {
                keys: right_keys,
                vals: right_vals,
                next,
            },
        )?;
        self.write_node(
            leaf_id,
            &Node::Leaf {
                keys,
                vals,
                next: right_id.0,
            },
        )?;
        // Propagate the separator upward.
        let mut insert_key = sep;
        let mut insert_child = right_id;
        loop {
            match path.pop() {
                Some((pid, idx)) => {
                    let Node::Internal {
                        mut keys,
                        mut children,
                    } = self.read_node(pid)?
                    else {
                        return Err(StorageError::Corrupt("leaf on internal path".into()));
                    };
                    keys.insert(idx, insert_key);
                    children.insert(idx + 1, insert_child.0);
                    if keys.len() <= self.internal_cap {
                        return self.write_node(pid, &Node::Internal { keys, children });
                    }
                    let mid = keys.len() / 2;
                    let promote = keys[mid];
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // the promoted key moves up
                    let right_children = children.split_off(mid + 1);
                    let right_id = self.pool.allocate()?;
                    self.write_node(
                        right_id,
                        &Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    )?;
                    self.write_node(pid, &Node::Internal { keys, children })?;
                    insert_key = promote;
                    insert_child = right_id;
                }
                None => {
                    // Root split: grow the tree.
                    let old_root = *root_guard;
                    let new_root = self.pool.allocate()?;
                    self.write_node(
                        new_root,
                        &Node::Internal {
                            keys: vec![insert_key],
                            children: vec![old_root.0, insert_child.0],
                        },
                    )?;
                    *root_guard = new_root;
                    self.write_meta(new_root)?;
                    return Ok(());
                }
            }
        }
    }

    /// Remove a key; errors with [`StorageError::KeyNotFound`] if absent.
    pub fn delete(&self, key: u64) -> StorageResult<()> {
        let mut cur = *self.root.lock();
        loop {
            match self.read_node(cur)? {
                Node::Leaf {
                    mut keys,
                    mut vals,
                    next,
                } => {
                    let Ok(i) = keys.binary_search(&key) else {
                        return Err(StorageError::KeyNotFound(key));
                    };
                    keys.remove(i);
                    vals.remove(i);
                    return self.write_node(cur, &Node::Leaf { keys, vals, next });
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    cur = PageId(children[idx]);
                }
            }
        }
    }

    /// All entries with `key >= from`, in key order, at most `limit`.
    pub fn scan_from(&self, from: u64, limit: usize) -> StorageResult<Vec<(u64, u64)>> {
        let mut cur = *self.root.lock();
        // Descend to the leaf that may contain `from`.
        let mut leaf = loop {
            match self.read_node(cur)? {
                Node::Leaf { .. } => break cur,
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= from);
                    cur = PageId(children[idx]);
                }
            }
        };
        let mut out = Vec::new();
        loop {
            let Node::Leaf { keys, vals, next } = self.read_node(leaf)? else {
                unreachable!()
            };
            for (k, v) in keys.iter().zip(vals.iter()) {
                if *k >= from {
                    out.push((*k, *v));
                    if out.len() >= limit {
                        return Ok(out);
                    }
                }
            }
            if next == NO_PAGE {
                return Ok(out);
            }
            leaf = PageId(next);
        }
    }

    /// All entries in key order.
    pub fn scan_all(&self) -> StorageResult<Vec<(u64, u64)>> {
        self.scan_from(0, usize::MAX)
    }

    /// Number of entries (walks the leaf chain).
    pub fn len(&self) -> StorageResult<usize> {
        Ok(self.scan_all()?.len())
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Height of the tree (1 = just a root leaf) — used by tests/benches.
    pub fn height(&self) -> StorageResult<usize> {
        let mut cur = *self.root.lock();
        let mut h = 1;
        loop {
            match self.read_node(cur)? {
                Node::Leaf { .. } => return Ok(h),
                Node::Internal { children, .. } => {
                    h += 1;
                    cur = PageId(children[0]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn tree_with_caps(leaf: usize, internal: usize) -> (tempfile::NamedTempFile, BTree) {
        let f = tempfile::NamedTempFile::new().unwrap();
        let dm = Arc::new(DiskManager::open(f.path()).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 64));
        (f, BTree::open_with_caps(pool, leaf, internal).unwrap())
    }

    fn small_tree() -> (tempfile::NamedTempFile, BTree) {
        tree_with_caps(4, 4)
    }

    #[test]
    fn empty_tree_lookups() {
        let (_f, t) = small_tree();
        assert_eq!(t.get(1).unwrap(), None);
        assert!(t.is_empty().unwrap());
        assert!(matches!(t.delete(1), Err(StorageError::KeyNotFound(1))));
    }

    #[test]
    fn insert_and_get() {
        let (_f, t) = small_tree();
        t.insert(10, 100).unwrap();
        t.insert(5, 50).unwrap();
        t.insert(20, 200).unwrap();
        assert_eq!(t.get(10).unwrap(), Some(100));
        assert_eq!(t.get(5).unwrap(), Some(50));
        assert_eq!(t.get(20).unwrap(), Some(200));
        assert_eq!(t.get(7).unwrap(), None);
    }

    #[test]
    fn duplicate_insert_rejected_put_overwrites() {
        let (_f, t) = small_tree();
        t.insert(1, 10).unwrap();
        assert!(matches!(
            t.insert(1, 11),
            Err(StorageError::DuplicateKey(1))
        ));
        t.put(1, 12).unwrap();
        assert_eq!(t.get(1).unwrap(), Some(12));
    }

    #[test]
    fn splits_grow_tree_and_preserve_order() {
        let (_f, t) = small_tree();
        for k in 0..200u64 {
            t.insert(k * 3, k).unwrap();
        }
        assert!(
            t.height().unwrap() >= 3,
            "small caps must force multiple levels"
        );
        for k in 0..200u64 {
            assert_eq!(t.get(k * 3).unwrap(), Some(k), "key {}", k * 3);
        }
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), 200);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan in key order");
    }

    #[test]
    fn reverse_and_random_insert_orders() {
        let (_f, t) = small_tree();
        let mut keys: Vec<u64> = (0..150).collect();
        // Deterministic shuffle.
        let mut s = 0x9E3779B97F4A7C15u64;
        for i in (1..keys.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s % (i as u64 + 1)) as usize;
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(k, k + 1000).unwrap();
        }
        for k in 0..150u64 {
            assert_eq!(t.get(k).unwrap(), Some(k + 1000));
        }
    }

    #[test]
    fn delete_then_reinsert() {
        let (_f, t) = small_tree();
        for k in 0..50u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..50u64).step_by(2) {
            t.delete(k).unwrap();
        }
        for k in 0..50u64 {
            assert_eq!(t.get(k).unwrap(), if k % 2 == 0 { None } else { Some(k) });
        }
        assert_eq!(t.len().unwrap(), 25);
        // Reinsert deleted keys.
        for k in (0..50u64).step_by(2) {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len().unwrap(), 50);
        assert_eq!(t.get(4).unwrap(), Some(8));
    }

    #[test]
    fn scan_from_midpoint() {
        let (_f, t) = small_tree();
        for k in 0..100u64 {
            t.insert(k, k).unwrap();
        }
        let part = t.scan_from(90, usize::MAX).unwrap();
        assert_eq!(part.len(), 10);
        assert_eq!(part[0], (90, 90));
        let limited = t.scan_from(0, 5).unwrap();
        assert_eq!(limited.len(), 5);
    }

    #[test]
    fn persists_across_reopen() {
        let f = tempfile::NamedTempFile::new().unwrap();
        {
            let dm = Arc::new(DiskManager::open(f.path()).unwrap());
            let pool = Arc::new(BufferPool::new(dm, 64));
            let t = BTree::open_with_caps(pool.clone(), 4, 4).unwrap();
            for k in 0..100u64 {
                t.insert(k, k * 7).unwrap();
            }
            pool.flush_all().unwrap();
        }
        let dm = Arc::new(DiskManager::open(f.path()).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 64));
        let t = BTree::open_with_caps(pool, 4, 4).unwrap();
        for k in 0..100u64 {
            assert_eq!(t.get(k).unwrap(), Some(k * 7));
        }
    }

    #[test]
    fn default_caps_handle_large_volume() {
        let (_f, t) = tree_with_caps(LEAF_CAP, INTERNAL_CAP);
        for k in 0..5000u64 {
            t.insert(k, !k).unwrap();
        }
        assert_eq!(t.len().unwrap(), 5000);
        assert_eq!(t.get(4999).unwrap(), Some(!4999u64));
        assert!(t.height().unwrap() <= 3);
    }

    #[test]
    fn extreme_keys() {
        let (_f, t) = small_tree();
        t.insert(0, 1).unwrap();
        t.insert(u64::MAX, 2).unwrap();
        assert_eq!(t.get(0).unwrap(), Some(1));
        assert_eq!(t.get(u64::MAX).unwrap(), Some(2));
        assert_eq!(t.scan_all().unwrap(), vec![(0, 1), (u64::MAX, 2)]);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        #[derive(Debug, Clone)]
        enum Op {
            Put(u64, u64),
            Delete(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            // Narrow key space to provoke collisions and deletes of present keys.
            prop_oneof![
                3 => (0u64..200, any::<u64>()).prop_map(|(k, v)| Op::Put(k, v)),
                1 => (0u64..200).prop_map(Op::Delete),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn btree_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
                let (_f, t) = small_tree();
                let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                for op in ops {
                    match op {
                        Op::Put(k, v) => {
                            t.put(k, v).unwrap();
                            model.insert(k, v);
                        }
                        Op::Delete(k) => {
                            let expect = model.remove(&k);
                            let got = t.delete(k);
                            prop_assert_eq!(expect.is_some(), got.is_ok());
                        }
                    }
                }
                let scanned = t.scan_all().unwrap();
                let expected: Vec<(u64, u64)> = model.into_iter().collect();
                prop_assert_eq!(scanned, expected);
            }
        }
    }
}
