//! File-backed disk manager: allocates, reads and writes whole pages.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::checksum::crc32;
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Manages a single page file on disk.
///
/// All methods take `&self`; an internal mutex serialises file access so the
/// disk manager can be shared by the buffer pool across threads.
pub struct DiskManager {
    inner: Mutex<Inner>,
}

struct Inner {
    file: File,
    npages: u64,
}

impl DiskManager {
    /// Open (or create) the page file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        Ok(DiskManager {
            inner: Mutex::new(Inner {
                file,
                npages: len / PAGE_SIZE as u64,
            }),
        })
    }

    /// Number of pages currently allocated in the file.
    pub fn num_pages(&self) -> u64 {
        self.inner.lock().npages
    }

    /// Allocate a fresh zeroed page at the end of the file.
    pub fn allocate(&self) -> StorageResult<PageId> {
        let mut g = self.inner.lock();
        let id = PageId(
            u32::try_from(g.npages)
                .map_err(|_| StorageError::Corrupt("page file exceeds 2^32 pages".to_string()))?,
        );
        let page = Page::new();
        g.file.seek(SeekFrom::Start(id.byte_offset()))?;
        g.file.write_all(page.as_bytes())?;
        g.npages += 1;
        Ok(id)
    }

    /// Read a page image, verifying its body checksum (see
    /// [`DiskManager::write`]). Never-written (all-zero-checksum) pages are
    /// accepted as freshly formatted.
    pub fn read(&self, id: PageId) -> StorageResult<Page> {
        let mut g = self.inner.lock();
        if id.0 as u64 >= g.npages {
            return Err(StorageError::PageOutOfBounds {
                page: id.0,
                npages: g.npages,
            });
        }
        let mut buf = [0u8; PAGE_SIZE];
        g.file.seek(SeekFrom::Start(id.byte_offset()))?;
        g.file.read_exact(&mut buf)?;
        drop(g);
        let stored = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        if stored != 0 {
            let actual = crc32(&buf[16..]);
            if actual != stored {
                return Err(StorageError::ChecksumMismatch {
                    expected: stored,
                    actual,
                });
            }
        }
        Ok(Page::from_bytes(buf))
    }

    /// Write a page image, stamping a CRC-32 of the body into the header's
    /// checksum slot (bytes 12..16) so torn or bit-rotted pages are detected
    /// on the next read.
    pub fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut buf = *page.as_bytes();
        let crc = crc32(&buf[16..]);
        // Avoid the reserved "never written" marker.
        let crc = if crc == 0 { 1 } else { crc };
        buf[12..16].copy_from_slice(&crc.to_le_bytes());
        let mut g = self.inner.lock();
        if id.0 as u64 >= g.npages {
            return Err(StorageError::PageOutOfBounds {
                page: id.0,
                npages: g.npages,
            });
        }
        g.file.seek(SeekFrom::Start(id.byte_offset()))?;
        g.file.write_all(&buf)?;
        Ok(())
    }

    /// Force all written pages to stable storage.
    pub fn sync(&self) -> StorageResult<()> {
        self.inner.lock().file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> tempfile::NamedTempFile {
        tempfile::NamedTempFile::new().unwrap()
    }

    #[test]
    fn allocate_read_write_roundtrip() {
        let f = tmp();
        let dm = DiskManager::open(f.path()).unwrap();
        let a = dm.allocate().unwrap();
        let b = dm.allocate().unwrap();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert_eq!(dm.num_pages(), 2);

        let mut p = Page::new();
        let slot = p.insert(b"persisted").unwrap();
        dm.write(b, &p).unwrap();

        let q = dm.read(b).unwrap();
        assert_eq!(q.get(slot).unwrap(), b"persisted");
        // Page a untouched and empty.
        let pa = dm.read(a).unwrap();
        assert_eq!(pa.slot_count(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let f = tmp();
        let dm = DiskManager::open(f.path()).unwrap();
        assert!(matches!(
            dm.read(PageId(0)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        dm.allocate().unwrap();
        assert!(dm.read(PageId(0)).is_ok());
        assert!(dm.write(PageId(5), &Page::new()).is_err());
    }

    #[test]
    fn reopen_preserves_pages() {
        let f = tmp();
        {
            let dm = DiskManager::open(f.path()).unwrap();
            let id = dm.allocate().unwrap();
            let mut p = Page::new();
            p.insert(b"durable").unwrap();
            dm.write(id, &p).unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(f.path()).unwrap();
        assert_eq!(dm.num_pages(), 1);
        let p = dm.read(PageId(0)).unwrap();
        assert_eq!(p.get(0).unwrap(), b"durable");
    }

    #[test]
    fn corrupt_length_detected() {
        let f = tmp();
        std::fs::write(f.path(), vec![0u8; 100]).unwrap();
        assert!(matches!(
            DiskManager::open(f.path()),
            Err(StorageError::Corrupt(_))
        ));
    }
}

#[cfg(test)]
mod checksum_tests {
    use super::*;

    #[test]
    fn bit_rot_is_detected_on_read() {
        let f = tempfile::NamedTempFile::new().unwrap();
        let dm = DiskManager::open(f.path()).unwrap();
        let id = dm.allocate().unwrap();
        let mut p = Page::new();
        p.insert(b"precious bytes").unwrap();
        dm.write(id, &p).unwrap();
        dm.sync().unwrap();
        // Flip one payload byte directly in the file.
        let mut bytes = std::fs::read(f.path()).unwrap();
        bytes[PAGE_SIZE - 10] ^= 0x40;
        std::fs::write(f.path(), &bytes).unwrap();
        let dm = DiskManager::open(f.path()).unwrap();
        assert!(matches!(
            dm.read(id),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn never_written_pages_read_as_fresh() {
        let f = tempfile::NamedTempFile::new().unwrap();
        let dm = DiskManager::open(f.path()).unwrap();
        let id = dm.allocate().unwrap();
        let p = dm.read(id).unwrap();
        assert_eq!(p.slot_count(), 0);
    }

    #[test]
    fn rewrite_updates_checksum() {
        let f = tempfile::NamedTempFile::new().unwrap();
        let dm = DiskManager::open(f.path()).unwrap();
        let id = dm.allocate().unwrap();
        let mut p = Page::new();
        let s = p.insert(b"v1").unwrap();
        dm.write(id, &p).unwrap();
        p.update(s, b"version-two", false).unwrap();
        dm.write(id, &p).unwrap();
        let q = dm.read(id).unwrap();
        assert_eq!(q.get(s).unwrap(), b"version-two");
    }
}
