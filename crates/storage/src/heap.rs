//! Heap files: collections of variable-length records with **stable record
//! ids** across updates.
//!
//! A record that outgrows its page is moved and a *redirect* (forwarding
//! address) is stored under its original slot, so a [`RecordId`] handed out
//! by [`HeapFile::insert`] remains valid for the record's lifetime. Redirect
//! chains are collapsed: moving an already-moved record updates the original
//! redirect rather than chaining a second hop.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, SlotKind};

/// Stable address of a record in a heap file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RecordId {
    /// Page holding (or originally holding) the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into a `u64` for storing in the B+-tree.
    pub fn to_u64(self) -> u64 {
        (self.page.0 as u64) << 16 | self.slot as u64
    }

    /// Unpack from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: PageId((v >> 16) as u32),
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

fn encode_rid(rid: RecordId) -> [u8; 6] {
    let mut b = [0u8; 6];
    b[0..4].copy_from_slice(&rid.page.0.to_le_bytes());
    b[4..6].copy_from_slice(&rid.slot.to_le_bytes());
    b
}

fn decode_rid(bytes: &[u8]) -> StorageResult<RecordId> {
    if bytes.len() != 6 {
        return Err(StorageError::Corrupt(format!(
            "redirect of {} bytes",
            bytes.len()
        )));
    }
    Ok(RecordId {
        page: PageId(u32::from_le_bytes(bytes[0..4].try_into().unwrap())),
        slot: u16::from_le_bytes(bytes[4..6].try_into().unwrap()),
    })
}

/// A heap file of records over a buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    /// Approximate free bytes per heap page, for placement decisions.
    fsm: Mutex<BTreeMap<PageId, usize>>,
}

impl HeapFile {
    /// Open a heap over `pool`, scanning existing pages to rebuild the
    /// free-space map.
    pub fn open(pool: Arc<BufferPool>) -> StorageResult<Self> {
        let mut fsm = BTreeMap::new();
        let npages = pool.disk().num_pages();
        for i in 0..npages {
            let id = PageId(i as u32);
            let free = pool.with_page(id, |p| p.free_space_for_new())?;
            fsm.insert(id, free);
        }
        Ok(HeapFile {
            pool,
            fsm: Mutex::new(fsm),
        })
    }

    /// The buffer pool backing this heap.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    fn find_page_with(&self, needed: usize) -> StorageResult<PageId> {
        {
            let fsm = self.fsm.lock();
            if let Some((&id, _)) = fsm.iter().find(|(_, &free)| free >= needed) {
                return Ok(id);
            }
        }
        let id = self.pool.allocate()?;
        self.fsm.lock().insert(id, Page::max_record_len());
        Ok(id)
    }

    fn refresh_fsm(&self, id: PageId) -> StorageResult<()> {
        let free = self.pool.with_page(id, |p| p.free_space_for_new())?;
        self.fsm.lock().insert(id, free);
        Ok(())
    }

    /// Insert a record; returns its stable id.
    pub fn insert(&self, payload: &[u8]) -> StorageResult<RecordId> {
        if payload.len() > Page::max_record_len() {
            return Err(StorageError::RecordTooLarge {
                len: payload.len(),
                max: Page::max_record_len(),
            });
        }
        // Try pages with enough space; page-level fragmentation can still make
        // an insert fail, so retry with a fresh page in that case.
        loop {
            let id = self.find_page_with(payload.len() + 8)?;
            let slot = self.pool.with_page_mut(id, |p| p.insert(payload))?;
            self.refresh_fsm(id)?;
            if let Some(slot) = slot {
                return Ok(RecordId { page: id, slot });
            }
            // Mark the page full so we don't pick it again for this size.
            self.fsm.lock().insert(id, 0);
        }
    }

    /// Resolve a possibly-redirected rid to the physical location, together
    /// with a flag telling whether a redirect was followed.
    fn resolve(&self, rid: RecordId) -> StorageResult<(RecordId, bool)> {
        let kind = self.pool.with_page(rid.page, |p| p.slot_kind(rid.slot))?;
        match kind {
            SlotKind::Free => Err(StorageError::RecordNotFound {
                page: rid.page.0,
                slot: rid.slot,
            }),
            SlotKind::Record => Ok((rid, false)),
            SlotKind::Redirect => {
                let target = self
                    .pool
                    .with_page(rid.page, |p| p.get(rid.slot).map(decode_rid))??;
                let target = target?;
                Ok((target, true))
            }
        }
    }

    /// Read a record.
    pub fn get(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        let (loc, _) = self.resolve(rid)?;
        self.pool
            .with_page(loc.page, |p| p.get(loc.slot).map(|b| b.to_vec()))?
            .map_err(|_| StorageError::RecordNotFound {
                page: loc.page.0,
                slot: loc.slot,
            })
    }

    /// Update a record in place when possible, moving it (and installing a
    /// redirect) otherwise. The original `rid` stays valid either way.
    pub fn update(&self, rid: RecordId, payload: &[u8]) -> StorageResult<()> {
        if payload.len() > Page::max_record_len() {
            return Err(StorageError::RecordTooLarge {
                len: payload.len(),
                max: Page::max_record_len(),
            });
        }
        let (loc, redirected) = self.resolve(rid)?;
        let fitted = self
            .pool
            .with_page_mut(loc.page, |p| p.update(loc.slot, payload, false))??;
        self.refresh_fsm(loc.page)?;
        if fitted {
            return Ok(());
        }
        // Does not fit at its current location: place elsewhere.
        let new_loc = self.insert(payload)?;
        if redirected {
            // rid.slot already holds a redirect: retarget it and free the old copy.
            self.pool
                .with_page_mut(loc.page, |p| p.delete(loc.slot))??;
            self.refresh_fsm(loc.page)?;
            let ok = self
                .pool
                .with_page_mut(rid.page, |p| p.update(rid.slot, &encode_rid(new_loc), true))??;
            debug_assert!(ok, "6-byte redirect always fits in place of a redirect");
        } else {
            // Replace the record with a redirect in place.
            let ok = self
                .pool
                .with_page_mut(rid.page, |p| p.update(rid.slot, &encode_rid(new_loc), true))??;
            debug_assert!(ok, "6-byte redirect is never larger than page capacity");
        }
        self.refresh_fsm(rid.page)?;
        Ok(())
    }

    /// Delete a record (and its redirect target, if moved).
    pub fn delete(&self, rid: RecordId) -> StorageResult<()> {
        let (loc, redirected) = self.resolve(rid)?;
        self.pool
            .with_page_mut(loc.page, |p| p.delete(loc.slot))??;
        self.refresh_fsm(loc.page)?;
        if redirected {
            self.pool
                .with_page_mut(rid.page, |p| p.delete(rid.slot))??;
            self.refresh_fsm(rid.page)?;
        }
        Ok(())
    }

    /// Scan every live record (skipping redirect markers so each record is
    /// reported exactly once, under its *physical* location).
    pub fn scan(&self) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        let npages = self.pool.disk().num_pages();
        for i in 0..npages {
            let id = PageId(i as u32);
            let rows: Vec<(u16, Vec<u8>)> = self.pool.with_page(id, |p| {
                p.live_slots()
                    .filter(|&s| p.slot_kind(s) == SlotKind::Record)
                    .map(|s| (s, p.get(s).expect("live").to_vec()))
                    .collect()
            })?;
            for (slot, bytes) in rows {
                out.push((RecordId { page: id, slot }, bytes));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn heap() -> (tempfile::NamedTempFile, HeapFile) {
        let f = tempfile::NamedTempFile::new().unwrap();
        let dm = Arc::new(DiskManager::open(f.path()).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 16));
        (f, HeapFile::open(pool).unwrap())
    }

    #[test]
    fn rid_u64_roundtrip() {
        let rid = RecordId {
            page: PageId(123456),
            slot: 789,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
    }

    #[test]
    fn insert_get_delete() {
        let (_f, h) = heap();
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.get(a).unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap(), b"beta");
        h.delete(a).unwrap();
        assert!(h.get(a).is_err());
        assert_eq!(h.get(b).unwrap(), b"beta");
    }

    #[test]
    fn spills_to_multiple_pages() {
        let (_f, h) = heap();
        let rec = vec![5u8; 3000];
        let rids: Vec<RecordId> = (0..10).map(|_| h.insert(&rec).unwrap()).collect();
        let pages: std::collections::HashSet<PageId> = rids.iter().map(|r| r.page).collect();
        assert!(pages.len() >= 4, "3000-byte records: ≤2 per page");
        for rid in &rids {
            assert_eq!(h.get(*rid).unwrap(), rec);
        }
    }

    #[test]
    fn update_in_place() {
        let (_f, h) = heap();
        let rid = h.insert(b"original value").unwrap();
        h.update(rid, b"short").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"short");
    }

    #[test]
    fn update_with_move_keeps_rid_stable() {
        let (_f, h) = heap();
        // Fill a page almost completely so growth forces a move.
        let filler = vec![1u8; 3900];
        let a = h.insert(&filler).unwrap();
        let b = h.insert(&filler).unwrap();
        assert_eq!(a.page, b.page);
        let big = vec![2u8; 6000];
        h.update(a, &big).unwrap();
        assert_eq!(h.get(a).unwrap(), big, "old rid must still resolve");
        assert_eq!(h.get(b).unwrap(), filler);
    }

    #[test]
    fn double_move_does_not_chain_redirects() {
        let (_f, h) = heap();
        let filler = vec![1u8; 3900];
        let a = h.insert(&filler).unwrap();
        let _b = h.insert(&filler).unwrap();
        let big = vec![2u8; 6000];
        h.update(a, &big).unwrap(); // first move
        let bigger = vec![3u8; 7000];
        h.update(a, &bigger).unwrap(); // may move again
        assert_eq!(h.get(a).unwrap(), bigger);
        // The original slot is a single redirect directly to the final spot.
        let (loc, redirected) = h.resolve(a).unwrap();
        assert!(redirected);
        let kind = h
            .pool
            .with_page(loc.page, |p| p.slot_kind(loc.slot))
            .unwrap();
        assert_eq!(kind, SlotKind::Record, "no redirect-to-redirect chains");
    }

    #[test]
    fn delete_moved_record_cleans_both_slots() {
        let (_f, h) = heap();
        let filler = vec![1u8; 3900];
        let a = h.insert(&filler).unwrap();
        let _b = h.insert(&filler).unwrap();
        h.update(a, &vec![2u8; 6000]).unwrap();
        h.delete(a).unwrap();
        assert!(h.get(a).is_err());
        // Scan sees only the remaining record.
        assert_eq!(h.scan().unwrap().len(), 1);
    }

    #[test]
    fn scan_reports_each_record_once() {
        let (_f, h) = heap();
        let mut expected = Vec::new();
        for i in 0..50u32 {
            let data = i.to_le_bytes().repeat(50);
            h.insert(&data).unwrap();
            expected.push(data);
        }
        let mut scanned: Vec<Vec<u8>> = h.scan().unwrap().into_iter().map(|(_, b)| b).collect();
        scanned.sort();
        expected.sort();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn too_large_record_rejected() {
        let (_f, h) = heap();
        let res = h.insert(&vec![0u8; Page::max_record_len() + 1]);
        assert!(matches!(res, Err(StorageError::RecordTooLarge { .. })));
        let rid = h.insert(b"small").unwrap();
        let res = h.update(rid, &vec![0u8; Page::max_record_len() + 1]);
        assert!(matches!(res, Err(StorageError::RecordTooLarge { .. })));
        assert_eq!(h.get(rid).unwrap(), b"small");
    }

    #[test]
    fn reopen_rebuilds_free_space_map() {
        let f = tempfile::NamedTempFile::new().unwrap();
        let rid;
        {
            let dm = Arc::new(DiskManager::open(f.path()).unwrap());
            let pool = Arc::new(BufferPool::new(dm, 16));
            let h = HeapFile::open(pool).unwrap();
            rid = h.insert(b"persisted record").unwrap();
            h.pool().flush_all().unwrap();
        }
        let dm = Arc::new(DiskManager::open(f.path()).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 16));
        let h = HeapFile::open(pool).unwrap();
        assert_eq!(h.get(rid).unwrap(), b"persisted record");
        // New inserts go into remaining space of the same page.
        let rid2 = h.insert(b"second").unwrap();
        assert_eq!(rid2.page, rid.page);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(Vec<u8>),
            Update(usize, Vec<u8>),
            Delete(usize),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            let payload = || proptest::collection::vec(any::<u8>(), 0..2000);
            prop_oneof![
                3 => payload().prop_map(Op::Insert),
                2 => (any::<usize>(), payload()).prop_map(|(i, p)| Op::Update(i, p)),
                1 => any::<usize>().prop_map(Op::Delete),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn heap_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
                let (_f, h) = heap();
                let mut model: HashMap<RecordId, Vec<u8>> = HashMap::new();
                let mut order: Vec<RecordId> = Vec::new();
                for op in ops {
                    match op {
                        Op::Insert(p) => {
                            let rid = h.insert(&p).unwrap();
                            prop_assert!(!model.contains_key(&rid));
                            model.insert(rid, p);
                            order.push(rid);
                        }
                        Op::Update(i, p) => {
                            if order.is_empty() { continue; }
                            let rid = order[i % order.len()];
                            if model.contains_key(&rid) {
                                h.update(rid, &p).unwrap();
                                model.insert(rid, p);
                            }
                        }
                        Op::Delete(i) => {
                            if order.is_empty() { continue; }
                            let rid = order[i % order.len()];
                            if model.remove(&rid).is_some() {
                                h.delete(rid).unwrap();
                            }
                        }
                    }
                }
                for (rid, data) in &model {
                    prop_assert_eq!(h.get(*rid).unwrap(), data.clone());
                }
                // Scan count matches the model (each exactly once).
                prop_assert_eq!(h.scan().unwrap().len(), model.len());
            }
        }
    }
}
