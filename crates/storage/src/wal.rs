//! Write-ahead log.
//!
//! The WAL stores *logical, key-level* records for the transactional KV
//! layer ([`crate::heap`] + [`crate::btree`] compose into the object store's
//! durable map): `Put` and `Delete` carry both before- and after-images so
//! recovery can repeat history forward and roll losers back (see
//! [`crate::recovery`]).
//!
//! On-disk format: a sequence of frames, each
//! `[len: u32][crc32(payload): u32][payload]`. A torn or corrupt tail frame
//! terminates the scan cleanly — everything before it is preserved.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use ccdb_obs::{trace, SpanTimer};
use parking_lot::Mutex;

use crate::checksum::crc32;
use crate::error::{StorageError, StorageResult};
use crate::metrics::storage_metrics;

/// Log sequence number: byte offset of a record's frame in the log file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lsn(pub u64);

/// Transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxId(pub u64);

/// A logical log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalRecord {
    /// Transaction start.
    Begin {
        /// The starting transaction.
        tx: TxId,
    },
    /// Key write: `before` is `None` for a fresh insert.
    Put {
        /// Writing transaction.
        tx: TxId,
        /// Written key.
        key: u64,
        /// Before-image (None = fresh insert).
        before: Option<Vec<u8>>,
        /// After-image.
        after: Vec<u8>,
    },
    /// Key removal with its before-image.
    Delete {
        /// Deleting transaction.
        tx: TxId,
        /// Deleted key.
        key: u64,
        /// Value removed.
        before: Vec<u8>,
    },
    /// Transaction commit.
    Commit {
        /// The committing transaction.
        tx: TxId,
    },
    /// Transaction abort (all its effects were rolled back on-line).
    Abort {
        /// The aborting transaction.
        tx: TxId,
    },
    /// Fuzzy checkpoint: the set of transactions active at checkpoint time.
    Checkpoint {
        /// Transactions active when the checkpoint was taken.
        active: Vec<TxId>,
    },
}

impl WalRecord {
    /// Transaction this record belongs to, if any.
    pub fn tx(&self) -> Option<TxId> {
        match self {
            WalRecord::Begin { tx }
            | WalRecord::Put { tx, .. }
            | WalRecord::Delete { tx, .. }
            | WalRecord::Commit { tx }
            | WalRecord::Abort { tx } => Some(*tx),
            WalRecord::Checkpoint { .. } => None,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Begin { tx } => {
                out.push(1);
                out.extend_from_slice(&tx.0.to_le_bytes());
            }
            WalRecord::Put {
                tx,
                key,
                before,
                after,
            } => {
                out.push(2);
                out.extend_from_slice(&tx.0.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                match before {
                    None => out.extend_from_slice(&u32::MAX.to_le_bytes()),
                    Some(b) => {
                        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                        out.extend_from_slice(b);
                    }
                }
                out.extend_from_slice(&(after.len() as u32).to_le_bytes());
                out.extend_from_slice(after);
            }
            WalRecord::Delete { tx, key, before } => {
                out.push(3);
                out.extend_from_slice(&tx.0.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(before.len() as u32).to_le_bytes());
                out.extend_from_slice(before);
            }
            WalRecord::Commit { tx } => {
                out.push(4);
                out.extend_from_slice(&tx.0.to_le_bytes());
            }
            WalRecord::Abort { tx } => {
                out.push(5);
                out.extend_from_slice(&tx.0.to_le_bytes());
            }
            WalRecord::Checkpoint { active } => {
                out.push(6);
                out.extend_from_slice(&(active.len() as u32).to_le_bytes());
                for t in active {
                    out.extend_from_slice(&t.0.to_le_bytes());
                }
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> StorageResult<WalRecord> {
        let corrupt = |m: &str| StorageError::Corrupt(format!("wal record: {m}"));
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> StorageResult<&[u8]> {
            if *pos + n > buf.len() {
                return Err(corrupt("truncated"));
            }
            let s = &buf[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let tag = *take(&mut pos, 1)?.first().unwrap();
        let read_u64 = |pos: &mut usize| -> StorageResult<u64> {
            Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
        };
        let read_u32 = |pos: &mut usize| -> StorageResult<u32> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
        };
        let rec = match tag {
            1 => WalRecord::Begin {
                tx: TxId(read_u64(&mut pos)?),
            },
            2 => {
                let tx = TxId(read_u64(&mut pos)?);
                let key = read_u64(&mut pos)?;
                let blen = read_u32(&mut pos)?;
                let before = if blen == u32::MAX {
                    None
                } else {
                    Some(take(&mut pos, blen as usize)?.to_vec())
                };
                let alen = read_u32(&mut pos)? as usize;
                let after = take(&mut pos, alen)?.to_vec();
                WalRecord::Put {
                    tx,
                    key,
                    before,
                    after,
                }
            }
            3 => {
                let tx = TxId(read_u64(&mut pos)?);
                let key = read_u64(&mut pos)?;
                let blen = read_u32(&mut pos)? as usize;
                let before = take(&mut pos, blen)?.to_vec();
                WalRecord::Delete { tx, key, before }
            }
            4 => WalRecord::Commit {
                tx: TxId(read_u64(&mut pos)?),
            },
            5 => WalRecord::Abort {
                tx: TxId(read_u64(&mut pos)?),
            },
            6 => {
                let n = read_u32(&mut pos)? as usize;
                let mut active = Vec::with_capacity(n);
                for _ in 0..n {
                    active.push(TxId(read_u64(&mut pos)?));
                }
                WalRecord::Checkpoint { active }
            }
            t => return Err(corrupt(&format!("unknown tag {t}"))),
        };
        if pos != buf.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(rec)
    }
}

struct WalInner {
    writer: BufWriter<File>,
    end: u64,
}

/// An append-only write-ahead log.
pub struct Wal {
    path: std::path::PathBuf,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// Open (or create) the log at `path`, positioned for appending.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let end = file.metadata()?.len();
        Ok(Wal {
            path,
            inner: Mutex::new(WalInner {
                writer: BufWriter::new(file),
                end,
            }),
        })
    }

    /// Append a record; returns its LSN. The record is buffered; call
    /// [`Wal::sync`] to force it to stable storage (done at commit).
    pub fn append(&self, rec: &WalRecord) -> StorageResult<Lsn> {
        let mut tspan = trace::span("storage.wal.append");
        let payload = rec.encode();
        if let Some(s) = &mut tspan {
            s.u64("bytes", 8 + payload.len() as u64);
        }
        let mut g = self.inner.lock();
        let lsn = Lsn(g.end);
        g.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        g.writer.write_all(&crc32(&payload).to_le_bytes())?;
        g.writer.write_all(&payload)?;
        g.end += 8 + payload.len() as u64;
        if let Some(s) = &mut tspan {
            s.u64("lsn", lsn.0);
        }
        storage_metrics().wal_appends.inc();
        storage_metrics()
            .wal_appended_bytes
            .add(8 + payload.len() as u64);
        Ok(lsn)
    }

    /// Flush buffered records and fsync.
    pub fn sync(&self) -> StorageResult<()> {
        // Records into ccdb_storage_wal_sync_latency_ns on drop; None when
        // instrumentation is disabled.
        let _latency = SpanTimer::start(&storage_metrics().wal_sync_latency);
        let _tspan = trace::span("storage.wal.sync");
        let mut g = self.inner.lock();
        g.writer.flush()?;
        g.writer.get_ref().sync_data()?;
        storage_metrics().wal_syncs.inc();
        Ok(())
    }

    /// Current end-of-log offset.
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().end)
    }

    /// Read all records from the beginning (flushing buffered writes first).
    /// Scanning stops cleanly at a torn or corrupt tail.
    pub fn records(&self) -> StorageResult<Vec<(Lsn, WalRecord)>> {
        {
            let mut g = self.inner.lock();
            g.writer.flush()?;
        }
        let mut file = File::open(&self.path)?;
        let len = file.metadata()?.len();
        let mut out = Vec::new();
        let mut pos = 0u64;
        let mut header = [0u8; 8];
        while pos + 8 <= len {
            file.seek(SeekFrom::Start(pos))?;
            file.read_exact(&mut header)?;
            let rec_len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
            let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if pos + 8 + rec_len > len {
                break; // torn tail
            }
            let mut payload = vec![0u8; rec_len as usize];
            file.read_exact(&mut payload)?;
            if crc32(&payload) != crc {
                break; // corrupt tail
            }
            match WalRecord::decode(&payload) {
                Ok(rec) => out.push((Lsn(pos), rec)),
                Err(_) => break,
            }
            pos += 8 + rec_len;
        }
        Ok(out)
    }

    /// Truncate the log to zero length (after a checkpoint has made all its
    /// effects durable elsewhere).
    pub fn reset(&self) -> StorageResult<()> {
        let mut g = self.inner.lock();
        g.writer.flush()?;
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        file.sync_data()?;
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&self.path)?;
        g.writer = BufWriter::new(file);
        g.end = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { tx: TxId(7) },
            WalRecord::Put {
                tx: TxId(7),
                key: 42,
                before: None,
                after: b"v1".to_vec(),
            },
            WalRecord::Put {
                tx: TxId(7),
                key: 42,
                before: Some(b"v1".to_vec()),
                after: b"v2".to_vec(),
            },
            WalRecord::Delete {
                tx: TxId(7),
                key: 42,
                before: b"v2".to_vec(),
            },
            WalRecord::Commit { tx: TxId(7) },
            WalRecord::Abort { tx: TxId(8) },
            WalRecord::Checkpoint {
                active: vec![TxId(9), TxId(10)],
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for rec in sample_records() {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn append_and_scan() {
        let f = tempfile::NamedTempFile::new().unwrap();
        let wal = Wal::open(f.path()).unwrap();
        let recs = sample_records();
        let mut lsns = Vec::new();
        for r in &recs {
            lsns.push(wal.append(r).unwrap());
        }
        wal.sync().unwrap();
        let scanned = wal.records().unwrap();
        assert_eq!(scanned.len(), recs.len());
        for ((lsn, rec), (explsn, exprec)) in scanned.iter().zip(lsns.iter().zip(recs.iter())) {
            assert_eq!(lsn, explsn);
            assert_eq!(rec, exprec);
        }
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "LSNs monotone");
    }

    #[test]
    fn survives_reopen() {
        let f = tempfile::NamedTempFile::new().unwrap();
        {
            let wal = Wal::open(f.path()).unwrap();
            wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
            wal.sync().unwrap();
        }
        let wal = Wal::open(f.path()).unwrap();
        wal.append(&WalRecord::Commit { tx: TxId(1) }).unwrap();
        let recs = wal.records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].1, WalRecord::Commit { tx: TxId(1) });
    }

    #[test]
    fn torn_tail_is_ignored() {
        let f = tempfile::NamedTempFile::new().unwrap();
        let wal = Wal::open(f.path()).unwrap();
        wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
        wal.append(&WalRecord::Commit { tx: TxId(1) }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Simulate a torn write: append a half frame.
        use std::io::Write as _;
        let mut file = OpenOptions::new().append(true).open(f.path()).unwrap();
        file.write_all(&[100, 0, 0, 0, 1, 2]).unwrap(); // claims 100 bytes, has none
        drop(file);
        let wal = Wal::open(f.path()).unwrap();
        let recs = wal.records().unwrap();
        assert_eq!(recs.len(), 2, "full prefix readable, torn tail dropped");
    }

    #[test]
    fn corrupt_tail_is_ignored() {
        let f = tempfile::NamedTempFile::new().unwrap();
        let wal = Wal::open(f.path()).unwrap();
        wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
        let lsn2 = wal.append(&WalRecord::Commit { tx: TxId(1) }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip a payload byte of the second record.
        let mut bytes = std::fs::read(f.path()).unwrap();
        let idx = lsn2.0 as usize + 8; // first payload byte
        bytes[idx] ^= 0xFF;
        std::fs::write(f.path(), &bytes).unwrap();
        let wal = Wal::open(f.path()).unwrap();
        let recs = wal.records().unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn reset_empties_log() {
        let f = tempfile::NamedTempFile::new().unwrap();
        let wal = Wal::open(f.path()).unwrap();
        wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.records().unwrap().len(), 0);
        assert_eq!(wal.end_lsn(), Lsn(0));
        // Still usable after reset.
        wal.append(&WalRecord::Begin { tx: TxId(2) }).unwrap();
        assert_eq!(wal.records().unwrap().len(), 1);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        fn record_strategy() -> impl Strategy<Value = WalRecord> {
            let bytes = || proptest::collection::vec(any::<u8>(), 0..64);
            prop_oneof![
                any::<u64>().prop_map(|t| WalRecord::Begin { tx: TxId(t) }),
                (
                    any::<u64>(),
                    any::<u64>(),
                    proptest::option::of(bytes()),
                    bytes()
                )
                    .prop_map(|(t, k, b, a)| WalRecord::Put {
                        tx: TxId(t),
                        key: k,
                        before: b,
                        after: a
                    }),
                (any::<u64>(), any::<u64>(), bytes()).prop_map(|(t, k, b)| WalRecord::Delete {
                    tx: TxId(t),
                    key: k,
                    before: b
                }),
                any::<u64>().prop_map(|t| WalRecord::Commit { tx: TxId(t) }),
                any::<u64>().prop_map(|t| WalRecord::Abort { tx: TxId(t) }),
                proptest::collection::vec(any::<u64>(), 0..8).prop_map(|v| WalRecord::Checkpoint {
                    active: v.into_iter().map(TxId).collect()
                }),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn any_record_roundtrips(rec in record_strategy()) {
                let enc = rec.encode();
                prop_assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
            }

            #[test]
            fn any_sequence_scans_back(recs in proptest::collection::vec(record_strategy(), 0..20)) {
                let f = tempfile::NamedTempFile::new().unwrap();
                let wal = Wal::open(f.path()).unwrap();
                for r in &recs {
                    wal.append(r).unwrap();
                }
                let scanned: Vec<WalRecord> =
                    wal.records().unwrap().into_iter().map(|(_, r)| r).collect();
                prop_assert_eq!(scanned, recs);
            }
        }
    }
}
