//! Slotted pages: the unit of disk transfer and the container for records.
//!
//! A page is a fixed [`PAGE_SIZE`] byte array with the classic slotted
//! layout: a header, a slot directory growing downward from the header, and
//! record payloads growing upward from the end of the page. Deleting and
//! updating records leaves holes that [`Page::compact`] removes; the slot
//! directory gives records stable in-page ids across compaction.
//!
//! A slot can be *redirecting*: when an updated record no longer fits in its
//! page, the heap layer moves the payload elsewhere and stores the forwarding
//! address under the original slot so that [`crate::heap::RecordId`]s stay
//! stable (see `heap.rs`).

use crate::error::{StorageError, StorageResult};

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Byte size of the page header.
const HEADER: usize = 16;
/// Byte size of one slot directory entry.
const SLOT: usize = 4;
/// Slot offset value marking a free (vacated) slot.
const OFFSET_FREE: u16 = 0xFFFF;
/// Bit in the slot length marking a redirect record.
const LEN_REDIRECT: u16 = 0x8000;
/// Mask extracting the payload length from the slot length field.
const LEN_MASK: u16 = 0x7FFF;

/// Identifier of a page within a single file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u32);

impl PageId {
    /// Byte offset of this page within its file.
    pub fn byte_offset(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What a slot directory entry currently holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotKind {
    /// The slot is vacant and may be reused.
    Free,
    /// The slot holds an ordinary record payload.
    Record,
    /// The slot holds a forwarding address written by the heap layer.
    Redirect,
}

/// A fixed-size slotted page.
///
/// Layout:
/// ```text
/// [0..8)   page LSN (u64 LE)   — recovery bookkeeping
/// [8..10)  slot count (u16 LE)
/// [10..12) free-end (u16 LE)   — offset one past the free region
/// [12..16) reserved
/// [16..)   slot directory, 4 bytes per slot: offset u16, len u16
/// [...end) record payloads, allocated from the end downward
/// ```
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            data: self.data.clone(),
        }
    }
}

impl Page {
    /// Create an empty, formatted page.
    pub fn new() -> Self {
        let mut p = Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        };
        p.set_slot_count(0);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// Wrap a raw page image read from disk.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Page {
            data: Box::new(bytes),
        }
    }

    /// The raw page image, e.g. for writing to disk.
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable access to the raw image (used by recovery to apply images).
    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Recovery LSN of the last update applied to this page.
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.data[0..8].try_into().unwrap())
    }

    /// Set the recovery LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.data[0..8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slots in the directory (including free ones).
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes(self.data[8..10].try_into().unwrap())
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[8..10].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes(self.data[10..12].try_into().unwrap())
    }

    fn set_free_end(&mut self, v: u16) {
        self.data[10..12].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_pos(slot: u16) -> usize {
        HEADER + slot as usize * SLOT
    }

    fn slot_raw(&self, slot: u16) -> (u16, u16) {
        let pos = Self::slot_pos(slot);
        let off = u16::from_le_bytes(self.data[pos..pos + 2].try_into().unwrap());
        let len = u16::from_le_bytes(self.data[pos + 2..pos + 4].try_into().unwrap());
        (off, len)
    }

    fn set_slot_raw(&mut self, slot: u16, off: u16, len: u16) {
        let pos = Self::slot_pos(slot);
        self.data[pos..pos + 2].copy_from_slice(&off.to_le_bytes());
        self.data[pos + 2..pos + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Classify a slot. Out-of-range slots are reported as free.
    pub fn slot_kind(&self, slot: u16) -> SlotKind {
        if slot >= self.slot_count() {
            return SlotKind::Free;
        }
        let (off, len) = self.slot_raw(slot);
        if off == OFFSET_FREE {
            SlotKind::Free
        } else if len & LEN_REDIRECT != 0 {
            SlotKind::Redirect
        } else {
            SlotKind::Record
        }
    }

    /// Maximum payload that can ever fit in an empty page with one slot.
    pub fn max_record_len() -> usize {
        PAGE_SIZE - HEADER - SLOT
    }

    /// Contiguous free bytes available right now (between directory and data),
    /// assuming a new slot entry is needed.
    pub fn free_space_for_new(&self) -> usize {
        let dir_end = HEADER + self.slot_count() as usize * SLOT;
        let free_end = self.free_end() as usize;
        free_end.saturating_sub(dir_end).saturating_sub(SLOT)
    }

    /// Free bytes usable when reusing an existing free slot (no new entry).
    pub fn free_space_for_reuse(&self) -> usize {
        let dir_end = HEADER + self.slot_count() as usize * SLOT;
        (self.free_end() as usize).saturating_sub(dir_end)
    }

    /// Total reclaimable bytes (live free + holes from deleted payloads).
    pub fn reclaimable_space(&self) -> usize {
        let live: usize = (0..self.slot_count())
            .filter(|&s| self.slot_kind(s) != SlotKind::Free)
            .map(|s| (self.slot_raw(s).1 & LEN_MASK) as usize)
            .sum();
        let dir_end = HEADER + self.slot_count() as usize * SLOT;
        PAGE_SIZE - dir_end - live
    }

    fn first_free_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&s| self.slot_kind(s) == SlotKind::Free)
    }

    /// Insert a record payload; returns the slot id, or `None` if it does not
    /// fit even after compaction.
    pub fn insert(&mut self, payload: &[u8]) -> Option<u16> {
        self.insert_flagged(payload, false)
    }

    /// Insert a redirect payload (the heap layer's forwarding address).
    pub fn insert_redirect(&mut self, payload: &[u8]) -> Option<u16> {
        self.insert_flagged(payload, true)
    }

    fn insert_flagged(&mut self, payload: &[u8], redirect: bool) -> Option<u16> {
        if payload.len() > Self::max_record_len() || payload.len() > LEN_MASK as usize {
            return None;
        }
        let reuse = self.first_free_slot();
        let avail = if reuse.is_some() {
            self.free_space_for_reuse()
        } else {
            self.free_space_for_new()
        };
        if payload.len() > avail {
            if payload.len() > self.reclaimable_if(reuse.is_none()) {
                return None;
            }
            self.compact();
        }
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        let new_end = self.free_end() as usize - payload.len();
        self.data[new_end..new_end + payload.len()].copy_from_slice(payload);
        self.set_free_end(new_end as u16);
        let len = payload.len() as u16 | if redirect { LEN_REDIRECT } else { 0 };
        self.set_slot_raw(slot, new_end as u16, len);
        Some(slot)
    }

    fn reclaimable_if(&self, needs_new_slot: bool) -> usize {
        self.reclaimable_space()
            .saturating_sub(if needs_new_slot { SLOT } else { 0 })
    }

    /// Read a record (or redirect) payload.
    pub fn get(&self, slot: u16) -> StorageResult<&[u8]> {
        if self.slot_kind(slot) == SlotKind::Free {
            return Err(StorageError::RecordNotFound { page: 0, slot });
        }
        let (off, len) = self.slot_raw(slot);
        let len = (len & LEN_MASK) as usize;
        Ok(&self.data[off as usize..off as usize + len])
    }

    /// Delete a record, vacating the slot for reuse.
    pub fn delete(&mut self, slot: u16) -> StorageResult<()> {
        if self.slot_kind(slot) == SlotKind::Free {
            return Err(StorageError::RecordNotFound { page: 0, slot });
        }
        self.set_slot_raw(slot, OFFSET_FREE, 0);
        // Trim trailing free slots so the directory can shrink.
        let mut n = self.slot_count();
        while n > 0 && self.slot_kind(n - 1) == SlotKind::Free {
            n -= 1;
        }
        self.set_slot_count(n);
        Ok(())
    }

    /// Update a record in place if possible.
    ///
    /// Returns `Ok(true)` when the new payload was stored under the same
    /// slot, `Ok(false)` when it does not fit in this page (caller must move
    /// the record and leave a redirect).
    pub fn update(&mut self, slot: u16, payload: &[u8], redirect: bool) -> StorageResult<bool> {
        if self.slot_kind(slot) == SlotKind::Free {
            return Err(StorageError::RecordNotFound { page: 0, slot });
        }
        let (off, oldlen_raw) = self.slot_raw(slot);
        let oldlen = (oldlen_raw & LEN_MASK) as usize;
        let flag = if redirect { LEN_REDIRECT } else { 0 };
        if payload.len() <= oldlen {
            // Shrinking (or equal): overwrite the tail of the old region.
            let start = off as usize + oldlen - payload.len();
            self.data[start..start + payload.len()].copy_from_slice(payload);
            self.set_slot_raw(slot, start as u16, payload.len() as u16 | flag);
            return Ok(true);
        }
        // Growing: try to place a fresh copy; reclaim the old region first by
        // freeing the slot logically, then compacting if required.
        self.set_slot_raw(slot, OFFSET_FREE, 0);
        if payload.len() > self.free_space_for_reuse() {
            if payload.len() > self.reclaimable_if(false) || payload.len() > LEN_MASK as usize {
                // Restore and report "does not fit".
                self.set_slot_raw(slot, off, oldlen_raw);
                return Ok(false);
            }
            self.compact();
        }
        let new_end = self.free_end() as usize - payload.len();
        self.data[new_end..new_end + payload.len()].copy_from_slice(payload);
        self.set_free_end(new_end as u16);
        self.set_slot_raw(slot, new_end as u16, payload.len() as u16 | flag);
        Ok(true)
    }

    /// Defragment the payload area, preserving slot ids.
    pub fn compact(&mut self) {
        let n = self.slot_count();
        let mut live: Vec<(u16, u16, Vec<u8>)> = Vec::with_capacity(n as usize);
        for s in 0..n {
            if self.slot_kind(s) != SlotKind::Free {
                let (_, len_raw) = self.slot_raw(s);
                live.push((s, len_raw, self.get(s).expect("live slot").to_vec()));
            }
        }
        let mut end = PAGE_SIZE;
        for (s, len_raw, payload) in live {
            end -= payload.len();
            self.data[end..end + payload.len()].copy_from_slice(&payload);
            self.set_slot_raw(s, end as u16, len_raw);
        }
        self.set_free_end(end as u16);
    }

    /// Iterate over live (non-free) slots.
    pub fn live_slots(&self) -> impl Iterator<Item = u16> + '_ {
        (0..self.slot_count()).filter(move |&s| self.slot_kind(s) != SlotKind::Free)
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("lsn", &self.lsn())
            .field("slots", &self.slot_count())
            .field("free_end", &self.free_end())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_roundtrip() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.slot_kind(a), SlotKind::Record);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = Page::new();
        let a = p.insert(b"abc").unwrap();
        let _b = p.insert(b"def").unwrap();
        p.delete(a).unwrap();
        assert_eq!(p.slot_kind(a), SlotKind::Free);
        assert!(p.get(a).is_err());
        let c = p.insert(b"ghi").unwrap();
        assert_eq!(c, a, "freed slot should be reused");
        assert_eq!(p.get(c).unwrap(), b"ghi");
    }

    #[test]
    fn delete_trailing_slot_shrinks_directory() {
        let mut p = Page::new();
        let a = p.insert(b"x").unwrap();
        let b = p.insert(b"y").unwrap();
        p.delete(b).unwrap();
        assert_eq!(p.slot_count(), 1);
        p.delete(a).unwrap();
        assert_eq!(p.slot_count(), 0);
    }

    #[test]
    fn update_shrink_and_grow_in_place() {
        let mut p = Page::new();
        let a = p.insert(b"long payload here").unwrap();
        assert!(p.update(a, b"tiny", false).unwrap());
        assert_eq!(p.get(a).unwrap(), b"tiny");
        assert!(p
            .update(a, b"now much much longer than before", false)
            .unwrap());
        assert_eq!(
            p.get(a).unwrap(),
            b"now much much longer than before".as_slice()
        );
    }

    #[test]
    fn update_that_cannot_fit_reports_false_and_keeps_old() {
        let mut p = Page::new();
        let filler = vec![7u8; 4000];
        let a = p.insert(&filler).unwrap();
        let _b = p.insert(&filler).unwrap();
        let huge = vec![9u8; 5000];
        assert!(!p.update(a, &huge, false).unwrap());
        assert_eq!(
            p.get(a).unwrap(),
            filler.as_slice(),
            "old value must survive"
        );
    }

    #[test]
    fn fills_up_and_rejects_when_full() {
        let mut p = Page::new();
        let rec = vec![1u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        assert!(n >= 70, "should fit many 100-byte records, got {n}");
        assert!(p.insert(&rec).is_none());
        // But a small record may still fit.
        assert!(p.free_space_for_new() < 104 + SLOT);
    }

    #[test]
    fn compaction_reclaims_holes() {
        let mut p = Page::new();
        let rec = vec![2u8; 1000];
        let mut slots = Vec::new();
        while let Some(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record: holes are scattered.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(*s).unwrap();
            }
        }
        // A 2000-byte record only fits after compaction.
        let big = vec![3u8; 2000];
        let s = p.insert(&big).expect("compaction should make room");
        assert_eq!(p.get(s).unwrap(), big.as_slice());
        // Survivors unaffected.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(p.get(*s).unwrap(), rec.as_slice());
            }
        }
    }

    #[test]
    fn redirect_slots_are_flagged() {
        let mut p = Page::new();
        let s = p.insert_redirect(&[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(p.slot_kind(s), SlotKind::Redirect);
        assert_eq!(p.get(s).unwrap(), &[1, 2, 3, 4, 5, 6]);
        // Updating to a plain record clears the flag.
        assert!(p.update(s, b"plain", false).unwrap());
        assert_eq!(p.slot_kind(s), SlotKind::Record);
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut p = Page::new();
        let max = Page::max_record_len();
        let rec = vec![0xAB; max];
        let s = p
            .insert(&rec)
            .expect("max-size record must fit in empty page");
        assert_eq!(p.get(s).unwrap().len(), max);
        assert!(p.insert(b"x").is_none());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0; Page::max_record_len() + 1]).is_none());
    }

    #[test]
    fn lsn_roundtrip_through_bytes() {
        let mut p = Page::new();
        p.set_lsn(0xDEAD_BEEF_1234);
        let s = p.insert(b"payload").unwrap();
        let img = *p.as_bytes();
        let q = Page::from_bytes(img);
        assert_eq!(q.lsn(), 0xDEAD_BEEF_1234);
        assert_eq!(q.get(s).unwrap(), b"payload");
    }

    #[test]
    fn empty_page_has_expected_capacity() {
        let p = Page::new();
        assert_eq!(p.free_space_for_new(), PAGE_SIZE - HEADER - SLOT);
        assert_eq!(p.reclaimable_space(), PAGE_SIZE - HEADER);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(Vec<u8>),
            Delete(usize),
            Update(usize, Vec<u8>),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                3 => proptest::collection::vec(any::<u8>(), 0..600).prop_map(Op::Insert),
                1 => any::<usize>().prop_map(Op::Delete),
                2 => (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..600))
                    .prop_map(|(i, v)| Op::Update(i, v)),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn page_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
                let mut page = Page::new();
                let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
                for op in ops {
                    match op {
                        Op::Insert(data) => {
                            if let Some(slot) = page.insert(&data) {
                                prop_assert!(!model.contains_key(&slot));
                                model.insert(slot, data);
                            }
                        }
                        Op::Delete(i) => {
                            let keys: Vec<u16> = model.keys().copied().collect();
                            if keys.is_empty() { continue; }
                            let slot = keys[i % keys.len()];
                            page.delete(slot).unwrap();
                            model.remove(&slot);
                        }
                        Op::Update(i, data) => {
                            let keys: Vec<u16> = model.keys().copied().collect();
                            if keys.is_empty() { continue; }
                            let slot = keys[i % keys.len()];
                            if page.update(slot, &data, false).unwrap() {
                                model.insert(slot, data);
                            }
                        }
                    }
                    // Invariant: every model entry readable and equal.
                    for (slot, data) in &model {
                        prop_assert_eq!(page.get(*slot).unwrap(), data.as_slice());
                    }
                }
            }
        }
    }
}
