//! Buffer pool: caches page frames in memory with pin counts and LRU
//! eviction, writing dirty frames back to the disk manager on eviction or
//! flush.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ccdb_obs::{event, trace, Counter, Event, FieldValue};
use parking_lot::{Mutex, RwLock};

use crate::disk::DiskManager;
use crate::error::{StorageError, StorageResult};
use crate::metrics::storage_metrics;
use crate::page::{Page, PageId};

struct Frame {
    page: RwLock<Page>,
    pins: AtomicUsize,
    dirty: AtomicBool,
    last_used: AtomicU64,
}

/// A pin-counted page cache in front of a [`DiskManager`].
///
/// Access is closure-scoped: [`BufferPool::with_page`] and
/// [`BufferPool::with_page_mut`] pin the frame for the duration of the
/// closure, guaranteeing it cannot be evicted while in use.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    capacity: usize,
    frames: Mutex<HashMap<PageId, Arc<Frame>>>,
    tick: AtomicU64,
    // Per-pool counters (accessor methods below). Process-wide aggregates
    // are dual-written to the ccdb_storage_buffer_* registry metrics.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    flushes: Counter,
}

impl BufferPool {
    /// Create a pool caching at most `capacity` pages.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            frames: Mutex::new(HashMap::with_capacity(capacity)),
            tick: AtomicU64::new(0),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            flushes: Counter::new(),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Cache hits so far (for experiments).
    pub fn hit_count(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far (for experiments).
    pub fn miss_count(&self) -> u64 {
        self.misses.get()
    }

    /// Frames evicted so far (whether or not they were dirty).
    pub fn eviction_count(&self) -> u64 {
        self.evictions.get()
    }

    /// Dirty pages written back by [`BufferPool::flush_page`] /
    /// [`BufferPool::flush_all`] so far (eviction write-backs count as
    /// evictions, not flushes).
    pub fn flush_count(&self) -> u64 {
        self.flushes.get()
    }

    /// Allocate a fresh page on disk and return its id.
    pub fn allocate(&self) -> StorageResult<PageId> {
        self.disk.allocate()
    }

    fn touch(&self, frame: &Frame) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        frame.last_used.store(t, Ordering::Relaxed);
    }

    /// Fetch (and pin) the frame for `id`, loading from disk on a miss and
    /// evicting an unpinned LRU frame if at capacity.
    fn pin(&self, id: PageId) -> StorageResult<Arc<Frame>> {
        let mut tspan = trace::span("storage.buffer.pin");
        if let Some(s) = &mut tspan {
            s.u64("page", u64::from(id.0));
        }
        let mut map = self.frames.lock();
        if let Some(frame) = map.get(&id) {
            self.hits.inc();
            storage_metrics().buffer_hits.inc();
            frame.pins.fetch_add(1, Ordering::Relaxed);
            self.touch(frame);
            if let Some(s) = &mut tspan {
                s.str("cache", "hit");
            }
            return Ok(Arc::clone(frame));
        }
        self.misses.inc();
        storage_metrics().buffer_misses.inc();
        if let Some(s) = &mut tspan {
            s.str("cache", "miss");
        }
        if map.len() >= self.capacity {
            self.evict_one(&mut map)?;
        }
        let page = self.disk.read(id)?;
        let frame = Arc::new(Frame {
            page: RwLock::new(page),
            pins: AtomicUsize::new(1),
            dirty: AtomicBool::new(false),
            last_used: AtomicU64::new(0),
        });
        self.touch(&frame);
        map.insert(id, Arc::clone(&frame));
        Ok(frame)
    }

    fn evict_one(&self, map: &mut HashMap<PageId, Arc<Frame>>) -> StorageResult<()> {
        let mut tspan = trace::span("storage.buffer.evict");
        let victim = map
            .iter()
            .filter(|(_, f)| f.pins.load(Ordering::Relaxed) == 0)
            .min_by_key(|(_, f)| f.last_used.load(Ordering::Relaxed))
            .map(|(id, _)| *id);
        let Some(vid) = victim else {
            return Err(StorageError::PoolExhausted);
        };
        let frame = Arc::clone(map.get(&vid).expect("victim present"));
        let was_dirty = frame.dirty.load(Ordering::Relaxed);
        if was_dirty {
            // Write back *before* dropping the frame — on failure the
            // victim stays resident and dirty instead of losing the page.
            let page = frame.page.read();
            self.disk.write(vid, &page)?;
            frame.dirty.store(false, Ordering::Relaxed);
            storage_metrics().buffer_dirty_pages.dec();
        }
        map.remove(&vid);
        self.evictions.inc();
        storage_metrics().buffer_evictions.inc();
        if let Some(s) = &mut tspan {
            s.u64("page", u64::from(vid.0));
            s.str("dirty", if was_dirty { "yes" } else { "no" });
        }
        event::emit(|| {
            Event::now(
                "storage.buffer.evict",
                vec![
                    ("page", FieldValue::U64(u64::from(vid.0))),
                    ("dirty", FieldValue::U64(u64::from(was_dirty))),
                ],
            )
        });
        Ok(())
    }

    /// Run `f` with shared access to the page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let frame = self.pin(id)?;
        let r = {
            let page = frame.page.read();
            f(&page)
        };
        frame.pins.fetch_sub(1, Ordering::Relaxed);
        Ok(r)
    }

    /// Run `f` with exclusive access to the page; marks the frame dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> StorageResult<R> {
        let frame = self.pin(id)?;
        let r = {
            let mut page = frame.page.write();
            f(&mut page)
        };
        if !frame.dirty.swap(true, Ordering::Relaxed) {
            storage_metrics().buffer_dirty_pages.inc();
        }
        frame.pins.fetch_sub(1, Ordering::Relaxed);
        Ok(r)
    }

    /// Write a single dirty page back (no eviction). On a failed disk
    /// write the frame stays marked dirty, so a later flush retries it.
    pub fn flush_page(&self, id: PageId) -> StorageResult<()> {
        let map = self.frames.lock();
        if let Some(frame) = map.get(&id) {
            if frame.dirty.swap(false, Ordering::Relaxed) {
                let page = frame.page.read();
                if let Err(e) = self.disk.write(id, &page) {
                    frame.dirty.store(true, Ordering::Relaxed);
                    return Err(e);
                }
                self.flushes.inc();
                storage_metrics().buffer_flushes.inc();
                storage_metrics().buffer_dirty_pages.dec();
            }
        }
        Ok(())
    }

    /// Write every dirty page back and sync the file. On a failed disk
    /// write the failing frame stays marked dirty and the flush stops.
    pub fn flush_all(&self) -> StorageResult<()> {
        let map = self.frames.lock();
        for (id, frame) in map.iter() {
            if frame.dirty.swap(false, Ordering::Relaxed) {
                let page = frame.page.read();
                if let Err(e) = self.disk.write(*id, &page) {
                    frame.dirty.store(true, Ordering::Relaxed);
                    return Err(e);
                }
                self.flushes.inc();
                storage_metrics().buffer_flushes.inc();
                storage_metrics().buffer_dirty_pages.dec();
            }
        }
        drop(map);
        self.disk.sync()
    }

    /// Ids of pages currently dirty in the pool (for fuzzy checkpoints).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let map = self.frames.lock();
        map.iter()
            .filter(|(_, f)| f.dirty.load(Ordering::Relaxed))
            .map(|(id, _)| *id)
            .collect()
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Keep the process-wide dirty-page gauge balanced when a pool is
        // dropped with unflushed frames.
        let map = self.frames.get_mut();
        let dirty = map
            .values()
            .filter(|f| f.dirty.load(Ordering::Relaxed))
            .count();
        if dirty > 0 {
            storage_metrics().buffer_dirty_pages.add(-(dirty as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> (tempfile::NamedTempFile, BufferPool) {
        let f = tempfile::NamedTempFile::new().unwrap();
        let dm = Arc::new(DiskManager::open(f.path()).unwrap());
        (f, BufferPool::new(dm, capacity))
    }

    #[test]
    fn read_through_and_write_back() {
        let (_f, pool) = pool(4);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"cached").unwrap();
        })
        .unwrap();
        let got = pool.with_page(id, |p| p.get(0).unwrap().to_vec()).unwrap();
        assert_eq!(got, b"cached");
        // Not yet on disk (dirty in pool)...
        let on_disk = pool.disk().read(id).unwrap();
        assert_eq!(on_disk.slot_count(), 0);
        // ...until flushed.
        pool.flush_all().unwrap();
        let on_disk = pool.disk().read(id).unwrap();
        assert_eq!(on_disk.get(0).unwrap(), b"cached");
    }

    #[test]
    fn eviction_writes_dirty_victims() {
        let (_f, pool) = pool(2);
        let ids: Vec<PageId> = (0..4).map(|_| pool.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| {
                p.insert(format!("page-{i}").as_bytes()).unwrap();
            })
            .unwrap();
        }
        // First two pages were evicted to make room; their data must be on disk.
        let p0 = pool.disk().read(ids[0]).unwrap();
        assert_eq!(p0.get(0).unwrap(), b"page-0");
        // And refetching goes through the pool transparently.
        let got = pool
            .with_page(ids[1], |p| p.get(0).unwrap().to_vec())
            .unwrap();
        assert_eq!(got, b"page-1");
    }

    #[test]
    fn lru_prefers_coldest_frame() {
        let (_f, pool) = pool(2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        pool.with_page(b, |_| ()).unwrap();
        pool.with_page(a, |_| ()).unwrap(); // a is now hotter than b
        let misses_before = pool.miss_count();
        pool.with_page(c, |_| ()).unwrap(); // evicts b
        pool.with_page(a, |_| ()).unwrap(); // hit
        assert_eq!(pool.miss_count(), misses_before + 1);
        pool.with_page(b, |_| ()).unwrap(); // miss again
        assert_eq!(pool.miss_count(), misses_before + 2);
    }

    #[test]
    fn hit_and_miss_counters() {
        let (_f, pool) = pool(4);
        let id = pool.allocate().unwrap();
        pool.with_page(id, |_| ()).unwrap();
        pool.with_page(id, |_| ()).unwrap();
        assert_eq!(pool.miss_count(), 1);
        assert_eq!(pool.hit_count(), 1);
    }

    #[test]
    fn eviction_and_flush_counters() {
        let (_f, pool) = pool(2);
        let ids: Vec<PageId> = (0..3).map(|_| pool.allocate().unwrap()).collect();
        for id in &ids {
            pool.with_page_mut(*id, |p| {
                p.insert(b"x").unwrap();
            })
            .unwrap();
        }
        // Capacity 2, three pages touched: at least one eviction.
        assert!(pool.eviction_count() >= 1);
        assert_eq!(pool.flush_count(), 0, "eviction write-back is not a flush");
        let dirty_before = pool.dirty_pages().len();
        assert!(dirty_before > 0);
        pool.flush_all().unwrap();
        assert_eq!(pool.flush_count(), dirty_before as u64);
        assert!(pool.dirty_pages().is_empty());
        // Flushing clean pages is a no-op.
        pool.flush_all().unwrap();
        assert_eq!(pool.flush_count(), dirty_before as u64);
    }

    #[test]
    fn flush_page_counts_only_dirty_pages() {
        let (_f, pool) = pool(4);
        let id = pool.allocate().unwrap();
        pool.flush_page(id).unwrap(); // never loaded: no-op
        assert_eq!(pool.flush_count(), 0);
        pool.with_page(id, |_| ()).unwrap();
        pool.flush_page(id).unwrap(); // resident but clean: no-op
        assert_eq!(pool.flush_count(), 0);
        pool.with_page_mut(id, |p| {
            p.insert(b"d").unwrap();
        })
        .unwrap();
        pool.flush_page(id).unwrap();
        assert_eq!(pool.flush_count(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (_f, pool) = pool(8);
        let pool = Arc::new(pool);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(&0u64.to_le_bytes()).unwrap();
        })
        .unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        pool.with_page_mut(id, |p| {
                            let cur = u64::from_le_bytes(p.get(0).unwrap().try_into().unwrap());
                            p.update(0, &(cur + 1).to_le_bytes(), false).unwrap();
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = pool
            .with_page(id, |p| {
                u64::from_le_bytes(p.get(0).unwrap().try_into().unwrap())
            })
            .unwrap();
        assert_eq!(v, 400);
    }
}
