#![warn(missing_docs)]

//! # ccdb-storage
//!
//! The storage substrate for the ccdb object database: a small but complete
//! database kernel layer providing
//!
//! - fixed-size **slotted pages** ([`page`]) with record-level insert, delete,
//!   update, in-page compaction and redirect (forwarding) slots,
//! - a file-backed **disk manager** ([`disk`]) and a pin-counted **buffer
//!   pool** with LRU eviction ([`buffer`]),
//! - a **write-ahead log** with physical before/after images, checksums and
//!   checkpoints ([`wal`]), plus ARIES-style **recovery** ([`recovery`]),
//! - **heap files** with stable record ids ([`heap`]), and
//! - an on-disk **B+-tree** index mapping surrogates to record ids
//!   ([`btree`]).
//!
//! The object model in `ccdb-core` persists objects through [`heap::HeapFile`]
//! and locates them via [`btree::BTree`]; transactional durability is obtained
//! by pairing updates with [`wal::Wal`] records.
//!
//! The layer is deliberately free of any knowledge of the object model: it
//! stores opaque byte records. This mirrors the paper's call for "a database
//! kernel supporting the basic mechanisms of the object model" (section 1).

pub mod btree;
pub mod buffer;
pub mod checksum;
pub mod disk;
pub mod error;
pub mod heap;
pub mod kv;
pub(crate) mod metrics;
pub mod page;
pub mod recovery;
pub mod wal;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use disk::DiskManager;
pub use error::{StorageError, StorageResult};
pub use heap::{HeapFile, RecordId};
pub use kv::{DurableKv, KvStore, KvTx};
pub use page::{Page, PageId, PAGE_SIZE};
pub use recovery::recover;
pub use wal::{Lsn, TxId, Wal, WalRecord};
