//! Error type for the storage layer.

use std::fmt;
use std::io;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A page id was outside the allocated file.
    PageOutOfBounds {
        /// The requested page.
        page: u32,
        /// Pages currently in the file.
        npages: u64,
    },
    /// A record id referred to a missing or deleted slot.
    RecordNotFound {
        /// Page of the failed lookup.
        page: u32,
        /// Slot of the failed lookup.
        slot: u16,
    },
    /// A record was too large to ever fit in a page.
    RecordTooLarge {
        /// Size of the offending record.
        len: usize,
        /// Maximum record size.
        max: usize,
    },
    /// The buffer pool had no evictable frame (all pages pinned).
    PoolExhausted,
    /// A stored checksum did not match the recomputed one.
    ChecksumMismatch {
        /// Checksum found in the stored data.
        expected: u32,
        /// Checksum recomputed from the content.
        actual: u32,
    },
    /// The WAL or a page contained bytes that could not be decoded.
    Corrupt(String),
    /// A B+-tree key was not present.
    KeyNotFound(u64),
    /// A B+-tree key was inserted twice.
    DuplicateKey(u64),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageOutOfBounds { page, npages } => {
                write!(f, "page {page} out of bounds (file has {npages} pages)")
            }
            StorageError::RecordNotFound { page, slot } => {
                write!(f, "record not found at page {page} slot {slot}")
            }
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            StorageError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::KeyNotFound(k) => write!(f, "key {k} not found"),
            StorageError::DuplicateKey(k) => write!(f, "key {k} already present"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::PageOutOfBounds { page: 9, npages: 4 };
        assert!(e.to_string().contains("page 9"));
        let e = StorageError::RecordNotFound { page: 1, slot: 2 };
        assert!(e.to_string().contains("slot 2"));
        let e = StorageError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn io_error_converts() {
        let io = io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
