//! Durable key-value store: the composition of heap file, B+-tree index and
//! WAL that the object layer persists into.
//!
//! [`KvStore`] is the non-transactional map (`u64` key → bytes) built from a
//! [`HeapFile`] and a [`BTree`]. [`DurableKv`] adds write-ahead logging with
//! transactions, checkpoints and crash recovery; `ccdb-core` stores one
//! serialized object per surrogate key through this interface.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapFile, RecordId};
use crate::recovery;
use crate::wal::{TxId, Wal, WalRecord};

/// A persistent map from `u64` keys to byte strings (no logging).
///
/// Values of any size are supported: values beyond what fits in one heap
/// record are split into overflow chunks (each its own heap record); the
/// primary record then stores the chunk directory instead of the payload.
pub struct KvStore {
    heap: HeapFile,
    index: BTree,
}

/// Record-format tags.
const TAG_INLINE: u8 = 0;
const TAG_CHUNKED: u8 = 1;

/// Payload bytes per chunk/inline record (leaves headroom for the tag and
/// the page's slot bookkeeping).
const CHUNK: usize = 7000;

impl KvStore {
    /// Build over existing heap and index structures.
    pub fn new(heap: HeapFile, index: BTree) -> Self {
        KvStore { heap, index }
    }

    fn read_value(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        let rec = self.heap.get(rid)?;
        match rec.split_first() {
            Some((&TAG_INLINE, payload)) => Ok(payload.to_vec()),
            Some((&TAG_CHUNKED, dir)) => {
                if dir.len() % 8 != 0 {
                    return Err(StorageError::Corrupt("bad chunk directory".into()));
                }
                let mut out = Vec::new();
                for packed in dir.chunks_exact(8) {
                    let chunk_rid =
                        RecordId::from_u64(u64::from_le_bytes(packed.try_into().unwrap()));
                    out.extend_from_slice(&self.heap.get(chunk_rid)?);
                }
                Ok(out)
            }
            _ => Err(StorageError::Corrupt("empty kv record".into())),
        }
    }

    /// Delete the overflow chunks (if any) behind a primary record.
    fn free_chunks(&self, rid: RecordId) -> StorageResult<()> {
        let rec = self.heap.get(rid)?;
        if let Some((&TAG_CHUNKED, dir)) = rec.split_first() {
            for packed in dir.chunks_exact(8) {
                let chunk_rid = RecordId::from_u64(u64::from_le_bytes(packed.try_into().unwrap()));
                self.heap.delete(chunk_rid)?;
            }
        }
        Ok(())
    }

    /// Build the primary record bytes for `value`, inserting overflow
    /// chunks as needed.
    fn encode_value(&self, value: &[u8]) -> StorageResult<Vec<u8>> {
        if value.len() <= CHUNK {
            let mut rec = Vec::with_capacity(value.len() + 1);
            rec.push(TAG_INLINE);
            rec.extend_from_slice(value);
            return Ok(rec);
        }
        let mut dir = Vec::with_capacity(1 + (value.len() / CHUNK + 1) * 8);
        dir.push(TAG_CHUNKED);
        for chunk in value.chunks(CHUNK) {
            let rid = self.heap.insert(chunk)?;
            dir.extend_from_slice(&rid.to_u64().to_le_bytes());
        }
        Ok(dir)
    }

    /// Read a value.
    pub fn get(&self, key: u64) -> StorageResult<Option<Vec<u8>>> {
        match self.index.get(key)? {
            None => Ok(None),
            Some(packed) => Ok(Some(self.read_value(RecordId::from_u64(packed))?)),
        }
    }

    /// Insert or overwrite a value; returns the previous value if any.
    pub fn put(&self, key: u64, value: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        match self.index.get(key)? {
            Some(packed) => {
                let rid = RecordId::from_u64(packed);
                let old = self.read_value(rid)?;
                self.free_chunks(rid)?;
                let rec = self.encode_value(value)?;
                self.heap.update(rid, &rec)?;
                Ok(Some(old))
            }
            None => {
                let rec = self.encode_value(value)?;
                let rid = self.heap.insert(&rec)?;
                self.index.insert(key, rid.to_u64())?;
                Ok(None)
            }
        }
    }

    /// Delete a key; returns the previous value if it existed.
    pub fn delete(&self, key: u64) -> StorageResult<Option<Vec<u8>>> {
        match self.index.get(key)? {
            None => Ok(None),
            Some(packed) => {
                let rid = RecordId::from_u64(packed);
                let old = self.read_value(rid)?;
                self.free_chunks(rid)?;
                self.heap.delete(rid)?;
                self.index.delete(key)?;
                Ok(Some(old))
            }
        }
    }

    /// All `(key, value)` pairs in key order.
    pub fn scan(&self) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        for (key, packed) in self.index.scan_all()? {
            out.push((key, self.read_value(RecordId::from_u64(packed))?));
        }
        Ok(out)
    }

    /// Number of keys present.
    pub fn len(&self) -> StorageResult<usize> {
        self.index.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> StorageResult<bool> {
        self.index.is_empty()
    }

    /// Flush all dirty pages of heap and index to disk.
    pub fn flush(&self) -> StorageResult<()> {
        self.heap.pool().flush_all()?;
        self.index.pool().flush_all()
    }
}

/// A write-ahead-logged, transactional [`KvStore`] living in a directory:
/// `heap.db`, `index.db`, `wal.log` plus checkpoint snapshots
/// (`heap.db.ckpt`, `index.db.ckpt`).
///
/// Crash-consistency scheme: the WAL is *logical* (key-level), so the heap
/// and index page files are only guaranteed structurally consistent at
/// checkpoint boundaries. [`DurableKv::checkpoint`] flushes all pages and
/// snapshots the two data files; recovery at open time restores the last
/// snapshot and replays the log tail ([`crate::recovery`]). A non-empty WAL
/// at open time is the crash indicator.
pub struct DurableKv {
    dir: std::path::PathBuf,
    kv: KvStore,
    wal: Wal,
    heap_pool: Arc<BufferPool>,
    index_pool: Arc<BufferPool>,
    next_tx: Mutex<u64>,
    active: Mutex<Vec<TxId>>,
}

/// Handle to an open transaction on a [`DurableKv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvTx(pub TxId);

impl DurableKv {
    /// Open the store in `dir` (created if needed), running crash recovery
    /// against any left-over WAL.
    pub fn open(dir: impl AsRef<Path>) -> StorageResult<Self> {
        Self::open_with_pool_size(dir, 256)
    }

    /// Open with an explicit buffer-pool size per file (pages).
    pub fn open_with_pool_size(dir: impl AsRef<Path>, pool_pages: usize) -> StorageResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let heap_path = dir.join("heap.db");
        let index_path = dir.join("index.db");
        let wal_path = dir.join("wal.log");

        // A non-empty WAL means the last shutdown was not a clean checkpoint:
        // the page files may be torn. Restore the last checkpoint snapshot
        // (or start from empty files if none exists) before opening them.
        let wal_len = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        let crashed = wal_len > 0;
        if crashed {
            for (live, ckpt) in [
                (&heap_path, dir.join("heap.db.ckpt")),
                (&index_path, dir.join("index.db.ckpt")),
            ] {
                if ckpt.exists() {
                    std::fs::copy(&ckpt, live)?;
                } else if live.exists() {
                    std::fs::OpenOptions::new()
                        .write(true)
                        .open(live)?
                        .set_len(0)?;
                }
            }
        }

        let heap_disk = Arc::new(DiskManager::open(&heap_path)?);
        let index_disk = Arc::new(DiskManager::open(&index_path)?);
        let heap_pool = Arc::new(BufferPool::new(heap_disk, pool_pages));
        let index_pool = Arc::new(BufferPool::new(index_disk, pool_pages));
        let heap = HeapFile::open(Arc::clone(&heap_pool))?;
        let index = BTree::open(Arc::clone(&index_pool))?;
        let kv = KvStore::new(heap, index);
        let wal = Wal::open(&wal_path)?;
        let store = DurableKv {
            dir,
            kv,
            wal,
            heap_pool,
            index_pool,
            next_tx: Mutex::new(1),
            active: Mutex::new(Vec::new()),
        };
        let stats = recovery::recover(&store.wal, &store.kv)?;
        // Continue tx numbering above anything seen in the log.
        *store.next_tx.lock() = stats.max_tx + 1;
        if crashed {
            // Make the recovered state the new checkpoint and empty the log.
            store.checkpoint()?;
        } else {
            // Fresh or cleanly-checkpointed store: persist the (possibly just
            // created) page files so an immediate crash finds them intact.
            store.flush_data()?;
        }
        Ok(store)
    }

    fn flush_data(&self) -> StorageResult<()> {
        self.heap_pool.flush_all()?;
        self.index_pool.flush_all()
    }

    fn snapshot_data(&self) -> StorageResult<()> {
        std::fs::copy(self.dir.join("heap.db"), self.dir.join("heap.db.ckpt"))?;
        std::fs::copy(self.dir.join("index.db"), self.dir.join("index.db.ckpt"))?;
        Ok(())
    }

    /// Begin a transaction.
    pub fn begin(&self) -> StorageResult<KvTx> {
        let mut next = self.next_tx.lock();
        let tx = TxId(*next);
        *next += 1;
        self.wal.append(&WalRecord::Begin { tx })?;
        self.active.lock().push(tx);
        Ok(KvTx(tx))
    }

    /// Read a key (reads are not logged).
    pub fn get(&self, key: u64) -> StorageResult<Option<Vec<u8>>> {
        self.kv.get(key)
    }

    /// Transactional write.
    pub fn put(&self, tx: KvTx, key: u64, value: &[u8]) -> StorageResult<()> {
        let before = self.kv.put(key, value)?;
        self.wal.append(&WalRecord::Put {
            tx: tx.0,
            key,
            before,
            after: value.to_vec(),
        })?;
        Ok(())
    }

    /// Transactional delete; deleting an absent key is a no-op.
    pub fn delete(&self, tx: KvTx, key: u64) -> StorageResult<()> {
        if let Some(before) = self.kv.delete(key)? {
            self.wal.append(&WalRecord::Delete {
                tx: tx.0,
                key,
                before,
            })?;
        }
        Ok(())
    }

    /// Commit: force the log, then acknowledge.
    pub fn commit(&self, tx: KvTx) -> StorageResult<()> {
        self.wal.append(&WalRecord::Commit { tx: tx.0 })?;
        self.wal.sync()?;
        self.active.lock().retain(|t| *t != tx.0);
        Ok(())
    }

    /// Abort: roll back this transaction's effects from its own log records,
    /// newest first, logging each rollback as a *compensation* record (so
    /// redo-after-crash repeats the rollback too), then log the abort.
    pub fn abort(&self, tx: KvTx) -> StorageResult<()> {
        let records = self.wal.records()?;
        for (_, rec) in records.iter().rev() {
            if rec.tx() != Some(tx.0) {
                continue;
            }
            match rec {
                WalRecord::Put {
                    key, before, after, ..
                } => match before {
                    Some(b) => {
                        self.kv.put(*key, b)?;
                        self.wal.append(&WalRecord::Put {
                            tx: tx.0,
                            key: *key,
                            before: Some(after.clone()),
                            after: b.clone(),
                        })?;
                    }
                    None => {
                        self.kv.delete(*key)?;
                        self.wal.append(&WalRecord::Delete {
                            tx: tx.0,
                            key: *key,
                            before: after.clone(),
                        })?;
                    }
                },
                WalRecord::Delete { key, before, .. } => {
                    self.kv.put(*key, before)?;
                    self.wal.append(&WalRecord::Put {
                        tx: tx.0,
                        key: *key,
                        before: None,
                        after: before.clone(),
                    })?;
                }
                _ => {}
            }
        }
        self.wal.append(&WalRecord::Abort { tx: tx.0 })?;
        self.wal.sync()?;
        self.active.lock().retain(|t| *t != tx.0);
        Ok(())
    }

    /// Checkpoint: flush all data pages, snapshot the data files, then (if no
    /// transaction is active) truncate the log; otherwise write a fuzzy
    /// checkpoint record.
    ///
    /// The snapshot is what recovery restores after a crash, so the data
    /// files only ever need to be structurally consistent here.
    pub fn checkpoint(&self) -> StorageResult<()> {
        self.wal.sync()?;
        self.flush_data()?;
        let active = self.active.lock().clone();
        if active.is_empty() {
            self.snapshot_data()?;
            self.wal.reset()?;
        } else {
            self.snapshot_data()?;
            self.wal.append(&WalRecord::Checkpoint { active })?;
            self.wal.sync()?;
        }
        Ok(())
    }

    /// Non-transactional scan of all pairs.
    pub fn scan(&self) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        self.kv.scan()
    }

    /// Compact the store: rewrite heap and index into fresh files, dropping
    /// dead records (lazy B+-tree deletions, freed overflow chunks, page
    /// fragmentation). Requires no active transactions; finishes with a
    /// checkpoint. Returns `(bytes_before, bytes_after)` of the data files.
    pub fn compact(&mut self) -> StorageResult<(u64, u64)> {
        assert!(
            self.active.lock().is_empty(),
            "compact requires quiescence (no active transactions)"
        );
        let file_bytes = |dir: &std::path::Path| -> u64 {
            ["heap.db", "index.db"]
                .iter()
                .filter_map(|f| std::fs::metadata(dir.join(f)).ok())
                .map(|m| m.len())
                .sum()
        };
        self.wal.sync()?;
        self.flush_data()?;
        let before = file_bytes(&self.dir);
        let rows = self.kv.scan()?;

        // Build fresh files next to the live ones.
        let new_heap_path = self.dir.join("heap.db.new");
        let new_index_path = self.dir.join("index.db.new");
        let _ = std::fs::remove_file(&new_heap_path);
        let _ = std::fs::remove_file(&new_index_path);
        {
            let heap_disk = Arc::new(DiskManager::open(&new_heap_path)?);
            let index_disk = Arc::new(DiskManager::open(&new_index_path)?);
            let heap_pool = Arc::new(BufferPool::new(heap_disk, 256));
            let index_pool = Arc::new(BufferPool::new(index_disk, 256));
            let heap = HeapFile::open(Arc::clone(&heap_pool))?;
            let index = BTree::open(Arc::clone(&index_pool))?;
            let fresh = KvStore::new(heap, index);
            for (k, v) in &rows {
                fresh.put(*k, v)?;
            }
            fresh.flush()?;
        }
        // Swap in the compacted files and reopen the working structures.
        std::fs::rename(&new_heap_path, self.dir.join("heap.db"))?;
        std::fs::rename(&new_index_path, self.dir.join("index.db"))?;
        let heap_disk = Arc::new(DiskManager::open(self.dir.join("heap.db"))?);
        let index_disk = Arc::new(DiskManager::open(self.dir.join("index.db"))?);
        self.heap_pool = Arc::new(BufferPool::new(heap_disk, 256));
        self.index_pool = Arc::new(BufferPool::new(index_disk, 256));
        self.kv = KvStore::new(
            HeapFile::open(Arc::clone(&self.heap_pool))?,
            BTree::open(Arc::clone(&self.index_pool))?,
        );
        self.checkpoint()?;
        Ok((before, file_bytes(&self.dir)))
    }

    /// Number of keys.
    pub fn len(&self) -> StorageResult<usize> {
        self.kv.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> StorageResult<bool> {
        self.kv.is_empty()
    }

    /// Bytes currently in the WAL (for experiments).
    pub fn wal_len(&self) -> u64 {
        self.wal.end_lsn().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_tmp() -> (tempfile::TempDir, DurableKv) {
        let d = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(d.path()).unwrap();
        (d, kv)
    }

    #[test]
    fn basic_transactional_flow() {
        let (_d, kv) = open_tmp();
        let tx = kv.begin().unwrap();
        kv.put(tx, 1, b"one").unwrap();
        kv.put(tx, 2, b"two").unwrap();
        kv.commit(tx).unwrap();
        assert_eq!(kv.get(1).unwrap().unwrap(), b"one");
        assert_eq!(kv.len().unwrap(), 2);
    }

    #[test]
    fn abort_rolls_back() {
        let (_d, kv) = open_tmp();
        let t1 = kv.begin().unwrap();
        kv.put(t1, 1, b"committed").unwrap();
        kv.commit(t1).unwrap();

        let t2 = kv.begin().unwrap();
        kv.put(t2, 1, b"overwritten").unwrap();
        kv.put(t2, 2, b"fresh").unwrap();
        kv.delete(t2, 1).unwrap();
        kv.abort(t2).unwrap();

        assert_eq!(kv.get(1).unwrap().unwrap(), b"committed");
        assert_eq!(kv.get(2).unwrap(), None);
    }

    #[test]
    fn committed_data_survives_crash() {
        let d = tempfile::tempdir().unwrap();
        {
            let kv = DurableKv::open(d.path()).unwrap();
            let tx = kv.begin().unwrap();
            kv.put(tx, 7, b"durable").unwrap();
            kv.commit(tx).unwrap();
            // Crash: drop without checkpoint/flush.
        }
        let kv = DurableKv::open(d.path()).unwrap();
        assert_eq!(kv.get(7).unwrap().unwrap(), b"durable");
    }

    #[test]
    fn uncommitted_data_rolled_back_on_recovery() {
        let d = tempfile::tempdir().unwrap();
        {
            let kv = DurableKv::open(d.path()).unwrap();
            let t1 = kv.begin().unwrap();
            kv.put(t1, 1, b"keep").unwrap();
            kv.commit(t1).unwrap();
            let t2 = kv.begin().unwrap();
            kv.put(t2, 1, b"lose-update").unwrap();
            kv.put(t2, 2, b"lose-insert").unwrap();
            // Make the loser's dirty pages reach disk (steal), then crash.
            kv.flush_data().unwrap();
            kv.wal.sync().unwrap();
        }
        let kv = DurableKv::open(d.path()).unwrap();
        assert_eq!(kv.get(1).unwrap().unwrap(), b"keep", "loser update undone");
        assert_eq!(kv.get(2).unwrap(), None, "loser insert undone");
    }

    #[test]
    fn checkpoint_truncates_log() {
        let (_d, kv) = open_tmp();
        let tx = kv.begin().unwrap();
        for k in 0..50 {
            kv.put(tx, k, &k.to_le_bytes()).unwrap();
        }
        kv.commit(tx).unwrap();
        assert!(kv.wal_len() > 0);
        kv.checkpoint().unwrap();
        assert_eq!(kv.wal_len(), 0);
        // Data still there after reopen.
        drop(kv);
    }

    #[test]
    fn recovery_after_checkpoint_only_replays_tail() {
        let d = tempfile::tempdir().unwrap();
        {
            let kv = DurableKv::open(d.path()).unwrap();
            let t = kv.begin().unwrap();
            kv.put(t, 1, b"pre-checkpoint").unwrap();
            kv.commit(t).unwrap();
            kv.checkpoint().unwrap();
            let t = kv.begin().unwrap();
            kv.put(t, 2, b"post-checkpoint").unwrap();
            kv.commit(t).unwrap();
        }
        let kv = DurableKv::open(d.path()).unwrap();
        assert_eq!(kv.get(1).unwrap().unwrap(), b"pre-checkpoint");
        assert_eq!(kv.get(2).unwrap().unwrap(), b"post-checkpoint");
    }

    #[test]
    fn tx_ids_continue_after_recovery() {
        let d = tempfile::tempdir().unwrap();
        let tx_before;
        {
            let kv = DurableKv::open(d.path()).unwrap();
            let t = kv.begin().unwrap();
            tx_before = t.0 .0;
            kv.put(t, 1, b"x").unwrap();
            kv.commit(t).unwrap();
        }
        let kv = DurableKv::open(d.path()).unwrap();
        let t = kv.begin().unwrap();
        assert!(t.0 .0 > tx_before, "tx ids must not repeat after restart");
    }

    #[test]
    fn interleaved_transactions() {
        let (_d, kv) = open_tmp();
        let a = kv.begin().unwrap();
        let b = kv.begin().unwrap();
        kv.put(a, 1, b"from-a").unwrap();
        kv.put(b, 2, b"from-b").unwrap();
        kv.commit(a).unwrap();
        kv.abort(b).unwrap();
        assert_eq!(kv.get(1).unwrap().unwrap(), b"from-a");
        assert_eq!(kv.get(2).unwrap(), None);
    }

    #[test]
    fn large_values_roundtrip() {
        let (_d, kv) = open_tmp();
        let tx = kv.begin().unwrap();
        let big = vec![0xCD; 7000];
        kv.put(tx, 1, &big).unwrap();
        kv.commit(tx).unwrap();
        assert_eq!(kv.get(1).unwrap().unwrap(), big);
    }
}

#[cfg(test)]
mod overflow_tests {
    use super::*;

    fn open_tmp() -> (tempfile::TempDir, DurableKv) {
        let d = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(d.path()).unwrap();
        (d, kv)
    }

    #[test]
    fn values_larger_than_a_page_roundtrip() {
        let (_d, kv) = open_tmp();
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let tx = kv.begin().unwrap();
        kv.put(tx, 1, &big).unwrap();
        kv.commit(tx).unwrap();
        assert_eq!(kv.get(1).unwrap().unwrap(), big);
    }

    #[test]
    fn large_values_update_and_shrink() {
        let (_d, kv) = open_tmp();
        let big = vec![7u8; 50_000];
        let tx = kv.begin().unwrap();
        kv.put(tx, 1, &big).unwrap();
        kv.put(tx, 1, b"tiny now").unwrap();
        kv.commit(tx).unwrap();
        assert_eq!(kv.get(1).unwrap().unwrap(), b"tiny now");
        // Growing again works too.
        let bigger = vec![9u8; 80_000];
        let tx = kv.begin().unwrap();
        kv.put(tx, 1, &bigger).unwrap();
        kv.commit(tx).unwrap();
        assert_eq!(kv.get(1).unwrap().unwrap(), bigger);
    }

    #[test]
    fn deleting_large_values_frees_chunks() {
        let (_d, kv) = open_tmp();
        let big = vec![1u8; 60_000];
        let tx = kv.begin().unwrap();
        kv.put(tx, 1, &big).unwrap();
        kv.delete(tx, 1).unwrap();
        kv.commit(tx).unwrap();
        assert_eq!(kv.get(1).unwrap(), None);
        // The freed space is reused: many more large values fit without the
        // file exploding.
        for k in 0..5 {
            let tx = kv.begin().unwrap();
            kv.put(tx, 100 + k, &big).unwrap();
            kv.delete(tx, 100 + k).unwrap();
            kv.commit(tx).unwrap();
        }
        assert!(kv.is_empty().unwrap());
    }

    #[test]
    fn large_values_survive_crash_recovery() {
        let d = tempfile::tempdir().unwrap();
        let big: Vec<u8> = (0..40_000u32).map(|i| (i % 13) as u8).collect();
        {
            let kv = DurableKv::open(d.path()).unwrap();
            let tx = kv.begin().unwrap();
            kv.put(tx, 5, &big).unwrap();
            kv.commit(tx).unwrap();
        }
        let kv = DurableKv::open(d.path()).unwrap();
        assert_eq!(kv.get(5).unwrap().unwrap(), big);
    }

    #[test]
    fn mixed_sizes_scan_in_order() {
        let (_d, kv) = open_tmp();
        let tx = kv.begin().unwrap();
        kv.put(tx, 2, &vec![2u8; 20_000]).unwrap();
        kv.put(tx, 1, b"small").unwrap();
        kv.put(tx, 3, &vec![3u8; 9_000]).unwrap();
        kv.commit(tx).unwrap();
        let rows = kv.scan().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[1].1.len(), 20_000);
        assert_eq!(rows[2].1.len(), 9_000);
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;

    #[test]
    fn compaction_reclaims_space_and_preserves_data() {
        let d = tempfile::tempdir().unwrap();
        let mut kv = DurableKv::open(d.path()).unwrap();
        // Heavy churn: create and delete lots of large values.
        for round in 0..5u64 {
            let tx = kv.begin().unwrap();
            for k in 0..20u64 {
                kv.put(tx, 1000 + k, &vec![round as u8; 20_000]).unwrap();
            }
            for k in 0..19u64 {
                kv.delete(tx, 1000 + k).unwrap();
            }
            kv.commit(tx).unwrap();
        }
        // Survivor per round: key 1019 with the last round's bytes.
        let survivor = kv.get(1019).unwrap().unwrap();
        let (before, after) = kv.compact().unwrap();
        assert!(
            after < before,
            "compaction should shrink: {before} -> {after}"
        );
        assert_eq!(kv.get(1019).unwrap().unwrap(), survivor);
        assert_eq!(kv.len().unwrap(), 1);
        // Still fully functional and durable afterwards.
        let tx = kv.begin().unwrap();
        kv.put(tx, 7, b"post-compact").unwrap();
        kv.commit(tx).unwrap();
        drop(kv);
        let kv = DurableKv::open(d.path()).unwrap();
        assert_eq!(kv.get(7).unwrap().unwrap(), b"post-compact");
        assert_eq!(kv.get(1019).unwrap().unwrap(), survivor);
    }

    #[test]
    fn compacting_empty_store_is_fine() {
        let d = tempfile::tempdir().unwrap();
        let mut kv = DurableKv::open(d.path()).unwrap();
        let (_, after) = kv.compact().unwrap();
        assert!(after > 0, "meta pages remain");
        assert!(kv.is_empty().unwrap());
    }
}

#[cfg(test)]
mod crash_property_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    enum Op {
        Put(u64, Vec<u8>),
        Delete(u64),
        CommitTxn,
        AbortTxn,
        Checkpoint,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0u64..20, proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(k, v)| Op::Put(k, v)),
            2 => (0u64..20).prop_map(Op::Delete),
            2 => Just(Op::CommitTxn),
            1 => Just(Op::AbortTxn),
            1 => Just(Op::Checkpoint),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Whatever transaction mix ran, a crash-and-reopen shows exactly
        /// the committed prefix: committed effects present, open/aborted
        /// transaction effects absent.
        #[test]
        fn crash_recovery_matches_committed_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
            let dir = tempfile::tempdir().unwrap();
            // `committed` mirrors only committed state; `pending` the open txn.
            let mut committed: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            let mut pending: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
            {
                let kv = DurableKv::open(dir.path()).unwrap();
                let mut tx = kv.begin().unwrap();
                for op in ops {
                    match op {
                        Op::Put(k, v) => {
                            kv.put(tx, k, &v).unwrap();
                            pending.insert(k, Some(v));
                        }
                        Op::Delete(k) => {
                            kv.delete(tx, k).unwrap();
                            pending.insert(k, None);
                        }
                        Op::CommitTxn => {
                            kv.commit(tx).unwrap();
                            for (k, v) in std::mem::take(&mut pending) {
                                match v {
                                    Some(v) => { committed.insert(k, v); }
                                    None => { committed.remove(&k); }
                                }
                            }
                            tx = kv.begin().unwrap();
                        }
                        Op::AbortTxn => {
                            kv.abort(tx).unwrap();
                            pending.clear();
                            tx = kv.begin().unwrap();
                        }
                        Op::Checkpoint => {
                            // Fuzzy checkpoint mid-transaction.
                            kv.checkpoint().unwrap();
                        }
                    }
                }
                // Crash with `tx` still open: its effects must vanish.
            }
            let kv = DurableKv::open(dir.path()).unwrap();
            let survived: BTreeMap<u64, Vec<u8>> = kv.scan().unwrap().into_iter().collect();
            prop_assert_eq!(survived, committed);
        }
    }
}
