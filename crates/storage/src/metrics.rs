//! Process-global metric handles for ccdb-storage, registered in the
//! [`ccdb_obs::global`] registry under `ccdb_storage_*` names.
//!
//! Per-instance counters (e.g. [`crate::buffer::BufferPool`] hit/miss
//! accessors) stay per-instance; the handles here aggregate across every
//! pool / WAL / recovery run in the process.

use std::sync::{Arc, OnceLock};

use ccdb_obs::{Counter, Gauge, Histogram};

pub(crate) struct StorageMetrics {
    /// `ccdb_storage_buffer_hits_total`
    pub buffer_hits: Arc<Counter>,
    /// `ccdb_storage_buffer_misses_total`
    pub buffer_misses: Arc<Counter>,
    /// `ccdb_storage_buffer_evictions_total`
    pub buffer_evictions: Arc<Counter>,
    /// `ccdb_storage_buffer_flushes_total`
    pub buffer_flushes: Arc<Counter>,
    /// `ccdb_storage_buffer_dirty_pages` — dirty frames resident across
    /// all live pools.
    pub buffer_dirty_pages: Arc<Gauge>,
    /// `ccdb_storage_wal_appends_total`
    pub wal_appends: Arc<Counter>,
    /// `ccdb_storage_wal_appended_bytes_total`
    pub wal_appended_bytes: Arc<Counter>,
    /// `ccdb_storage_wal_syncs_total`
    pub wal_syncs: Arc<Counter>,
    /// `ccdb_storage_wal_sync_latency_ns`
    pub wal_sync_latency: Arc<Histogram>,
    /// `ccdb_storage_recovery_replays_total`
    pub recovery_replays: Arc<Counter>,
    /// `ccdb_storage_recovery_redone_total`
    pub recovery_redone: Arc<Counter>,
    /// `ccdb_storage_recovery_undone_total`
    pub recovery_undone: Arc<Counter>,
    /// `ccdb_storage_recovery_losers_total`
    pub recovery_losers: Arc<Counter>,
}

pub(crate) fn storage_metrics() -> &'static StorageMetrics {
    static METRICS: OnceLock<StorageMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = ccdb_obs::global();
        StorageMetrics {
            buffer_hits: r.counter("ccdb_storage_buffer_hits_total"),
            buffer_misses: r.counter("ccdb_storage_buffer_misses_total"),
            buffer_evictions: r.counter("ccdb_storage_buffer_evictions_total"),
            buffer_flushes: r.counter("ccdb_storage_buffer_flushes_total"),
            buffer_dirty_pages: r.gauge("ccdb_storage_buffer_dirty_pages"),
            wal_appends: r.counter("ccdb_storage_wal_appends_total"),
            wal_appended_bytes: r.counter("ccdb_storage_wal_appended_bytes_total"),
            wal_syncs: r.counter("ccdb_storage_wal_syncs_total"),
            wal_sync_latency: r.histogram(
                "ccdb_storage_wal_sync_latency_ns",
                ccdb_obs::metrics::LATENCY_BUCKETS_NS,
            ),
            recovery_replays: r.counter("ccdb_storage_recovery_replays_total"),
            recovery_redone: r.counter("ccdb_storage_recovery_redone_total"),
            recovery_undone: r.counter("ccdb_storage_recovery_undone_total"),
            recovery_losers: r.counter("ccdb_storage_recovery_losers_total"),
        }
    })
}
