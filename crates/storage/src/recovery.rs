//! Crash recovery over the logical WAL.
//!
//! The protocol (see [`crate::kv::DurableKv`]):
//!
//! 1. **Analysis** — scan the log, classify every transaction as *committed*
//!    (has `Commit`), *aborted* (has `Abort`; its compensations were logged
//!    as ordinary `Put`/`Delete` records before the `Abort`, so it needs no
//!    undo), or *in-flight* (a loser).
//! 2. **Redo** — repeat history: re-apply every `Put`/`Delete` after the last
//!    checkpoint, in log order, regardless of transaction fate. (Effects
//!    before the last checkpoint are already in the data files, which are
//!    flushed at checkpoint time.)
//! 3. **Undo** — roll losers back newest-first using before-images, across
//!    the whole log (a loser active at the checkpoint has pre-checkpoint
//!    records that were flushed and must be reverted).
//!
//! Correctness relies on the transaction layer holding exclusive locks on
//! written keys until commit/abort (strict 2PL, provided by `ccdb-txn`), so
//! before-images of distinct transactions never interleave on one key.

use std::collections::{HashMap, HashSet};

use ccdb_obs::{event, Event, FieldValue};

use crate::error::StorageResult;
use crate::kv::KvStore;
use crate::metrics::storage_metrics;
use crate::wal::{TxId, Wal, WalRecord};

/// Counters describing what recovery did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Put/Delete records re-applied in the redo pass.
    pub redone: usize,
    /// Records rolled back in the undo pass.
    pub undone: usize,
    /// Number of loser transactions.
    pub losers: usize,
    /// Highest transaction id seen in the log (0 when the log is empty).
    pub max_tx: u64,
}

/// Run analysis/redo/undo of `wal` against `kv`. Idempotent: running it
/// twice yields the same store state.
pub fn recover(wal: &Wal, kv: &KvStore) -> StorageResult<RecoveryStats> {
    let records = wal.records()?;
    let mut stats = RecoveryStats::default();
    storage_metrics().recovery_replays.inc();
    if records.is_empty() {
        return Ok(stats);
    }

    // --- Analysis ---
    let mut committed: HashSet<TxId> = HashSet::new();
    let mut aborted: HashSet<TxId> = HashSet::new();
    let mut seen: HashSet<TxId> = HashSet::new();
    let mut last_ckpt: Option<usize> = None;
    for (i, (_, rec)) in records.iter().enumerate() {
        if let Some(tx) = rec.tx() {
            seen.insert(tx);
            stats.max_tx = stats.max_tx.max(tx.0);
        }
        match rec {
            WalRecord::Commit { tx } => {
                committed.insert(*tx);
            }
            WalRecord::Abort { tx } => {
                aborted.insert(*tx);
            }
            WalRecord::Checkpoint { .. } => last_ckpt = Some(i),
            _ => {}
        }
    }
    let losers: HashSet<TxId> = seen
        .iter()
        .filter(|t| !committed.contains(t) && !aborted.contains(t))
        .copied()
        .collect();
    stats.losers = losers.len();

    // --- Redo (repeating history after the last checkpoint) ---
    let redo_from = last_ckpt.map_or(0, |i| i + 1);
    for (_, rec) in &records[redo_from..] {
        match rec {
            WalRecord::Put { key, after, .. } => {
                kv.put(*key, after)?;
                stats.redone += 1;
            }
            WalRecord::Delete { key, .. } => {
                kv.delete(*key)?;
                stats.redone += 1;
            }
            _ => {}
        }
    }

    // --- Undo losers, newest first ---
    let mut undone_keys: HashMap<TxId, HashSet<u64>> = HashMap::new();
    for (_, rec) in records.iter().rev() {
        let Some(tx) = rec.tx() else { continue };
        if !losers.contains(&tx) {
            continue;
        }
        match rec {
            WalRecord::Put { key, before, .. } => {
                // Only the *oldest* before-image per key matters for the final
                // state, but applying each newest-first converges to it; we
                // apply all for simplicity and count them.
                match before {
                    Some(b) => {
                        kv.put(*key, b)?;
                    }
                    None => {
                        kv.delete(*key)?;
                    }
                }
                undone_keys.entry(tx).or_default().insert(*key);
                stats.undone += 1;
            }
            WalRecord::Delete { key, before, .. } => {
                kv.put(*key, before)?;
                undone_keys.entry(tx).or_default().insert(*key);
                stats.undone += 1;
            }
            _ => {}
        }
    }

    let m = storage_metrics();
    m.recovery_redone.add(stats.redone as u64);
    m.recovery_undone.add(stats.undone as u64);
    m.recovery_losers.add(stats.losers as u64);
    event::emit(|| {
        Event::now(
            "storage.recovery.replay",
            vec![
                ("redone", FieldValue::U64(stats.redone as u64)),
                ("undone", FieldValue::U64(stats.undone as u64)),
                ("losers", FieldValue::U64(stats.losers as u64)),
            ],
        )
    });
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree::BTree;
    use crate::buffer::BufferPool;
    use crate::disk::DiskManager;
    use crate::heap::HeapFile;
    use std::sync::Arc;

    fn fresh() -> (tempfile::TempDir, Wal, KvStore) {
        let d = tempfile::tempdir().unwrap();
        let heap_disk = Arc::new(DiskManager::open(d.path().join("heap.db")).unwrap());
        let index_disk = Arc::new(DiskManager::open(d.path().join("index.db")).unwrap());
        let heap = HeapFile::open(Arc::new(BufferPool::new(heap_disk, 32))).unwrap();
        let index = BTree::open(Arc::new(BufferPool::new(index_disk, 32))).unwrap();
        let wal = Wal::open(d.path().join("wal.log")).unwrap();
        (d, wal, KvStore::new(heap, index))
    }

    #[test]
    fn empty_log_is_a_noop() {
        let (_d, wal, kv) = fresh();
        let stats = recover(&wal, &kv).unwrap();
        assert_eq!(stats, RecoveryStats::default());
    }

    #[test]
    fn redo_restores_committed_writes() {
        let (_d, wal, kv) = fresh();
        // Log a committed transaction whose effects never reached the store.
        wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(1),
            key: 1,
            before: None,
            after: b"v".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Commit { tx: TxId(1) }).unwrap();
        let stats = recover(&wal, &kv).unwrap();
        assert_eq!(stats.redone, 1);
        assert_eq!(stats.losers, 0);
        assert_eq!(kv.get(1).unwrap().unwrap(), b"v");
    }

    #[test]
    fn undo_reverts_in_flight_writes() {
        let (_d, wal, kv) = fresh();
        // Committed base value.
        wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(1),
            key: 1,
            before: None,
            after: b"base".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Commit { tx: TxId(1) }).unwrap();
        // Loser overwrites it and inserts another key.
        wal.append(&WalRecord::Begin { tx: TxId(2) }).unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(2),
            key: 1,
            before: Some(b"base".to_vec()),
            after: b"loser".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(2),
            key: 2,
            before: None,
            after: b"new".to_vec(),
        })
        .unwrap();
        let stats = recover(&wal, &kv).unwrap();
        assert_eq!(stats.losers, 1);
        assert_eq!(kv.get(1).unwrap().unwrap(), b"base");
        assert_eq!(kv.get(2).unwrap(), None);
    }

    #[test]
    fn undo_restores_deleted_values() {
        let (_d, wal, kv) = fresh();
        kv.put(5, b"precious").unwrap();
        wal.append(&WalRecord::Begin { tx: TxId(3) }).unwrap();
        wal.append(&WalRecord::Delete {
            tx: TxId(3),
            key: 5,
            before: b"precious".to_vec(),
        })
        .unwrap();
        // Apply the delete as if it happened pre-crash.
        kv.delete(5).unwrap();
        recover(&wal, &kv).unwrap();
        assert_eq!(kv.get(5).unwrap().unwrap(), b"precious");
    }

    #[test]
    fn aborted_tx_with_compensations_needs_no_undo() {
        let (_d, wal, kv) = fresh();
        wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(1),
            key: 1,
            before: None,
            after: b"x".to_vec(),
        })
        .unwrap();
        // Compensation (logged by DurableKv::abort) followed by the abort marker.
        wal.append(&WalRecord::Delete {
            tx: TxId(1),
            key: 1,
            before: b"x".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Abort { tx: TxId(1) }).unwrap();
        let stats = recover(&wal, &kv).unwrap();
        assert_eq!(stats.losers, 0);
        assert_eq!(stats.undone, 0);
        assert_eq!(
            kv.get(1).unwrap(),
            None,
            "redo of fwd + compensation nets out"
        );
    }

    #[test]
    fn checkpoint_bounds_redo_but_not_undo() {
        let (_d, wal, kv) = fresh();
        // Pre-checkpoint: committed write (already in data) + active loser write.
        kv.put(1, b"committed").unwrap(); // flushed state
        kv.put(2, b"loser-dirt").unwrap(); // loser's flushed dirt
        wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(1),
            key: 1,
            before: None,
            after: b"committed".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Commit { tx: TxId(1) }).unwrap();
        wal.append(&WalRecord::Begin { tx: TxId(2) }).unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(2),
            key: 2,
            before: None,
            after: b"loser-dirt".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Checkpoint {
            active: vec![TxId(2)],
        })
        .unwrap();
        let stats = recover(&wal, &kv).unwrap();
        assert_eq!(stats.redone, 0, "nothing after the checkpoint to redo");
        assert!(stats.undone >= 1, "loser's pre-checkpoint write undone");
        assert_eq!(kv.get(1).unwrap().unwrap(), b"committed");
        assert_eq!(kv.get(2).unwrap(), None);
    }

    #[test]
    fn recovery_is_idempotent() {
        let (_d, wal, kv) = fresh();
        wal.append(&WalRecord::Begin { tx: TxId(1) }).unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(1),
            key: 1,
            before: None,
            after: b"a".to_vec(),
        })
        .unwrap();
        wal.append(&WalRecord::Commit { tx: TxId(1) }).unwrap();
        wal.append(&WalRecord::Begin { tx: TxId(2) }).unwrap();
        wal.append(&WalRecord::Put {
            tx: TxId(2),
            key: 1,
            before: Some(b"a".to_vec()),
            after: b"b".to_vec(),
        })
        .unwrap();
        recover(&wal, &kv).unwrap();
        let first = kv.scan().unwrap();
        recover(&wal, &kv).unwrap();
        assert_eq!(kv.scan().unwrap(), first);
        assert_eq!(kv.get(1).unwrap().unwrap(), b"a");
    }

    #[test]
    fn max_tx_reported() {
        let (_d, wal, kv) = fresh();
        wal.append(&WalRecord::Begin { tx: TxId(41) }).unwrap();
        wal.append(&WalRecord::Commit { tx: TxId(41) }).unwrap();
        let stats = recover(&wal, &kv).unwrap();
        assert_eq!(stats.max_tx, 41);
    }
}
