//! Trigger mechanism for semi-automatic adaptation (§4.1).
//!
//! The paper: "To inform the user about changes of the transmitter object
//! the attributes of the relationship can be used. In connection with
//! trigger mechanism … these informations can be used for building
//! mechanisms for semi-automatical corrections of consistency violations."
//!
//! [`TriggerRegistry`] consumes the store's adaptation log: handlers are
//! registered per inheritance-relationship type and run against each new
//! [`AdaptationEvent`]; a handler returning [`TriggerOutcome::Handled`]
//! acknowledges the relationship's `needs_adaptation` flag (automatic
//! correction), while [`TriggerOutcome::Ignored`] leaves the flag up for a
//! human (the paper's manual-adaptation default).

use std::collections::HashMap;

use crate::error::CoreResult;
use crate::store::{AdaptationEvent, ObjectStore};

/// What a trigger did with an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TriggerOutcome {
    /// The inheritor was adapted; clear the flag.
    Handled,
    /// Leave the flag raised for manual adaptation.
    Ignored,
}

/// Handler invoked for adaptation events of one relationship type.
pub type TriggerFn =
    Box<dyn FnMut(&mut ObjectStore, &AdaptationEvent) -> CoreResult<TriggerOutcome> + Send>;

/// Summary of one [`TriggerRegistry::process`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProcessReport {
    /// Events seen this run.
    pub events: usize,
    /// Events a handler reported as handled (flags cleared).
    pub handled: usize,
    /// Events with no registered handler.
    pub unhandled: usize,
}

/// Registry of per-relationship-type adaptation triggers with a cursor into
/// the store's adaptation log.
#[derive(Default)]
pub struct TriggerRegistry {
    cursor: u64,
    handlers: HashMap<String, TriggerFn>,
}

impl TriggerRegistry {
    /// Empty registry (cursor at the log's start).
    pub fn new() -> Self {
        TriggerRegistry::default()
    }

    /// Start consuming only events after the store's current logical time.
    pub fn from_now(store: &ObjectStore) -> Self {
        TriggerRegistry {
            cursor: store.now(),
            handlers: HashMap::new(),
        }
    }

    /// Register (or replace) the handler for one inheritance-relationship
    /// type.
    pub fn register(
        &mut self,
        rel_type: &str,
        handler: impl FnMut(&mut ObjectStore, &AdaptationEvent) -> CoreResult<TriggerOutcome>
            + Send
            + 'static,
    ) {
        self.handlers
            .insert(rel_type.to_string(), Box::new(handler));
    }

    /// Consume all adaptation events since the last run, dispatching each to
    /// the handler registered for its relationship type.
    pub fn process(&mut self, store: &mut ObjectStore) -> CoreResult<ProcessReport> {
        let events: Vec<AdaptationEvent> = store.adaptation_events_since(self.cursor);
        self.cursor = store.now();
        let mut report = ProcessReport {
            events: events.len(),
            ..Default::default()
        };
        for ev in events {
            // The relationship object may have been unbound meanwhile.
            let Ok(rel) = store.object(ev.rel_object) else {
                report.unhandled += 1;
                continue;
            };
            let rel_type = rel.type_name.clone();
            match self.handlers.get_mut(&rel_type) {
                None => report.unhandled += 1,
                Some(h) => match h(store, &ev)? {
                    TriggerOutcome::Handled => {
                        store.acknowledge_adaptation(ev.rel_object)?;
                        report.handled += 1;
                    }
                    TriggerOutcome::Ignored => {}
                },
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
    use crate::surrogate::Surrogate;
    use crate::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn setup() -> (ObjectStore, Surrogate, Surrogate) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("Length", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["Length".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("DoubledLength", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        let mut st = ObjectStore::new(c).unwrap();
        let interface = st
            .create_object("If", vec![("Length", Value::Int(4))])
            .unwrap();
        let imp = st
            .create_object("Impl", vec![("DoubledLength", Value::Int(8))])
            .unwrap();
        st.bind("AllOf_If", interface, imp, vec![]).unwrap();
        (st, interface, imp)
    }

    #[test]
    fn semi_automatic_correction() {
        let (mut st, interface, imp) = setup();
        let mut triggers = TriggerRegistry::new();
        // The "correction": keep the inheritor's derived local attribute in
        // sync with the inherited one (the paper's semi-automatic repair).
        triggers.register("AllOf_If", |store, ev| {
            let new = store.attr(ev.inheritor, &ev.item)?;
            if let Value::Int(n) = new {
                store.set_attr(ev.inheritor, "DoubledLength", Value::Int(2 * n))?;
            }
            Ok(TriggerOutcome::Handled)
        });
        st.set_attr(interface, "Length", Value::Int(10)).unwrap();
        let rel = st.binding_of(imp, "AllOf_If").unwrap();
        assert!(st.needs_adaptation(rel).unwrap());
        let report = triggers.process(&mut st).unwrap();
        assert_eq!(
            report,
            ProcessReport {
                events: 1,
                handled: 1,
                unhandled: 0
            }
        );
        assert_eq!(st.attr(imp, "DoubledLength").unwrap(), Value::Int(20));
        assert!(!st.needs_adaptation(rel).unwrap(), "flag auto-cleared");
    }

    #[test]
    fn ignored_events_leave_flag_for_manual_adaptation() {
        let (mut st, interface, imp) = setup();
        let mut triggers = TriggerRegistry::new();
        triggers.register("AllOf_If", |_, _| Ok(TriggerOutcome::Ignored));
        st.set_attr(interface, "Length", Value::Int(10)).unwrap();
        triggers.process(&mut st).unwrap();
        let rel = st.binding_of(imp, "AllOf_If").unwrap();
        assert!(st.needs_adaptation(rel).unwrap());
    }

    #[test]
    fn unregistered_types_counted_unhandled() {
        let (mut st, interface, _) = setup();
        let mut triggers = TriggerRegistry::new();
        st.set_attr(interface, "Length", Value::Int(10)).unwrap();
        let report = triggers.process(&mut st).unwrap();
        assert_eq!(report.unhandled, 1);
    }

    #[test]
    fn cursor_prevents_reprocessing() {
        let (mut st, interface, _) = setup();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        let mut triggers = TriggerRegistry::new();
        triggers.register("AllOf_If", move |_, _| {
            calls2.fetch_add(1, Ordering::Relaxed);
            Ok(TriggerOutcome::Handled)
        });
        st.set_attr(interface, "Length", Value::Int(10)).unwrap();
        triggers.process(&mut st).unwrap();
        triggers.process(&mut st).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "each event fires once");
        st.set_attr(interface, "Length", Value::Int(11)).unwrap();
        triggers.process(&mut st).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn from_now_skips_history() {
        let (mut st, interface, _) = setup();
        st.set_attr(interface, "Length", Value::Int(10)).unwrap();
        let mut triggers = TriggerRegistry::from_now(&st);
        triggers.register("AllOf_If", |_, _| Ok(TriggerOutcome::Handled));
        let report = triggers.process(&mut st).unwrap();
        assert_eq!(report.events, 0, "pre-registration events skipped");
    }

    #[test]
    fn unbound_relationship_events_skipped() {
        let (mut st, interface, imp) = setup();
        let mut triggers = TriggerRegistry::new();
        triggers.register("AllOf_If", |_, _| Ok(TriggerOutcome::Handled));
        st.set_attr(interface, "Length", Value::Int(10)).unwrap();
        let rel = st.binding_of(imp, "AllOf_If").unwrap();
        st.unbind(rel).unwrap();
        let report = triggers.process(&mut st).unwrap();
        assert_eq!(report.unhandled, 1, "dangling event skipped, no panic");
    }
}
