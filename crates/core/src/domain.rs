//! Domains: the types of attribute values (§3).
//!
//! "Attribute values belong to a particular domain. Domains may be simple
//! (integer, string, etc.) or structured (using constructors as record,
//! list-of, set-of, etc.)." The paper's examples add enumeration domains
//! (`(AND, OR, NOR, NAND)`), `Point`, and `matrix-of boolean`.

use serde::{Deserialize, Serialize};

/// The domain of an attribute.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Domain {
    /// Signed integers.
    Int,
    /// Floating-point numbers (not used by the paper's examples but natural
    /// for mechanical-engineering attributes).
    Real,
    /// Booleans.
    Bool,
    /// Character strings (the paper's `char`).
    Text,
    /// Enumeration of literal symbols, e.g. `(AND, OR, NOR, NAND)`.
    Enum(Vec<String>),
    /// 2-d integer point, e.g. `domain Point = (X, Y: integer)`.
    Point,
    /// Record with named, typed fields, e.g. `AreaDom`.
    Record(Vec<(String, Domain)>),
    /// Ordered list, e.g. `Corners: list-of Point`.
    ListOf(Box<Domain>),
    /// Unordered collection without duplicates, e.g. `Pins: set-of (...)`.
    SetOf(Box<Domain>),
    /// Rectangular matrix, e.g. `Function: matrix-of boolean`.
    MatrixOf(Box<Domain>),
    /// Reference to another object, optionally restricted to a type.
    Ref(Option<String>),
}

impl Domain {
    /// Human-readable rendering used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Domain::Int => "integer".to_string(),
            Domain::Real => "real".to_string(),
            Domain::Bool => "boolean".to_string(),
            Domain::Text => "char".to_string(),
            Domain::Enum(items) => format!("({})", items.join(", ")),
            Domain::Point => "Point".to_string(),
            Domain::Record(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(n, d)| format!("{n}: {}", d.describe()))
                    .collect();
                format!("record ({})", inner.join("; "))
            }
            Domain::ListOf(d) => format!("list-of {}", d.describe()),
            Domain::SetOf(d) => format!("set-of {}", d.describe()),
            Domain::MatrixOf(d) => format!("matrix-of {}", d.describe()),
            Domain::Ref(Some(t)) => format!("object-of-type {t}"),
            Domain::Ref(None) => "object".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_paper_flavoured() {
        assert_eq!(Domain::Int.describe(), "integer");
        assert_eq!(
            Domain::Enum(vec!["AND".into(), "OR".into()]).describe(),
            "(AND, OR)"
        );
        assert_eq!(
            Domain::SetOf(Box::new(Domain::Point)).describe(),
            "set-of Point"
        );
        assert_eq!(
            Domain::MatrixOf(Box::new(Domain::Bool)).describe(),
            "matrix-of boolean"
        );
        assert_eq!(
            Domain::Ref(Some("PinType".into())).describe(),
            "object-of-type PinType"
        );
        let area = Domain::Record(vec![
            ("Length".into(), Domain::Int),
            ("Width".into(), Domain::Int),
        ]);
        assert!(area.describe().contains("Length: integer"));
    }

    #[test]
    fn serde_roundtrip() {
        let d = Domain::ListOf(Box::new(Domain::Record(vec![(
            "Pos".into(),
            Domain::Point,
        )])));
        let json = serde_json::to_string(&d).unwrap();
        let back: Domain = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
