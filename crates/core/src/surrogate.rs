//! Surrogates: system-managed, system-wide object identifiers.
//!
//! The paper (§3): "Automatically, any object has an attribute called
//! *surrogate* which allows a system-wide identification of the object and
//! which is managed by the system."

use serde::{Deserialize, Serialize};

/// A system-wide object identifier. Never reused within a store.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize, Default,
)]
pub struct Surrogate(pub u64);

impl std::fmt::Display for Surrogate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Monotonic surrogate generator owned by a store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurrogateGen {
    next: u64,
}

impl Default for SurrogateGen {
    fn default() -> Self {
        Self::new()
    }
}

impl SurrogateGen {
    /// Start issuing from 1 (0 is reserved as a niche/sentinel).
    pub fn new() -> Self {
        SurrogateGen { next: 1 }
    }

    /// Resume issuing above `highest` (used when loading a persisted store).
    pub fn resume_after(highest: u64) -> Self {
        SurrogateGen { next: highest + 1 }
    }

    /// Issue the next surrogate.
    pub fn issue(&mut self) -> Surrogate {
        let s = Surrogate(self.next);
        self.next += 1;
        s
    }

    /// The next value that would be issued (for persistence).
    pub fn peek(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_unique() {
        let mut g = SurrogateGen::new();
        let a = g.issue();
        let b = g.issue();
        assert!(b > a);
        assert_ne!(a, b);
        assert_eq!(a, Surrogate(1));
    }

    #[test]
    fn resume_skips_used_range() {
        let mut g = SurrogateGen::resume_after(41);
        assert_eq!(g.issue(), Surrogate(42));
    }

    #[test]
    fn display_format() {
        assert_eq!(Surrogate(7).to_string(), "#7");
    }
}
