#![warn(missing_docs)]

//! # ccdb-core
//!
//! An implementation of the object model of
//!
//! > W. Wilkes, P. Klahold, G. Schlageter: *Complex and Composite Objects in
//! > CAD/CAM Databases*. Informatik-Berichte 80, FernUniversität Hagen, 1988
//! > (ICDE 1989).
//!
//! The model's basic units are **objects** with attributes over structured
//! [`domain`]s, grouped into **classes**; **complex objects** own local
//! subobjects in local subclasses; **relationship objects** relate objects
//! (across nesting levels) and can carry attributes, subclasses and
//! constraints of their own.
//!
//! The paper's distinctive mechanism is the **inheritance relationship**
//! ([`schema::InherRelTypeDef`]): an inheritor object inherits not only the
//! *existence* of attributes from a transmitter object (type-level
//! generalization) but their **values and subobjects** too — selectively
//! (the `inheriting:` permeability clause), read-only on the inheritor side,
//! and with transmitter updates instantly visible (view semantics). One
//! mechanism models both the *interface ↔ implementation* relationship and
//! the *composite ↔ component* relationship, including multi-level
//! abstraction hierarchies.
//!
//! ## Quick start
//!
//! ```
//! use ccdb_core::prelude::*;
//!
//! // Schema: an interface type, an implementation type, and the
//! // inheritance relationship between them.
//! let mut catalog = Catalog::new();
//! catalog.register_object_type(ObjectTypeDef {
//!     name: "GateInterface".into(),
//!     attributes: vec![AttrDef::new("Length", Domain::Int),
//!                      AttrDef::new("Width", Domain::Int)],
//!     ..Default::default()
//! }).unwrap();
//! catalog.register_inher_rel_type(InherRelTypeDef {
//!     name: "AllOf_GateInterface".into(),
//!     transmitter_type: "GateInterface".into(),
//!     inheritor_type: None,
//!     inheriting: vec!["Length".into(), "Width".into()],
//!     attributes: vec![],
//!     constraints: vec![],
//! }).unwrap();
//! catalog.register_object_type(ObjectTypeDef {
//!     name: "GateImplementation".into(),
//!     inheritor_in: vec!["AllOf_GateInterface".into()],
//!     ..Default::default()
//! }).unwrap();
//!
//! let mut store = ObjectStore::new(catalog).unwrap();
//! let interface = store.create_object("GateInterface",
//!     vec![("Length", Value::Int(10)), ("Width", Value::Int(4))]).unwrap();
//! let implementation = store.create_object("GateImplementation", vec![]).unwrap();
//! store.bind("AllOf_GateInterface", interface, implementation, vec![]).unwrap();
//!
//! // The implementation *sees* the interface's values...
//! assert_eq!(store.attr(implementation, "Length").unwrap(), Value::Int(10));
//! // ...they are read-only on the inheritor side...
//! assert!(store.set_attr(implementation, "Length", Value::Int(11)).is_err());
//! // ...and transmitter updates are instantly visible.
//! store.set_attr(interface, "Length", Value::Int(12)).unwrap();
//! assert_eq!(store.attr(implementation, "Length").unwrap(), Value::Int(12));
//! ```

pub mod domain;
pub mod error;
pub mod expand;
pub mod expr;
pub mod lockprobe;
pub(crate) mod metrics;
pub mod object;
pub mod persist;
pub mod rescache;
pub mod schema;
pub mod shared;
pub mod snapshot;
pub mod store;
pub mod surrogate;
pub mod trigger;
pub mod value;

/// Convenient glob import for applications and tests.
pub mod prelude {
    pub use crate::domain::Domain;
    pub use crate::error::{CoreError, CoreResult};
    pub use crate::expr::{BinOp, Env, Expr, ObjectView, PathExpr, PathRoot, ELEM_VAR, REL_VAR};
    pub use crate::object::{ObjectData, ObjectKind, Owner};
    pub use crate::rescache::DEFAULT_RESOLUTION_CACHE_SHARDS;
    pub use crate::schema::{
        AttrDef, Catalog, Constraint, InherRelTypeDef, ItemSource, ObjectTypeDef, ParticipantSpec,
        RelTypeDef, SubclassSpec, SubrelSpec,
    };
    pub use crate::shared::SharedStore;
    pub use crate::store::{AdaptationEvent, ObjectStore, StoreStats, Violation};
    pub use crate::surrogate::Surrogate;
    pub use crate::trigger::{ProcessReport, TriggerOutcome, TriggerRegistry};
    pub use crate::value::Value;
}

pub use error::{CoreError, CoreResult};
pub use store::ObjectStore;
pub use surrogate::Surrogate;
pub use value::Value;
