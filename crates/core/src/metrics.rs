//! Process-global metric handles for ccdb-core, registered in the
//! [`ccdb_obs::global`] registry under `ccdb_core_*` names.
//!
//! Per-[`crate::store::ObjectStore`] counters (the [`crate::store::StoreStats`]
//! view) stay per-instance so concurrent stores — e.g. parallel tests —
//! don't cross-talk; the handles here aggregate across all stores in the
//! process and feed the `ccdb stats` snapshot and bench sidecars.

use std::sync::{Arc, OnceLock};

use ccdb_obs::{metrics::HOP_BUCKETS, Counter, Gauge, Histogram};

pub(crate) struct CoreMetrics {
    /// `ccdb_core_resolution_local_reads_total`
    pub local_reads: Arc<Counter>,
    /// `ccdb_core_resolution_inherited_reads_total`
    pub inherited_reads: Arc<Counter>,
    /// `ccdb_core_resolution_hops_total`
    pub hops: Arc<Counter>,
    /// `ccdb_core_resolution_hops` — hops walked per top-level resolution.
    pub hop_hist: Arc<Histogram>,
    /// `ccdb_core_resolution_chains_total`
    pub resolution_chains: Arc<Counter>,
    /// `ccdb_core_store_set_attr_total`
    pub set_attr: Arc<Counter>,
    /// `ccdb_core_store_bind_total`
    pub bind: Arc<Counter>,
    /// `ccdb_core_store_unbind_total`
    pub unbind: Arc<Counter>,
    /// `ccdb_core_adaptation_events_total`
    pub adaptation_events: Arc<Counter>,
    /// `ccdb_core_adaptation_fanout` — relationship objects flagged per
    /// transmitter update that flagged at least one.
    pub adaptation_fanout: Arc<Histogram>,
    /// `ccdb_core_rescache_hits_total` — attr reads answered from the
    /// resolution value cache.
    pub rescache_hits: Arc<Counter>,
    /// `ccdb_core_rescache_misses_total` — attr reads that walked the chain
    /// and filled the cache.
    pub rescache_misses: Arc<Counter>,
    /// `ccdb_core_rescache_invalidations_total` — cache entries dropped by
    /// write-path invalidation.
    pub rescache_invalidations: Arc<Counter>,
    /// `ccdb_core_rescache_shard_count` — stripes in the most recently
    /// constructed store's resolution cache.
    pub rescache_shard_count: Arc<Gauge>,
    /// `ccdb_core_rescache_shard_sweeps_total` — shards locked by
    /// invalidation sweeps (the single-lock design would count one full
    /// cache lock per sweep here).
    pub rescache_shard_sweeps: Arc<Counter>,
    /// `ccdb_core_snapshot_age_ms` — milliseconds since the most recent
    /// snapshot publication (refreshed on every snapshot pin and publish).
    pub snapshot_age_ms: Arc<Gauge>,
    /// `ccdb_core_snapshot_publish_ns` — time to build (COW-clone) and
    /// publish one store version.
    pub snapshot_publish_ns: Arc<Histogram>,
    /// `ccdb_core_snapshot_publishes_total` — versions published.
    pub snapshot_publishes: Arc<Counter>,
    /// `ccdb_core_snapshot_version` — most recently published version.
    pub snapshot_version: Arc<Gauge>,
    /// `ccdb_core_snapshot_rollbacks_total` — write cycles that panicked
    /// and were rolled back to the last published version.
    pub snapshot_rollbacks: Arc<Counter>,
}

pub(crate) fn core_metrics() -> &'static CoreMetrics {
    static METRICS: OnceLock<CoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = ccdb_obs::global();
        CoreMetrics {
            local_reads: r.counter("ccdb_core_resolution_local_reads_total"),
            inherited_reads: r.counter("ccdb_core_resolution_inherited_reads_total"),
            hops: r.counter("ccdb_core_resolution_hops_total"),
            hop_hist: r.histogram("ccdb_core_resolution_hops", HOP_BUCKETS),
            resolution_chains: r.counter("ccdb_core_resolution_chains_total"),
            set_attr: r.counter("ccdb_core_store_set_attr_total"),
            bind: r.counter("ccdb_core_store_bind_total"),
            unbind: r.counter("ccdb_core_store_unbind_total"),
            adaptation_events: r.counter("ccdb_core_adaptation_events_total"),
            adaptation_fanout: r.histogram("ccdb_core_adaptation_fanout", HOP_BUCKETS),
            rescache_hits: r.counter("ccdb_core_rescache_hits_total"),
            rescache_misses: r.counter("ccdb_core_rescache_misses_total"),
            rescache_invalidations: r.counter("ccdb_core_rescache_invalidations_total"),
            rescache_shard_count: r.gauge("ccdb_core_rescache_shard_count"),
            rescache_shard_sweeps: r.counter("ccdb_core_rescache_shard_sweeps_total"),
            snapshot_age_ms: r.gauge("ccdb_core_snapshot_age_ms"),
            snapshot_publish_ns: r.histogram(
                "ccdb_core_snapshot_publish_ns",
                ccdb_obs::metrics::LATENCY_BUCKETS_NS,
            ),
            snapshot_publishes: r.counter("ccdb_core_snapshot_publishes_total"),
            snapshot_version: r.gauge("ccdb_core_snapshot_version"),
            snapshot_rollbacks: r.counter("ccdb_core_snapshot_rollbacks_total"),
        }
    })
}
