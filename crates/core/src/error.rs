//! Error type for the object model.

use std::fmt;

use crate::surrogate::Surrogate;

/// Result alias used throughout the core crate.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors surfaced by the schema catalog and object store.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A named type/domain/class was not found in the catalog or store.
    Unknown {
        /// What kind of name failed to resolve ("domain", "class", …).
        kind: &'static str,
        /// The unresolved name.
        name: String,
    },
    /// A type, domain, or class name was registered twice.
    Duplicate {
        /// What kind of name collided.
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// A schema definition failed validation.
    InvalidSchema {
        /// The offending type.
        type_name: String,
        /// Why it is invalid.
        reason: String,
    },
    /// A surrogate did not resolve to a live object.
    NoSuchObject(Surrogate),
    /// An attribute is not part of an object's effective type.
    NoSuchAttribute {
        /// The queried object.
        object: Surrogate,
        /// The unknown attribute.
        attr: String,
    },
    /// A subclass name is not part of an object's effective type.
    NoSuchSubclass {
        /// The queried object.
        object: Surrogate,
        /// The unknown subclass.
        subclass: String,
    },
    /// A value did not conform to the attribute's domain.
    DomainMismatch {
        /// The attribute being written.
        attr: String,
        /// The declared domain.
        expected: String,
        /// The rejected value.
        got: String,
    },
    /// Attempted update of data reaching the object only through an
    /// inheritance relationship (paper §2: inherited data is read-only in
    /// the inheritor).
    InheritedReadOnly {
        /// The inheritor that was written to.
        object: Surrogate,
        /// The inherited (read-only) item.
        attr: String,
    },
    /// An object offered as participant/transmitter/inheritor has the wrong
    /// type for the relationship definition.
    TypeMismatch {
        /// The required type.
        expected: String,
        /// The offered type.
        got: String,
        /// The role being filled.
        role: String,
    },
    /// Binding would create an inheritance cycle at the object level.
    InheritanceCycle {
        /// The inheritor whose binding would close the cycle.
        object: Surrogate,
    },
    /// The object is already bound as inheritor in this relationship type.
    AlreadyBound {
        /// The already-bound inheritor.
        object: Surrogate,
        /// The inheritance-relationship type.
        rel_type: String,
    },
    /// The object type is not declared `inheritor-in` the relationship type.
    NotAnInheritor {
        /// The offending object type.
        type_name: String,
        /// The inheritance-relationship type.
        rel_type: String,
    },
    /// Deleting a transmitter that still has bound inheritors.
    TransmitterInUse {
        /// The protected transmitter.
        object: Surrogate,
        /// How many inheritors still depend on it.
        inheritors: usize,
    },
    /// An integrity constraint failed at check time.
    ConstraintViolated {
        /// The violating object.
        object: Surrogate,
        /// The constraint label.
        constraint: String,
    },
    /// An expression could not be evaluated against an object.
    EvalError(String),
    /// Persistence layer failure.
    Storage(String),
    /// Serialization failure when persisting objects.
    Codec(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Unknown { kind, name } => write!(f, "unknown {kind} `{name}`"),
            CoreError::Duplicate { kind, name } => write!(f, "duplicate {kind} `{name}`"),
            CoreError::InvalidSchema { type_name, reason } => {
                write!(f, "invalid schema for `{type_name}`: {reason}")
            }
            CoreError::NoSuchObject(s) => write!(f, "no object with surrogate {s}"),
            CoreError::NoSuchAttribute { object, attr } => {
                write!(f, "object {object} has no attribute `{attr}`")
            }
            CoreError::NoSuchSubclass { object, subclass } => {
                write!(f, "object {object} has no subclass `{subclass}`")
            }
            CoreError::DomainMismatch {
                attr,
                expected,
                got,
            } => {
                write!(f, "attribute `{attr}` expects {expected}, got {got}")
            }
            CoreError::InheritedReadOnly { object, attr } => write!(
                f,
                "attribute `{attr}` of object {object} is inherited and read-only in the inheritor"
            ),
            CoreError::TypeMismatch {
                expected,
                got,
                role,
            } => {
                write!(f, "{role} must be of type `{expected}`, got `{got}`")
            }
            CoreError::InheritanceCycle { object } => {
                write!(
                    f,
                    "binding object {object} would create an inheritance cycle"
                )
            }
            CoreError::AlreadyBound { object, rel_type } => {
                write!(
                    f,
                    "object {object} is already bound as inheritor in `{rel_type}`"
                )
            }
            CoreError::NotAnInheritor {
                type_name,
                rel_type,
            } => {
                write!(
                    f,
                    "type `{type_name}` is not declared inheritor-in `{rel_type}`"
                )
            }
            CoreError::TransmitterInUse { object, inheritors } => write!(
                f,
                "object {object} still transmits to {inheritors} inheritor(s); unbind them first"
            ),
            CoreError::ConstraintViolated { object, constraint } => {
                write!(f, "object {object} violates constraint: {constraint}")
            }
            CoreError::EvalError(msg) => write!(f, "expression evaluation failed: {msg}"),
            CoreError::Storage(msg) => write!(f, "storage error: {msg}"),
            CoreError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ccdb_storage::StorageError> for CoreError {
    fn from(e: ccdb_storage::StorageError) -> Self {
        CoreError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = CoreError::InheritedReadOnly {
            object: Surrogate(9),
            attr: "Pins".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Pins") && s.contains("read-only"));
        let e = CoreError::NotAnInheritor {
            type_name: "Plate".into(),
            rel_type: "AllOf_GirderIf".into(),
        };
        assert!(e.to_string().contains("inheritor-in"));
    }

    #[test]
    fn storage_error_converts() {
        let se = ccdb_storage::StorageError::KeyNotFound(3);
        let ce: CoreError = se.into();
        assert!(matches!(ce, CoreError::Storage(_)));
    }
}
