//! Copy-on-write building blocks for the MVCC snapshot store.
//!
//! [`crate::shared::SharedStore`] publishes the store as an immutable
//! `Arc<ObjectStore>` per version; readers pin one snapshot for a whole
//! request and never block behind writers. For that to be cheap the store's
//! big collections must clone in O(touched), not O(everything) — which is
//! what these two containers provide:
//!
//! * [`CowMap`] — a hash map striped over `Arc`-shared shards. Cloning the
//!   map bumps one refcount per shard; the first mutation of a shard after a
//!   clone copies only that shard (`Arc::make_mut`), so untouched objects
//!   are shared structurally between every live version.
//! * [`AppendLog`] — an append-only vector in `Arc`-shared chunks of
//!   [`CHUNK_CAP`]. Cloning bumps one refcount per chunk; appending to a
//!   shared tail copies at most one chunk.
//!
//! Neither container is concurrent — they are plain single-writer values
//! inside the master store, made cheap to *clone* so publishing a version is
//! a bounded amount of copying regardless of store size.

use std::borrow::Borrow;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Default shard count for [`CowMap`] (power of two).
pub const DEFAULT_COW_SHARDS: usize = 64;

/// Entries per sealed [`AppendLog`] chunk.
pub const CHUNK_CAP: usize = 256;

/// A persistent hash map with `Arc`-shared shards.
///
/// `clone()` is O(shards); the first mutation of a shard after a clone pays
/// a copy of that shard only. Lookup cost is a hash plus one `HashMap` probe,
/// same asymptotics as a plain `HashMap`.
#[derive(Clone, Debug)]
pub struct CowMap<K, V> {
    shards: Vec<Arc<HashMap<K, Arc<V>>>>,
    len: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Default for CowMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> CowMap<K, V> {
    /// Empty map with [`DEFAULT_COW_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_COW_SHARDS)
    }

    /// Empty map with `shards` stripes (clamped to ≥ 1, rounded up to a
    /// power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        CowMap {
            shards: (0..n).map(|_| Arc::new(HashMap::new())).collect(),
            len: 0,
        }
    }

    // `Borrow`'s contract guarantees `hash(k.borrow()) == hash(k)`, so a
    // borrowed lookup lands on the same shard the owned key was filed under.
    fn shard_of<Q>(&self, k: &Q) -> usize
    where
        Q: Hash + ?Sized,
    {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        (h.finish() as usize) & (self.shards.len() - 1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared lookup.
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_of(k)].get(k).map(|a| &**a)
    }

    /// Is `k` present?
    pub fn contains_key<Q>(&self, k: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_of(k)].contains_key(k)
    }

    /// Mutable lookup. Unshares the owning shard and (separately) the value
    /// — both copies are skipped when this map is the only owner.
    pub fn get_mut<Q>(&mut self, k: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let i = self.shard_of(k);
        if !self.shards[i].contains_key(k) {
            return None;
        }
        let shard = Arc::make_mut(&mut self.shards[i]);
        shard.get_mut(k).map(Arc::make_mut)
    }

    /// Insert, replacing any previous value.
    pub fn insert(&mut self, k: K, v: V) {
        let i = self.shard_of(&k);
        let shard = Arc::make_mut(&mut self.shards[i]);
        if shard.insert(k, Arc::new(v)).is_none() {
            self.len += 1;
        }
    }

    /// Remove and return the value (unsharing it if other versions still
    /// hold it).
    pub fn remove<Q>(&mut self, k: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let i = self.shard_of(k);
        if !self.shards[i].contains_key(k) {
            return None;
        }
        let a = Arc::make_mut(&mut self.shards[i]).remove(k)?;
        self.len -= 1;
        Some(Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
    }

    /// Mutable reference to `k`'s value, inserting `V::default()` first if
    /// absent (the `entry().or_default()` idiom).
    pub fn entry_or_default(&mut self, k: K) -> &mut V
    where
        V: Default,
    {
        let i = self.shard_of(&k);
        if !self.shards[i].contains_key(&k) {
            Arc::make_mut(&mut self.shards[i]).insert(k.clone(), Arc::new(V::default()));
            self.len += 1;
        }
        let shard = Arc::make_mut(&mut self.shards[i]);
        Arc::make_mut(shard.get_mut(&k).expect("just ensured"))
    }

    /// Iterate `(&key, &value)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.iter().map(|(k, v)| (k, &**v)))
    }

    /// Iterate keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.shards.iter().flat_map(|s| s.keys())
    }

    /// Iterate values in unspecified order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.shards.iter().flat_map(|s| s.values().map(|a| &**a))
    }

    /// Unshare and iterate every value mutably. Copies every shard that is
    /// still shared — use only on cold paths (cascade delete bookkeeping).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.shards
            .iter_mut()
            .flat_map(|s| Arc::make_mut(s).values_mut().map(Arc::make_mut))
    }
}

/// An append-only persistent vector in `Arc`-shared chunks.
///
/// Every chunk except possibly the last holds exactly [`CHUNK_CAP`] items,
/// so random access is index arithmetic. `clone()` is O(chunks); a push onto
/// a tail shared with an older version copies at most [`CHUNK_CAP`] items.
#[derive(Clone, Debug)]
pub struct AppendLog<T> {
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T: Clone> Default for AppendLog<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> AppendLog<T> {
    /// Empty log.
    pub fn new() -> Self {
        AppendLog {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one item, unsharing (copying) the tail chunk if an older
    /// version still holds it.
    pub fn push(&mut self, item: T) {
        match self.chunks.last_mut() {
            Some(tail) if tail.len() < CHUNK_CAP => match Arc::get_mut(tail) {
                Some(v) => v.push(item),
                None => {
                    let mut copy = Vec::with_capacity(CHUNK_CAP);
                    copy.extend(tail.iter().cloned());
                    copy.push(item);
                    *tail = Arc::new(copy);
                }
            },
            _ => {
                let mut v = Vec::with_capacity(CHUNK_CAP);
                v.push(item);
                self.chunks.push(Arc::new(v));
            }
        }
        self.len += 1;
    }

    /// Random access.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        self.chunks[i / CHUNK_CAP].get(i % CHUNK_CAP)
    }

    /// Last item.
    pub fn last(&self) -> Option<&T> {
        self.len.checked_sub(1).and_then(|i| self.get(i))
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// First index at which `pred` is false, assuming the log is partitioned
    /// (all `true` items precede all `false` items) — same contract as
    /// `slice::partition_point`.
    pub fn partition_point(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.get(mid).expect("mid < len")) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Clone out the suffix starting at index `from`.
    pub fn tail_from(&self, from: usize) -> Vec<T> {
        (from..self.len)
            .map(|i| self.get(i).expect("index < len").clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cowmap_basic_ops() {
        let mut m: CowMap<u64, String> = CowMap::with_shards(4);
        assert!(m.is_empty());
        m.insert(1, "a".into());
        m.insert(2, "b".into());
        m.insert(1, "a2".into());
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1).map(String::as_str), Some("a2"));
        assert!(m.contains_key(&2));
        assert_eq!(m.remove(&2), Some("b".to_string()));
        assert_eq!(m.remove(&2), None);
        assert_eq!(m.len(), 1);
        *m.get_mut(&1).unwrap() = "a3".into();
        assert_eq!(m.get(&1).map(String::as_str), Some("a3"));
        assert_eq!(m.iter().count(), 1);
    }

    #[test]
    fn cowmap_clone_is_isolated_both_ways() {
        let mut a: CowMap<u64, Vec<u64>> = CowMap::new();
        for i in 0..100 {
            a.insert(i, vec![i]);
        }
        let b = a.clone();
        // Mutations on `a` after the clone are invisible in `b`.
        a.insert(7, vec![700]);
        a.remove(&8).unwrap();
        a.entry_or_default(9).push(900);
        a.entry_or_default(1000).push(1);
        assert_eq!(b.get(&7), Some(&vec![7]));
        assert_eq!(b.get(&8), Some(&vec![8]));
        assert_eq!(b.get(&9), Some(&vec![9]));
        assert!(!b.contains_key(&1000));
        assert_eq!(b.len(), 100);
        assert_eq!(a.get(&7), Some(&vec![700]));
        assert_eq!(a.get(&9), Some(&vec![9, 900]));
        assert_eq!(a.len(), 100, "one removed, one inserted");
        // Untouched entries still point at the same allocation (structural
        // sharing): compare addresses through the shared reference.
        assert!(std::ptr::eq(a.get(&50).unwrap(), b.get(&50).unwrap()));
    }

    #[test]
    fn cowmap_values_mut_unshares() {
        let mut a: CowMap<u64, Vec<u64>> = CowMap::with_shards(2);
        a.insert(1, vec![1]);
        a.insert(2, vec![2]);
        let b = a.clone();
        for v in a.values_mut() {
            v.push(99);
        }
        assert!(a.values().all(|v| v.ends_with(&[99])));
        assert!(b.values().all(|v| v.len() == 1));
    }

    #[test]
    fn appendlog_push_get_iter_across_chunks() {
        let mut log = AppendLog::new();
        let n = CHUNK_CAP * 2 + 10;
        for i in 0..n {
            log.push(i);
        }
        assert_eq!(log.len(), n);
        assert_eq!(log.get(0), Some(&0));
        assert_eq!(log.get(CHUNK_CAP), Some(&CHUNK_CAP));
        assert_eq!(log.get(n - 1), Some(&(n - 1)));
        assert_eq!(log.get(n), None);
        assert_eq!(log.last(), Some(&(n - 1)));
        let all: Vec<usize> = log.iter().copied().collect();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
        assert_eq!(log.partition_point(|&x| x < 300), 300);
        assert_eq!(log.tail_from(n - 3), vec![n - 3, n - 2, n - 1]);
    }

    #[test]
    fn appendlog_clone_shares_then_diverges() {
        let mut a = AppendLog::new();
        for i in 0..CHUNK_CAP + 5 {
            a.push(i);
        }
        let b = a.clone();
        a.push(777);
        assert_eq!(a.len(), CHUNK_CAP + 6);
        assert_eq!(b.len(), CHUNK_CAP + 5);
        assert_eq!(b.get(CHUNK_CAP + 5), None);
        assert_eq!(a.last(), Some(&777));
        // The sealed first chunk stays shared between the two versions.
        assert!(std::ptr::eq(a.get(0).unwrap(), b.get(0).unwrap()));
    }
}
