//! Tests for the object store and the value-inheritance engine.
//!
//! The fixture mirrors the paper's chip-design schema (§3–4): `PinType`,
//! `GateInterface_I` (pins only), `GateInterface` (adds expansion),
//! `GateImplementation` (adds function + subgates + wires), plus the
//! `SomeOf_Gate` tailored-permeability relationship.

use super::*;
use crate::domain::Domain;
use crate::expr::{BinOp, Expr, PathExpr};
use crate::schema::{
    AttrDef, Catalog, Constraint, InherRelTypeDef, ObjectTypeDef, RelTypeDef, SubclassSpec,
    SubrelSpec,
};

fn chip_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "PinType".into(),
        attributes: vec![
            AttrDef::new("InOut", Domain::Enum(vec!["IN".into(), "OUT".into()])),
            AttrDef::new("PinLocation", Domain::Point),
        ],
        ..Default::default()
    })
    .unwrap();
    // Interface hierarchy level 1: pins only.
    c.register_object_type(ObjectTypeDef {
        name: "GateInterface_I".into(),
        subclasses: vec![SubclassSpec {
            name: "Pins".into(),
            element_type: "PinType".into(),
        }],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_GateInterface_I".into(),
        transmitter_type: "GateInterface_I".into(),
        inheritor_type: None,
        inheriting: vec!["Pins".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    // Interface hierarchy level 2: adds the expansion.
    c.register_object_type(ObjectTypeDef {
        name: "GateInterface".into(),
        inheritor_in: vec!["AllOf_GateInterface_I".into()],
        attributes: vec![
            AttrDef::new("Length", Domain::Int),
            AttrDef::new("Width", Domain::Int),
        ],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_GateInterface".into(),
        transmitter_type: "GateInterface".into(),
        inheritor_type: None,
        inheriting: vec!["Length".into(), "Width".into(), "Pins".into()],
        // The paper suggests using relationship attributes for consistency
        // bookkeeping; give the binding a free-text note.
        attributes: vec![AttrDef::new("Note", Domain::Text)],
        constraints: vec![],
    })
    .unwrap();
    // WireType relates pins and has its own geometry attribute.
    c.register_object_type(ObjectTypeDef {
        // Anonymous member type for SubGates: inherits the component
        // interface and adds a placement.
        name: "GateImplementation.SubGates".into(),
        inheritor_in: vec!["AllOf_GateInterface".into()],
        attributes: vec![AttrDef::new("GateLocation", Domain::Point)],
        ..Default::default()
    })
    .unwrap();
    c.register_rel_type(RelTypeDef {
        name: "WireType".into(),
        participants: vec![
            crate::schema::ParticipantSpec::one("Pin1", "PinType"),
            crate::schema::ParticipantSpec::one("Pin2", "PinType"),
        ],
        attributes: vec![AttrDef::new(
            "Corners",
            Domain::ListOf(Box::new(Domain::Point)),
        )],
        subclasses: vec![],
        subrels: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "GateImplementation".into(),
        inheritor_in: vec!["AllOf_GateInterface".into()],
        attributes: vec![
            AttrDef::new("Function", Domain::MatrixOf(Box::new(Domain::Bool))),
            AttrDef::new("TimeBehavior", Domain::Int),
        ],
        subclasses: vec![SubclassSpec {
            name: "SubGates".into(),
            element_type: "GateImplementation.SubGates".into(),
        }],
        subrels: vec![SubrelSpec {
            name: "Wires".into(),
            rel_type: "WireType".into(),
            member_constraints: vec![Constraint::named(
                "wire endpoints in pins",
                Expr::bin(
                    BinOp::And,
                    Expr::bin(
                        BinOp::Or,
                        Expr::InClass {
                            item: Box::new(Expr::Path(PathExpr::var_path(REL_VAR, &["Pin1"]))),
                            class: PathExpr::self_path(&["Pins"]),
                        },
                        Expr::InClass {
                            item: Box::new(Expr::Path(PathExpr::var_path(REL_VAR, &["Pin1"]))),
                            class: PathExpr::self_path(&["SubGates", "Pins"]),
                        },
                    ),
                    Expr::bin(
                        BinOp::Or,
                        Expr::InClass {
                            item: Box::new(Expr::Path(PathExpr::var_path(REL_VAR, &["Pin2"]))),
                            class: PathExpr::self_path(&["Pins"]),
                        },
                        Expr::InClass {
                            item: Box::new(Expr::Path(PathExpr::var_path(REL_VAR, &["Pin2"]))),
                            class: PathExpr::self_path(&["SubGates", "Pins"]),
                        },
                    ),
                ),
            )],
        }],
        constraints: vec![],
    })
    .unwrap();
    // Tailored permeability (§4.2): expose TimeBehavior of implementations.
    c.register_inher_rel_type(InherRelTypeDef {
        name: "SomeOf_Gate".into(),
        transmitter_type: "GateImplementation".into(),
        inheritor_type: None,
        inheriting: vec![
            "Length".into(),
            "Width".into(),
            "TimeBehavior".into(),
            "Pins".into(),
        ],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "TimedComposite".into(),
        inheritor_in: vec!["SomeOf_Gate".into()],
        ..Default::default()
    })
    .unwrap();
    c
}

fn store() -> ObjectStore {
    ObjectStore::new(chip_catalog()).unwrap()
}

/// Interface with two pins; returns (interface, pin_in, pin_out).
fn make_interface(st: &mut ObjectStore, len: i64) -> (Surrogate, Surrogate, Surrogate) {
    let i = st
        .create_object(
            "GateInterface",
            vec![("Length", Value::Int(len)), ("Width", Value::Int(4))],
        )
        .unwrap();
    // Pins live on the *abstract* level in the paper; for most tests the
    // two-level split is exercised separately, so give this interface its
    // own hierarchy parent with pins.
    let abstract_if = st.create_object("GateInterface_I", vec![]).unwrap();
    let pin_in = st
        .create_subobject(
            abstract_if,
            "Pins",
            vec![("InOut", Value::Enum("IN".into()))],
        )
        .unwrap();
    let pin_out = st
        .create_subobject(
            abstract_if,
            "Pins",
            vec![("InOut", Value::Enum("OUT".into()))],
        )
        .unwrap();
    st.bind("AllOf_GateInterface_I", abstract_if, i, vec![])
        .unwrap();
    (i, pin_in, pin_out)
}

// ----------------------------------------------------------------------
// Basic objects, classes, attributes
// ----------------------------------------------------------------------

#[test]
fn create_and_read_plain_object() {
    let mut st = store();
    let g = st
        .create_object("GateInterface", vec![("Length", Value::Int(9))])
        .unwrap();
    assert_eq!(st.attr(g, "Length").unwrap(), Value::Int(9));
    assert_eq!(
        st.attr(g, "Width").unwrap(),
        Value::Missing,
        "unset local attr"
    );
    assert!(matches!(
        st.attr(g, "Bogus"),
        Err(CoreError::NoSuchAttribute { .. })
    ));
}

#[test]
fn domain_checked_on_write() {
    let mut st = store();
    let g = st.create_object("GateInterface", vec![]).unwrap();
    let err = st.set_attr(g, "Length", Value::Bool(true)).unwrap_err();
    assert!(matches!(err, CoreError::DomainMismatch { .. }));
    // Matrix domain enforced.
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    let ok = Value::Matrix(vec![vec![Value::Bool(true), Value::Bool(false)]]);
    st.set_attr(imp, "Function", ok).unwrap();
    let ragged = Value::Matrix(vec![vec![Value::Bool(true)], vec![]]);
    assert!(st.set_attr(imp, "Function", ragged).is_err());
}

#[test]
fn classes_group_objects_of_one_type() {
    let mut st = store();
    st.create_class("StandardGates", "GateInterface").unwrap();
    st.create_class("CustomGates", "GateInterface").unwrap(); // same type, second class
    let a = st.create_in_class("StandardGates", vec![]).unwrap();
    let b = st.create_in_class("CustomGates", vec![]).unwrap();
    assert_eq!(st.class_members("StandardGates").unwrap(), &[a]);
    assert_eq!(st.class_members("CustomGates").unwrap(), &[b]);
    // Type mismatch rejected.
    let pin_owner = st.create_object("GateInterface_I", vec![]).unwrap();
    let pin = st.create_subobject(pin_owner, "Pins", vec![]).unwrap();
    assert!(matches!(
        st.add_to_class("StandardGates", pin),
        Err(CoreError::TypeMismatch { .. })
    ));
    // Duplicate class name rejected.
    assert!(st.create_class("StandardGates", "GateInterface").is_err());
}

// ----------------------------------------------------------------------
// Value inheritance (§4.1–4.2)
// ----------------------------------------------------------------------

#[test]
fn inheritor_sees_transmitter_values() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    assert_eq!(st.attr(imp, "Width").unwrap(), Value::Int(4));
}

#[test]
fn transmitter_update_instantly_visible() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    st.set_attr(interface, "Length", Value::Int(42)).unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(42));
}

#[test]
fn inherited_attr_is_read_only() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    let err = st.set_attr(imp, "Length", Value::Int(1)).unwrap_err();
    assert!(matches!(err, CoreError::InheritedReadOnly { .. }));
    // ...even when unbound: the attribute still is not local.
    let unbound = st.create_object("GateImplementation", vec![]).unwrap();
    let err = st.set_attr(unbound, "Length", Value::Int(1)).unwrap_err();
    assert!(matches!(err, CoreError::InheritedReadOnly { .. }));
}

#[test]
fn unbound_inheritor_inherits_structure_only() {
    let mut st = store();
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Missing);
    assert_eq!(st.subclass_members(imp, "Pins").unwrap(), vec![]);
}

#[test]
fn two_level_hierarchy_resolves_transitively() {
    let mut st = store();
    let (interface, pin_in, pin_out) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    // Pins flow GateInterface_I → GateInterface → GateImplementation.
    let pins = st.subclass_members(imp, "Pins").unwrap();
    assert_eq!(pins, vec![pin_in, pin_out]);
    // Each hop counted.
    let stats = st.stats();
    assert!(stats.hops >= 2, "expected ≥2 hops, got {stats:?}");
}

#[test]
fn permeability_is_selective() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st
        .create_object("GateImplementation", vec![("TimeBehavior", Value::Int(7))])
        .unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    // Function/TimeBehavior are NOT in AllOf_GateInterface's inheriting
    // clause, so a composite bound via SomeOf_Gate sees TimeBehavior but a
    // plain interface user cannot; and nothing flows backwards.
    let composite = st.create_object("TimedComposite", vec![]).unwrap();
    st.bind("SomeOf_Gate", imp, composite, vec![]).unwrap();
    assert_eq!(st.attr(composite, "TimeBehavior").unwrap(), Value::Int(7));
    assert_eq!(
        st.attr(composite, "Length").unwrap(),
        Value::Int(10),
        "re-exported"
    );
    // `Function` is not permeable through SomeOf_Gate.
    assert!(matches!(
        st.attr(composite, "Function"),
        Err(CoreError::NoSuchAttribute { .. })
    ));
}

#[test]
fn binding_validations() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    // Wrong transmitter type.
    let err = st
        .bind("AllOf_GateInterface", imp, imp, vec![])
        .unwrap_err();
    assert!(matches!(err, CoreError::TypeMismatch { .. }));
    // Inheritor type must declare inheritor-in.
    let iface2 = st.create_object("GateInterface", vec![]).unwrap();
    let err = st
        .bind("AllOf_GateInterface", interface, iface2, vec![])
        .unwrap_err();
    assert!(matches!(err, CoreError::NotAnInheritor { .. }));
    // Double binding rejected.
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    let (interface2, ..) = make_interface(&mut st, 11);
    let err = st
        .bind("AllOf_GateInterface", interface2, imp, vec![])
        .unwrap_err();
    assert!(matches!(err, CoreError::AlreadyBound { .. }));
}

#[test]
fn object_level_cycle_rejected() {
    let mut st = store();
    // TimedComposite inherits from GateImplementation via SomeOf_Gate;
    // a GateImplementation cannot (even transitively) inherit from a
    // composite that inherits from it. Build the direct self-cycle instead:
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    // Self-binding requires imp to be its own transmitter type — it is not
    // (transmitter must be GateInterface), so use SomeOf_Gate where the
    // transmitter type is GateImplementation and the inheritor may be any.
    // imp is not inheritor-in SomeOf_Gate, so craft the chain:
    let composite = st.create_object("TimedComposite", vec![]).unwrap();
    st.bind("SomeOf_Gate", imp, composite, vec![]).unwrap();
    // Now try to make `imp` inherit from something fed by `composite` —
    // there is no such relationship in this schema, so instead check the
    // direct cycle: binding composite → composite.
    let err = st.bind("SomeOf_Gate", imp, composite, vec![]).unwrap_err();
    assert!(matches!(err, CoreError::AlreadyBound { .. }));
    // Direct self-cycle via matching types:
    let imp2 = st.create_object("GateImplementation", vec![]).unwrap();
    let composite2 = st.create_object("TimedComposite", vec![]).unwrap();
    st.bind("SomeOf_Gate", imp2, composite2, vec![]).unwrap();
    assert!(st.bind("SomeOf_Gate", imp2, composite2, vec![]).is_err());
}

#[test]
fn binding_carries_relationship_attributes() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    let rel = st
        .bind(
            "AllOf_GateInterface",
            interface,
            imp,
            vec![("Note", Value::Str("v1 binding".into()))],
        )
        .unwrap();
    assert_eq!(
        st.attr(rel, "Note").unwrap(),
        Value::Str("v1 binding".into())
    );
    // The relationship object is typed and navigable.
    let o = st.object(rel).unwrap();
    assert_eq!(o.type_name, "AllOf_GateInterface");
    assert_eq!(o.transmitter(), Some(interface));
    assert_eq!(o.inheritor(), Some(imp));
}

#[test]
fn unbind_restores_structure_only_view() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    let rel = st
        .bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    st.unbind(rel).unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Missing);
    assert!(st.binding_of(imp, "AllOf_GateInterface").is_none());
    assert!(st.inheritance_rels_of(interface).is_empty());
    // Rebinding to another transmitter now works.
    let (interface2, ..) = make_interface(&mut st, 20);
    st.bind("AllOf_GateInterface", interface2, imp, vec![])
        .unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(20));
}

// ----------------------------------------------------------------------
// Adaptation flags (§2: updates are transmitted, inheritor must adapt)
// ----------------------------------------------------------------------

#[test]
fn transmitter_update_flags_adaptation() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    let rel = st
        .bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    assert!(!st.needs_adaptation(rel).unwrap());
    st.set_attr(interface, "Length", Value::Int(11)).unwrap();
    assert!(st.needs_adaptation(rel).unwrap());
    let events = st.adaptation_log();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].item, "Length");
    assert_eq!(events[0].inheritor, imp);
    st.acknowledge_adaptation(rel).unwrap();
    assert!(!st.needs_adaptation(rel).unwrap());
}

#[test]
fn non_permeable_update_does_not_flag() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st
        .create_object("GateImplementation", vec![("TimeBehavior", Value::Int(1))])
        .unwrap();
    let rel = st
        .bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    // TimeBehavior is local to the implementation; updating it flags nothing.
    st.set_attr(imp, "TimeBehavior", Value::Int(2)).unwrap();
    assert!(!st.needs_adaptation(rel).unwrap());
    assert!(st.adaptation_log().is_empty());
}

#[test]
fn adaptation_propagates_through_hierarchy() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    let rel1 = st
        .bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    let composite = st.create_object("TimedComposite", vec![]).unwrap();
    let rel2 = st.bind("SomeOf_Gate", imp, composite, vec![]).unwrap();
    // Length flows interface → imp → composite; both bindings are flagged.
    st.set_attr(interface, "Length", Value::Int(99)).unwrap();
    assert!(st.needs_adaptation(rel1).unwrap());
    assert!(st.needs_adaptation(rel2).unwrap());
    assert_eq!(st.adaptation_events_since(0).len(), 2);
    // TimeBehavior is local to imp and permeable only through SomeOf_Gate.
    st.set_attr(imp, "TimeBehavior", Value::Int(5)).unwrap();
    let events = st.adaptation_log();
    assert_eq!(events.last().unwrap().item, "TimeBehavior");
    assert_eq!(events.last().unwrap().rel_object, rel2);
}

// ----------------------------------------------------------------------
// Complex objects: subobjects, subrels, wires (§3, Figure 1)
// ----------------------------------------------------------------------

#[test]
fn subobjects_cascade_delete_with_owner() {
    let mut st = store();
    let iface = st.create_object("GateInterface_I", vec![]).unwrap();
    let p1 = st.create_subobject(iface, "Pins", vec![]).unwrap();
    let p2 = st.create_subobject(iface, "Pins", vec![]).unwrap();
    assert_eq!(st.object_count(), 3);
    st.delete(iface).unwrap();
    assert_eq!(st.object_count(), 0);
    assert!(st.object(p1).is_err());
    assert!(st.object(p2).is_err());
}

#[test]
fn cannot_create_into_inherited_subclass() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    // Pins is inherited in GateImplementation — read-only view.
    let err = st.create_subobject(imp, "Pins", vec![]).unwrap_err();
    assert!(matches!(err, CoreError::InheritedReadOnly { .. }));
}

#[test]
fn wires_relate_pins_across_nesting_levels() {
    let mut st = store();
    // Build a flip-flop-like implementation: two subgates, wires between
    // their pins (Figure 1b).
    let (interface, ..) = make_interface(&mut st, 10);
    let ff = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, ff, vec![])
        .unwrap();

    // Two NOR subgates, each bound to its own interface with pins.
    let (nor_if, nor_in, nor_out) = make_interface(&mut st, 3);
    let sub1 = st
        .create_subobject(
            ff,
            "SubGates",
            vec![("GateLocation", Value::Point { x: 0, y: 0 })],
        )
        .unwrap();
    st.bind("AllOf_GateInterface", nor_if, sub1, vec![])
        .unwrap();

    // Wire from the subgate's output pin to its input pin (silly but legal).
    let wire = st
        .create_subrel(
            ff,
            "Wires",
            vec![("Pin1", vec![nor_out]), ("Pin2", vec![nor_in])],
            vec![("Corners", Value::List(vec![Value::Point { x: 1, y: 1 }]))],
        )
        .unwrap();
    assert_eq!(
        st.object(wire).unwrap().participants("Pin1"),
        Some(&[nor_out][..])
    );

    // Constraint: endpoints must be in Pins or SubGates.Pins of the owner.
    let violations = st.check_constraints(ff).unwrap();
    assert!(
        violations.is_empty(),
        "wire endpoints are subgate pins: {violations:?}"
    );

    // A wire to a foreign pin violates the `where` clause.
    let (_, foreign_pin, _) = make_interface(&mut st, 9);
    st.create_subrel(
        ff,
        "Wires",
        vec![("Pin1", vec![foreign_pin]), ("Pin2", vec![nor_in])],
        vec![],
    )
    .unwrap();
    let violations = st.check_constraints(ff).unwrap();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].constraint, "wire endpoints in pins");
}

#[test]
fn participant_validation() {
    let mut st = store();
    let (_, pin_in, pin_out) = make_interface(&mut st, 10);
    // Wrong cardinality.
    let err = st
        .create_rel("WireType", vec![("Pin1", vec![pin_in])], vec![])
        .unwrap_err();
    assert!(err.to_string().contains("Pin2"), "{err}");
    // Wrong participant type.
    let iface = st.create_object("GateInterface", vec![]).unwrap();
    let err = st
        .create_rel(
            "WireType",
            vec![("Pin1", vec![pin_in]), ("Pin2", vec![iface])],
            vec![],
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::TypeMismatch { .. }));
    // Unknown role.
    let err = st
        .create_rel(
            "WireType",
            vec![
                ("Pin1", vec![pin_in]),
                ("Pin2", vec![pin_out]),
                ("Pin3", vec![pin_in]),
            ],
            vec![],
        )
        .unwrap_err();
    assert!(err.to_string().contains("Pin3"), "{err}");
}

#[test]
fn deleting_participant_deletes_relationship() {
    let mut st = store();
    let (abstract_if, pin_in, pin_out) = {
        let s = &mut st;
        let a = s.create_object("GateInterface_I", vec![]).unwrap();
        let p1 = s.create_subobject(a, "Pins", vec![]).unwrap();
        let p2 = s.create_subobject(a, "Pins", vec![]).unwrap();
        (a, p1, p2)
    };
    let wire = st
        .create_rel(
            "WireType",
            vec![("Pin1", vec![pin_in]), ("Pin2", vec![pin_out])],
            vec![],
        )
        .unwrap();
    assert!(st.object(wire).is_ok());
    // Deleting the interface cascades to pins, which deletes the wire.
    st.delete(abstract_if).unwrap();
    assert!(st.object(wire).is_err());
    assert_eq!(st.object_count(), 0);
}

// ----------------------------------------------------------------------
// Deletion protection for transmitters
// ----------------------------------------------------------------------

#[test]
fn transmitter_protected_from_delete() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    let err = st.delete(interface).unwrap_err();
    assert!(matches!(err, CoreError::TransmitterInUse { .. }));
    // The inheritor can always be deleted.
    st.delete(imp).unwrap();
    // Now the interface too.
    st.delete(interface).unwrap();
}

#[test]
fn delete_force_dissolves_bindings_with_notification() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    st.delete_force(interface).unwrap();
    assert!(st.object(imp).is_ok(), "inheritor survives");
    assert_eq!(
        st.attr(imp, "Length").unwrap(),
        Value::Missing,
        "now unbound"
    );
    let log = st.adaptation_log();
    let last = log.last().unwrap();
    assert_eq!(last.item, "<deleted>");
    assert_eq!(last.inheritor, imp);
}

#[test]
fn delete_subtree_containing_both_sides_is_allowed() {
    let mut st = store();
    // A composite whose subgate inherits from an interface that is ALSO a
    // subobject of the same composite cannot happen in this schema; instead
    // check: deleting the whole implementation tree while a subgate is bound
    // to an external interface works (the subgate is the *inheritor*).
    let (interface, ..) = make_interface(&mut st, 10);
    let ff = st.create_object("GateImplementation", vec![]).unwrap();
    let sub = st
        .create_subobject(
            ff,
            "SubGates",
            vec![("GateLocation", Value::Point { x: 1, y: 2 })],
        )
        .unwrap();
    st.bind("AllOf_GateInterface", interface, sub, vec![])
        .unwrap();
    st.delete(ff).unwrap();
    assert!(st.object(sub).is_err());
    // Binding dissolved: interface no longer transmits.
    assert!(st.inheritance_rels_of(interface).is_empty());
    assert!(st.object(interface).is_ok());
}

// ----------------------------------------------------------------------
// Stats and cache
// ----------------------------------------------------------------------

#[test]
fn stats_count_local_vs_inherited_reads() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    st.reset_stats();
    st.attr(interface, "Length").unwrap(); // local
    st.attr(imp, "Length").unwrap(); // 1 hop
    let stats = st.stats();
    assert_eq!(stats.local_reads, 1);
    assert_eq!(stats.inherited_reads, 1);
    assert_eq!(stats.hops, 1);
}

#[test]
fn schema_cache_toggle_preserves_semantics() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    let with_cache = st.attr(imp, "Length").unwrap();
    st.set_schema_cache(false);
    let without_cache = st.attr(imp, "Length").unwrap();
    assert_eq!(with_cache, without_cache);
    st.set_schema_cache(true);
}

// ----------------------------------------------------------------------
// Property-based: random interface/implementation populations
// ----------------------------------------------------------------------

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Whatever sequence of transmitter updates happens, every bound
        /// inheritor always reads exactly the transmitter's current value,
        /// and unbound inheritors always read Missing.
        #[test]
        fn view_semantics_always_hold(updates in proptest::collection::vec((0usize..4, -1000i64..1000), 1..40)) {
            let mut st = store();
            let mut interfaces = Vec::new();
            let mut bound = Vec::new();
            for k in 0..4 {
                let (i, ..) = make_interface(&mut st, k as i64);
                let imp = st.create_object("GateImplementation", vec![]).unwrap();
                st.bind("AllOf_GateInterface", i, imp, vec![]).unwrap();
                interfaces.push(i);
                bound.push(imp);
            }
            let unbound = st.create_object("GateImplementation", vec![]).unwrap();
            for (idx, val) in updates {
                st.set_attr(interfaces[idx], "Length", Value::Int(val)).unwrap();
                for k in 0..4 {
                    let expect = st.attr(interfaces[k], "Length").unwrap();
                    prop_assert_eq!(st.attr(bound[k], "Length").unwrap(), expect);
                }
                prop_assert_eq!(st.attr(unbound, "Length").unwrap(), Value::Missing);
            }
        }

        /// Cascade delete never leaves dangling subclass members, bindings,
        /// or participants.
        #[test]
        fn no_dangling_references_after_delete(seed in 0u64..500) {
            let mut st = store();
            let (i1, p1, _) = make_interface(&mut st, 1);
            let (i2, _, p2b) = make_interface(&mut st, 2);
            let imp = st.create_object("GateImplementation", vec![]).unwrap();
            st.bind("AllOf_GateInterface", i1, imp, vec![]).unwrap();
            let _wire = st
                .create_rel("WireType", vec![("Pin1", vec![p1]), ("Pin2", vec![p2b])], vec![])
                .unwrap();
            // Delete one of three roots, pseudo-randomly.
            let roots = [i2, imp];
            let target = roots[(seed % 2) as usize];
            let res = st.delete(target);
            if target == imp {
                prop_assert!(res.is_ok());
            }
            // Referential integrity: every subclass member, binding and
            // participant of every live object resolves.
            for s in st.surrogates().collect::<Vec<_>>() {
                let o = st.object(s).unwrap().clone();
                for m in o.all_subclass_members() {
                    prop_assert!(st.object(m).is_ok(), "dangling subclass member");
                }
                for rel in o.bindings.values() {
                    prop_assert!(st.object(*rel).is_ok(), "dangling binding");
                }
                if let ObjectKind::Relationship { participants } = &o.kind {
                    for members in participants.values() {
                        for m in members {
                            prop_assert!(st.object(*m).is_ok(), "dangling participant");
                        }
                    }
                }
            }
            let problems = st.verify_integrity();
            prop_assert!(problems.is_empty(), "{:?}", problems);
        }
    }
}

#[test]
fn adaptation_tracking_can_be_disabled() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    let rel = st
        .bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    st.set_adaptation_tracking(false);
    st.set_attr(interface, "Length", Value::Int(11)).unwrap();
    // View semantics unaffected; no flag, no event.
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(11));
    assert!(!st.needs_adaptation(rel).unwrap());
    assert!(st.adaptation_log().is_empty());
    st.set_adaptation_tracking(true);
    st.set_attr(interface, "Length", Value::Int(12)).unwrap();
    assert!(st.needs_adaptation(rel).unwrap());
}

#[test]
fn select_queries_effective_data() {
    let mut st = store();
    let (i1, ..) = make_interface(&mut st, 10);
    let (_i2, ..) = make_interface(&mut st, 30);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", i1, imp, vec![]).unwrap();

    // Query over local attributes of interfaces.
    let q = Expr::bin(
        BinOp::Lt,
        Expr::Path(PathExpr::self_path(&["Length"])),
        Expr::int(20),
    );
    let hits = st.select("GateInterface", &q).unwrap();
    assert_eq!(hits, vec![i1]);

    // Query over *inherited* attributes of implementations.
    let hits = st.select("GateImplementation", &q).unwrap();
    assert_eq!(hits, vec![imp], "predicate sees inherited Length = 10");

    // Unknown type rejected.
    assert!(st.select("Ghost", &q).is_err());
}

#[test]
fn classes_of_reports_memberships() {
    let mut st = store();
    st.create_class("Lib", "GateInterface").unwrap();
    st.create_class("Std", "GateInterface").unwrap();
    let g = st.create_in_class("Lib", vec![]).unwrap();
    st.add_to_class("Std", g).unwrap();
    assert_eq!(st.classes_of(g), vec!["Lib", "Std"]);
    let lone = st.create_object("GateInterface", vec![]).unwrap();
    assert!(st.classes_of(lone).is_empty());
}

#[test]
fn inheritance_rel_constraints_can_navigate_both_ends() {
    // An inher-rel type whose constraint restricts the transmitter:
    // transmitter.Length <= 100 (e.g. only small gates may be components).
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![AttrDef::new("Length", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_SmallIf".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["Length".into()],
        attributes: vec![],
        constraints: vec![Constraint::named(
            "component must be small",
            Expr::bin(
                BinOp::Le,
                Expr::Path(PathExpr::self_path(&["transmitter", "Length"])),
                Expr::int(100),
            ),
        )],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "User".into(),
        inheritor_in: vec!["AllOf_SmallIf".into()],
        ..Default::default()
    })
    .unwrap();
    let mut st = ObjectStore::new(c).unwrap();
    let small = st
        .create_object("If", vec![("Length", Value::Int(50))])
        .unwrap();
    let user = st.create_object("User", vec![]).unwrap();
    let rel = st.bind("AllOf_SmallIf", small, user, vec![]).unwrap();
    assert!(st.check_constraints(rel).unwrap().is_empty());
    // Growing the transmitter breaks the relationship's own constraint.
    st.set_attr(small, "Length", Value::Int(500)).unwrap();
    let v = st.check_constraints(rel).unwrap();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].constraint, "component must be small");
}

// ----------------------------------------------------------------------
// Recorded deletion / undelete
// ----------------------------------------------------------------------

#[test]
fn undelete_restores_a_complex_subtree_exactly() {
    let mut st = store();
    // Flip-flop with subgate bound to an external interface + a wire.
    let (interface, pin_in, pin_out) = make_interface(&mut st, 10);
    let ff = st.create_object("GateImplementation", vec![]).unwrap();
    let sub = st
        .create_subobject(
            ff,
            "SubGates",
            vec![("GateLocation", Value::Point { x: 1, y: 2 })],
        )
        .unwrap();
    st.bind("AllOf_GateInterface", interface, sub, vec![])
        .unwrap();
    let wire = st
        .create_subrel(
            ff,
            "Wires",
            vec![("Pin1", vec![pin_in]), ("Pin2", vec![pin_out])],
            vec![],
        )
        .unwrap();
    let count_before = st.object_count();

    let rec = st.delete_recorded(ff).unwrap();
    assert!(st.object(ff).is_err());
    assert!(st.object(sub).is_err());
    assert!(st.object(wire).is_err(), "subrel member deleted with owner");
    assert!(
        st.inheritance_rels_of(interface).is_empty(),
        "binding dissolved"
    );

    st.undelete(rec).unwrap();
    assert_eq!(st.object_count(), count_before);
    // Structure restored: subclass membership, placement, inherited view,
    // wire participants.
    assert_eq!(st.subclass_members(ff, "SubGates").unwrap(), vec![sub]);
    assert_eq!(
        st.attr(sub, "GateLocation").unwrap(),
        Value::Point { x: 1, y: 2 }
    );
    assert_eq!(
        st.attr(sub, "Length").unwrap(),
        Value::Int(10),
        "binding restored"
    );
    assert_eq!(
        st.object(wire).unwrap().participants("Pin1"),
        Some(&[pin_in][..])
    );
    // Relationship index restored: deleting a pin kills the wire again.
    assert_eq!(st.relationships_of(pin_in), &[wire]);
    // Transmitter protection restored.
    assert!(matches!(
        st.delete(interface),
        Err(CoreError::TransmitterInUse { .. })
    ));
    assert!(
        st.verify_integrity().is_empty(),
        "{:?}",
        st.verify_integrity()
    );
}

#[test]
fn undelete_restores_class_memberships_and_owner_slot() {
    let mut st = store();
    st.create_class("Lib", "GateInterface_I").unwrap();
    let holder = st.create_in_class("Lib", vec![]).unwrap();
    let p1 = st.create_subobject(holder, "Pins", vec![]).unwrap();
    let p2 = st.create_subobject(holder, "Pins", vec![]).unwrap();
    // Delete just one pin and restore it.
    let rec = st.delete_recorded(p1).unwrap();
    assert_eq!(st.subclass_members(holder, "Pins").unwrap(), vec![p2]);
    st.undelete(rec).unwrap();
    let members = st.subclass_members(holder, "Pins").unwrap();
    assert_eq!(members.len(), 2);
    assert!(members.contains(&p1) && members.contains(&p2));
    // Whole-class object: delete + undelete keeps the class membership.
    let rec = st.delete_recorded(holder).unwrap();
    assert!(st.class_members("Lib").unwrap().is_empty());
    st.undelete(rec).unwrap();
    assert_eq!(st.class_members("Lib").unwrap(), &[holder]);
}

#[test]
fn deleting_an_inheritance_rel_object_directly_is_undeletable() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    let rel = st
        .bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    let rec = st.delete_recorded(rel).unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Missing);
    st.undelete(rec).unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    assert_eq!(st.binding_of(imp, "AllOf_GateInterface"), Some(rel));
}

// ----------------------------------------------------------------------
// Edge cases
// ----------------------------------------------------------------------

#[test]
fn operations_on_deleted_objects_error_cleanly() {
    let mut st = store();
    let g = st.create_object("GateInterface", vec![]).unwrap();
    st.delete(g).unwrap();
    assert!(matches!(
        st.attr(g, "Length"),
        Err(CoreError::NoSuchObject(_))
    ));
    assert!(matches!(
        st.set_attr(g, "Length", Value::Int(1)),
        Err(CoreError::NoSuchObject(_))
    ));
    assert!(matches!(st.delete(g), Err(CoreError::NoSuchObject(_))));
    assert!(matches!(
        st.check_constraints(g),
        Err(CoreError::NoSuchObject(_))
    ));
}

#[test]
fn unknown_subrel_and_rel_subclass_names_rejected() {
    let mut st = store();
    let ff = st.create_object("GateImplementation", vec![]).unwrap();
    assert!(matches!(
        st.create_subrel(ff, "Cables", vec![], vec![]),
        Err(CoreError::NoSuchSubclass { .. })
    ));
    let (_, p1, p2) = make_interface(&mut st, 3);
    let wire = st
        .create_rel(
            "WireType",
            vec![("Pin1", vec![p1]), ("Pin2", vec![p2])],
            vec![],
        )
        .unwrap();
    assert!(matches!(
        st.create_rel_subobject(wire, "Bolts", vec![]),
        Err(CoreError::NoSuchSubclass { .. })
    ));
}

#[test]
fn relationship_object_attributes_are_domain_checked() {
    let mut st = store();
    let (_, p1, p2) = make_interface(&mut st, 3);
    let wire = st
        .create_rel(
            "WireType",
            vec![("Pin1", vec![p1]), ("Pin2", vec![p2])],
            vec![],
        )
        .unwrap();
    // Corners is list-of Point.
    st.set_attr(
        wire,
        "Corners",
        Value::List(vec![Value::Point { x: 1, y: 1 }]),
    )
    .unwrap();
    assert!(matches!(
        st.set_attr(wire, "Corners", Value::List(vec![Value::Int(1)])),
        Err(CoreError::DomainMismatch { .. })
    ));
    assert!(matches!(
        st.set_attr(wire, "Voltage", Value::Int(5)),
        Err(CoreError::NoSuchAttribute { .. })
    ));
}

#[test]
fn unbind_rejects_non_relationship_objects() {
    let mut st = store();
    let g = st.create_object("GateInterface", vec![]).unwrap();
    assert!(matches!(st.unbind(g), Err(CoreError::TypeMismatch { .. })));
}

// ----------------------------------------------------------------------
// Resolution value cache
// ----------------------------------------------------------------------

#[test]
fn resolution_cache_memoizes_repeated_reads() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    st.reset_stats();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    let stats = st.stats();
    assert_eq!(stats.rescache_misses, 1, "first read walks the chain");
    assert_eq!(stats.rescache_hits, 2, "repeats answer from the cache");
    // The cached read does not re-walk: hop accounting stays at one walk.
    assert_eq!(stats.hops, 1);
}

#[test]
fn set_attr_invalidates_only_the_written_attribute() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    // Fill two inherited entries.
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    assert_eq!(st.attr(imp, "Width").unwrap(), Value::Int(4));
    let filled = st.resolution_cache_len();
    st.set_attr(interface, "Length", Value::Int(11)).unwrap();
    // Instant visibility through the cache (§4.1 view semantics)...
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(11));
    // ...while the untouched Width entry survived the invalidation.
    st.reset_stats();
    assert_eq!(st.attr(imp, "Width").unwrap(), Value::Int(4));
    assert_eq!(st.stats().rescache_hits, 1, "Width entry was not dropped");
    assert!(st.resolution_cache_len() >= filled - 1);
}

#[test]
fn non_permeable_write_does_not_invalidate_inheritors() {
    let mut st = store();
    let imp = st
        .create_object("GateImplementation", vec![("TimeBehavior", Value::Int(3))])
        .unwrap();
    let composite = st.create_object("TimedComposite", vec![]).unwrap();
    st.bind("SomeOf_Gate", imp, composite, vec![]).unwrap();
    assert_eq!(st.attr(composite, "TimeBehavior").unwrap(), Value::Int(3));
    st.reset_stats();
    // `Function` is NOT in SomeOf_Gate's permeability list: the sweep must
    // not cross the relationship, so the composite's entry stays cached.
    st.set_attr(imp, "Function", Value::Matrix(vec![])).unwrap();
    assert_eq!(st.stats().rescache_invalidations, 0);
    assert_eq!(st.attr(composite, "TimeBehavior").unwrap(), Value::Int(3));
    assert_eq!(st.stats().rescache_hits, 1);
    // A permeable write does cross and drop the entry.
    st.set_attr(imp, "TimeBehavior", Value::Int(4)).unwrap();
    assert!(st.stats().rescache_invalidations >= 1);
    assert_eq!(st.attr(composite, "TimeBehavior").unwrap(), Value::Int(4));
}

#[test]
fn bind_unbind_undelete_keep_cache_coherent() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    // Unbound inheritor: Missing is cached too.
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Missing);
    let rel = st
        .bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    assert_eq!(
        st.attr(imp, "Length").unwrap(),
        Value::Int(10),
        "bind dropped the cached Missing"
    );
    st.unbind(rel).unwrap();
    assert_eq!(
        st.attr(imp, "Length").unwrap(),
        Value::Missing,
        "unbind dropped the cached resolution"
    );
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    // Recorded delete of the transmitter subtree, then restore.
    let rec = st.delete_recorded(imp).unwrap();
    st.undelete(rec).unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    st.set_attr(interface, "Length", Value::Int(12)).unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(12));
}

#[test]
fn resolution_cache_toggle_preserves_semantics() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", interface, imp, vec![])
        .unwrap();
    assert!(st.resolution_cache_enabled());
    let with_cache = st.attr(imp, "Length").unwrap();
    assert!(st.resolution_cache_len() > 0);
    st.set_resolution_cache(false);
    assert_eq!(st.resolution_cache_len(), 0, "disable clears the cache");
    let without_cache = st.attr(imp, "Length").unwrap();
    assert_eq!(with_cache, without_cache);
    st.reset_stats();
    st.attr(imp, "Length").unwrap();
    st.attr(imp, "Length").unwrap();
    let stats = st.stats();
    assert_eq!(stats.rescache_hits, 0, "disabled cache never answers");
    assert_eq!(stats.rescache_misses, 0, "disabled cache never fills");
    st.set_resolution_cache(true);
    assert_eq!(st.attr(imp, "Length").unwrap(), with_cache);
}

// ----------------------------------------------------------------------
// Bind atomicity (regression: failed rel-attr validation used to leave a
// half-applied binding behind)
// ----------------------------------------------------------------------

#[test]
fn failed_bind_leaves_store_unchanged() {
    let mut st = store();
    let (interface, ..) = make_interface(&mut st, 10);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    let count_before = st.object_count();

    // Unknown relationship attribute.
    let err = st
        .bind(
            "AllOf_GateInterface",
            interface,
            imp,
            vec![("Bogus", Value::Int(1))],
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::NoSuchAttribute { .. }));
    // Domain mismatch on a known relationship attribute (Note: text).
    let err = st
        .bind(
            "AllOf_GateInterface",
            interface,
            imp,
            vec![("Note", Value::Int(1))],
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::DomainMismatch { .. }));

    // Nothing happened: no rel object, no binding, no index entry.
    assert_eq!(st.object_count(), count_before);
    assert!(st.inheritance_rels_of(interface).is_empty());
    assert_eq!(st.binding_of(imp, "AllOf_GateInterface"), None);
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Missing);
    assert!(st.verify_integrity().is_empty());

    // And the store still accepts a correct bind afterwards.
    st.bind(
        "AllOf_GateInterface",
        interface,
        imp,
        vec![("Note", Value::Str("ok".into()))],
    )
    .unwrap();
    assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
}

// ----------------------------------------------------------------------
// Cycle guard (regression: resolution used to spin forever on a corrupt
// store with a binding cycle)
// ----------------------------------------------------------------------

#[test]
fn corrupt_binding_cycle_errors_instead_of_hanging() {
    // `bind` rejects cycles, so forge one the way a corrupted persisted
    // image would present it: restore hand-crafted records.
    let imp = Surrogate(1);
    let rel = Surrogate(2);
    let mut imp_obj = ObjectData::plain(imp, "GateImplementation");
    imp_obj.bindings.insert("AllOf_GateInterface".into(), rel);
    let rel_obj = ObjectData {
        surrogate: rel,
        type_name: "AllOf_GateInterface".into(),
        kind: ObjectKind::InheritanceRel {
            transmitter: imp, // cycle: imp transmits to itself
            inheritor: imp,
            needs_adaptation: false,
        },
        owner: None,
        attrs: Default::default(),
        subclasses: Default::default(),
        bindings: Default::default(),
    };
    let st = ObjectStore::restore(chip_catalog(), vec![imp_obj, rel_obj], vec![]).unwrap();

    let err = st.attr(imp, "Length").unwrap_err();
    assert!(
        matches!(&err, CoreError::EvalError(msg) if msg.contains("cycle")),
        "got {err:?}"
    );
    let err = st.resolution_chain(imp, "Length").unwrap_err();
    assert!(matches!(err, CoreError::EvalError(_)));
    // Integrity verification names the cycle.
    let problems = st.verify_integrity();
    assert!(problems.iter().any(|p| p.contains("cycle")), "{problems:?}");
}

// ----------------------------------------------------------------------
// Subrels on relationship types (regression: `local_subrel_spec` ignored
// relationship types, asymmetric with `local_subclass_spec`)
// ----------------------------------------------------------------------

fn bus_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "PinType".into(),
        attributes: vec![AttrDef::new("Id", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_rel_type(RelTypeDef {
        name: "WireType".into(),
        participants: vec![
            crate::schema::ParticipantSpec::one("Pin1", "PinType"),
            crate::schema::ParticipantSpec::one("Pin2", "PinType"),
        ],
        attributes: vec![],
        subclasses: vec![],
        subrels: vec![],
        constraints: vec![],
    })
    .unwrap();
    // A bus is itself a relationship — and owns its segment wires in a
    // local subrel, exactly as a complex object would.
    c.register_rel_type(RelTypeDef {
        name: "BusType".into(),
        participants: vec![
            crate::schema::ParticipantSpec::one("From", "PinType"),
            crate::schema::ParticipantSpec::one("To", "PinType"),
        ],
        attributes: vec![],
        subclasses: vec![],
        subrels: vec![SubrelSpec {
            name: "Segments".into(),
            rel_type: "WireType".into(),
            member_constraints: vec![],
        }],
        constraints: vec![],
    })
    .unwrap();
    c
}

#[test]
fn relationship_types_can_own_subrels() {
    let mut st = ObjectStore::new(bus_catalog()).unwrap();
    let p1 = st
        .create_object("PinType", vec![("Id", Value::Int(1))])
        .unwrap();
    let p2 = st
        .create_object("PinType", vec![("Id", Value::Int(2))])
        .unwrap();
    let bus = st
        .create_rel(
            "BusType",
            vec![("From", vec![p1]), ("To", vec![p2])],
            vec![],
        )
        .unwrap();
    // Before the fix this failed with NoSuchSubclass: the spec lookup only
    // consulted object types.
    let seg = st
        .create_subrel(
            bus,
            "Segments",
            vec![("Pin1", vec![p1]), ("Pin2", vec![p2])],
            vec![],
        )
        .unwrap();
    let owner = st.object(seg).unwrap().owner.clone().unwrap();
    assert_eq!(owner.parent, bus);
    assert_eq!(owner.subclass, "Segments");
    assert_eq!(st.subclass_members(bus, "Segments").unwrap(), vec![seg]);
    // Member and owner check clean; cascade delete still applies.
    assert!(st.check_all().unwrap().is_empty());
    st.delete(bus).unwrap();
    assert!(st.object(seg).is_err(), "segment deleted with owning bus");
    assert!(st.verify_integrity().is_empty());
}

#[test]
fn rel_type_subrel_referencing_unknown_rel_type_rejected() {
    let mut c = bus_catalog();
    c.register_rel_type(RelTypeDef {
        name: "BrokenBus".into(),
        participants: vec![crate::schema::ParticipantSpec::one("From", "PinType")],
        attributes: vec![],
        subclasses: vec![],
        subrels: vec![SubrelSpec {
            name: "Segments".into(),
            rel_type: "NoSuchWire".into(),
            member_constraints: vec![],
        }],
        constraints: vec![],
    })
    .unwrap();
    assert!(matches!(
        ObjectStore::new(c),
        Err(CoreError::InvalidSchema { .. })
    ));
}

#[test]
fn healthy_steel_store_passes_integrity_check() {
    // (Uses the bench generator's shape by hand: a small §5 structure.)
    let mut st = store();
    let (i, p_in, p_out) = make_interface(&mut st, 4);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", i, imp, vec![]).unwrap();
    st.create_rel(
        "WireType",
        vec![("Pin1", vec![p_in]), ("Pin2", vec![p_out])],
        vec![],
    )
    .unwrap();
    assert!(st.verify_integrity().is_empty());
}

// ----------------------------------------------------------------------
// Sharded resolution cache + class-extent index
// ----------------------------------------------------------------------

#[test]
fn resolution_cache_shard_count_is_configurable_and_semantics_identical() {
    for shards in [1usize, 3, 16] {
        let mut st = ObjectStore::with_resolution_cache_shards(chip_catalog(), shards).unwrap();
        assert_eq!(st.resolution_cache_shards(), shards.next_power_of_two());
        let (i, _, _) = make_interface(&mut st, 10);
        let imp = st.create_object("GateImplementation", vec![]).unwrap();
        st.bind("AllOf_GateInterface", i, imp, vec![]).unwrap();
        // warm → hit → invalidate → re-resolve, at every shard count.
        assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
        assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
        st.set_attr(i, "Length", Value::Int(11)).unwrap();
        assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(11));
        assert!(st.stats().rescache_hits >= 1);
        assert!(st.stats().rescache_invalidations >= 1);
    }
}

#[test]
fn transmitter_update_invalidates_inheritors_in_different_shards() {
    let mut st = store();
    let (i, _, _) = make_interface(&mut st, 10);
    // Bind enough implementations that at least two provably land in
    // different cache shards (16 shards, Fibonacci-hashed surrogates).
    let imps: Vec<Surrogate> = (0..24)
        .map(|_| {
            let imp = st.create_object("GateImplementation", vec![]).unwrap();
            st.bind("AllOf_GateInterface", i, imp, vec![]).unwrap();
            imp
        })
        .collect();
    let shards: std::collections::HashSet<usize> = imps
        .iter()
        .map(|s| st.resolution_cache_shard_of(*s))
        .collect();
    assert!(
        shards.len() >= 2,
        "fixture must spread inheritors over shards, got {shards:?}"
    );
    // Warm every inheritor's cache entry, then update the transmitter:
    // the sweep must reach all of them, across every shard.
    for &imp in &imps {
        assert_eq!(st.attr(imp, "Length").unwrap(), Value::Int(10));
    }
    st.set_attr(i, "Length", Value::Int(77)).unwrap();
    for &imp in &imps {
        assert_eq!(
            st.attr(imp, "Length").unwrap(),
            Value::Int(77),
            "stale cached value survived a cross-shard invalidation"
        );
    }
}

#[test]
fn extent_index_tracks_create_delete_and_undelete() {
    let mut st = store();
    let (i, _, _) = make_interface(&mut st, 9);
    let imp = st.create_object("GateImplementation", vec![]).unwrap();
    st.bind("AllOf_GateInterface", i, imp, vec![]).unwrap();
    assert_eq!(st.extent_of("GateImplementation"), vec![imp]);
    assert_eq!(st.extent_of("GateInterface"), vec![i]);
    assert!(st.verify_integrity().is_empty());

    let rec = st.delete_recorded(imp).unwrap();
    assert!(st.extent_of("GateImplementation").is_empty());
    assert!(st.verify_integrity().is_empty());

    st.undelete(rec).unwrap();
    assert_eq!(st.extent_of("GateImplementation"), vec![imp]);
    assert!(st.verify_integrity().is_empty());
    // select over the restored extent still resolves inherited values.
    let by_len = st
        .select(
            "GateImplementation",
            &Expr::eq(Expr::Path(PathExpr::self_path(&["Length"])), Expr::int(9)),
        )
        .unwrap();
    assert_eq!(by_len, vec![imp]);
}

#[test]
fn select_equality_fast_path_matches_interpreter() {
    let mut st = store();
    for k in 0..10 {
        st.create_object(
            "GateInterface",
            vec![("Length", Value::Int(k % 3)), ("Width", Value::Int(4))],
        )
        .unwrap();
        st.create_object("GateInterface_I", vec![]).unwrap(); // other-type noise
    }
    let path = Expr::Path(PathExpr::self_path(&["Length"]));
    let fast = st
        .select("GateInterface", &Expr::eq(path.clone(), Expr::int(1)))
        .unwrap();
    // Literal-on-the-left takes the same fast path.
    let flipped = st
        .select("GateInterface", &Expr::eq(Expr::int(1), path.clone()))
        .unwrap();
    // Force the interpreter with a shape the fast path does not match.
    let interpreted = st
        .select(
            "GateInterface",
            &Expr::Not(Box::new(Expr::Not(Box::new(Expr::eq(
                path.clone(),
                Expr::int(1),
            ))))),
        )
        .unwrap();
    assert_eq!(fast, interpreted);
    assert_eq!(flipped, interpreted);
    assert_eq!(fast.len(), 3);
    // Unknown attribute still errors exactly like the interpreter.
    let missing = Expr::eq(Expr::Path(PathExpr::self_path(&["Nope"])), Expr::int(1));
    assert!(st.select("GateInterface", &missing).is_err());
    // A type with no live objects selects empty without erroring.
    assert!(st
        .select("GateImplementation", &Expr::eq(path, Expr::int(1)))
        .unwrap()
        .is_empty());
}
