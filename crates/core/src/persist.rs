//! Persistence bridge: save/load an [`ObjectStore`] to the durable,
//! WAL-protected KV store of `ccdb-storage`.
//!
//! Layout: key 0 holds the serialized catalog, key 1 the class directory,
//! and each object lives at `OBJ_BASE + surrogate`. Objects are serialized
//! as JSON (one record per object), so individual object updates map to
//! individual transactional KV writes — [`save_object`] is what an
//! application calls after mutating one object inside a transaction.

use ccdb_storage::kv::{DurableKv, KvTx};

use crate::error::{CoreError, CoreResult};
use crate::object::ObjectData;
use crate::schema::Catalog;
use crate::store::ObjectStore;
use crate::surrogate::Surrogate;

/// Key of the catalog record.
pub const KEY_CATALOG: u64 = 0;
/// Key of the class-directory record.
pub const KEY_CLASSES: u64 = 1;
/// Objects are stored at `OBJ_BASE + surrogate`.
pub const OBJ_BASE: u64 = 16;

fn codec_err<E: std::fmt::Display>(e: E) -> CoreError {
    CoreError::Codec(e.to_string())
}

/// Key under which `surrogate`'s object record is stored.
pub fn object_key(surrogate: Surrogate) -> u64 {
    OBJ_BASE + surrogate.0
}

/// Serialized class directory entry.
type ClassRow = (String, String, Vec<Surrogate>);

/// Write the complete store (catalog, classes, all objects) in one
/// transaction.
pub fn save_store(store: &ObjectStore, kv: &DurableKv) -> CoreResult<()> {
    let tx = kv.begin()?;
    let cat = serde_json::to_vec(store.catalog()).map_err(codec_err)?;
    kv.put(tx, KEY_CATALOG, &cat)?;
    let classes: Vec<ClassRow> = store
        .classes_map()
        .iter()
        .map(|(name, def)| (name.clone(), def.type_name.clone(), def.members.clone()))
        .collect();
    kv.put(
        tx,
        KEY_CLASSES,
        &serde_json::to_vec(&classes).map_err(codec_err)?,
    )?;
    for (s, obj) in store.objects_map() {
        kv.put(
            tx,
            object_key(*s),
            &serde_json::to_vec(obj).map_err(codec_err)?,
        )?;
    }
    kv.commit(tx)?;
    Ok(())
}

/// Write one object record inside an existing transaction.
pub fn save_object(store: &ObjectStore, kv: &DurableKv, tx: KvTx, s: Surrogate) -> CoreResult<()> {
    let obj = store.object(s)?;
    kv.put(
        tx,
        object_key(s),
        &serde_json::to_vec(obj).map_err(codec_err)?,
    )?;
    Ok(())
}

/// Delete one object record inside an existing transaction.
pub fn delete_object(kv: &DurableKv, tx: KvTx, s: Surrogate) -> CoreResult<()> {
    kv.delete(tx, object_key(s))?;
    Ok(())
}

/// Load a complete store from the KV store.
pub fn load_store(kv: &DurableKv) -> CoreResult<ObjectStore> {
    let cat_bytes = kv
        .get(KEY_CATALOG)?
        .ok_or_else(|| CoreError::Storage("no catalog record; store never saved".into()))?;
    let catalog: Catalog = serde_json::from_slice(&cat_bytes).map_err(codec_err)?;
    let classes: Vec<ClassRow> = match kv.get(KEY_CLASSES)? {
        Some(bytes) => serde_json::from_slice(&bytes).map_err(codec_err)?,
        None => vec![],
    };
    let mut objects = Vec::new();
    for (key, bytes) in kv.scan()? {
        if key < OBJ_BASE {
            continue;
        }
        let obj: ObjectData = serde_json::from_slice(&bytes).map_err(codec_err)?;
        objects.push(obj);
    }
    let store = ObjectStore::restore(catalog, objects, classes)?;
    // A persisted store may have been edited (or corrupted) outside this
    // process; re-verify the structural invariants — notably the absence of
    // binding cycles — before handing it to resolution.
    let problems = store.verify_integrity();
    if !problems.is_empty() {
        return Err(CoreError::Storage(format!(
            "persisted store fails integrity verification ({} problem(s)): {}",
            problems.len(),
            problems.join("; ")
        )));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::{AttrDef, InherRelTypeDef, ObjectTypeDef, SubclassSpec};
    use crate::value::Value;

    fn sample_store() -> (ObjectStore, Surrogate, Surrogate) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "Pin".into(),
            attributes: vec![AttrDef::new("Id", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("Length", Domain::Int)],
            subclasses: vec![SubclassSpec {
                name: "Pins".into(),
                element_type: "Pin".into(),
            }],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["Length".into(), "Pins".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            ..Default::default()
        })
        .unwrap();
        let mut store = ObjectStore::new(c).unwrap();
        store.create_class("Interfaces", "If").unwrap();
        let interface = store
            .create_in_class("Interfaces", vec![("Length", Value::Int(5))])
            .unwrap();
        store
            .create_subobject(interface, "Pins", vec![("Id", Value::Int(1))])
            .unwrap();
        let implementation = store.create_object("Impl", vec![]).unwrap();
        store
            .bind("AllOf_If", interface, implementation, vec![])
            .unwrap();
        (store, interface, implementation)
    }

    #[test]
    fn save_and_load_roundtrip() {
        let (store, interface, implementation) = sample_store();
        let dir = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&store, &kv).unwrap();

        let loaded = load_store(&kv).unwrap();
        assert_eq!(loaded.object_count(), store.object_count());
        // Inheritance still resolves after reload.
        assert_eq!(
            loaded.attr(implementation, "Length").unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            loaded
                .subclass_members(implementation, "Pins")
                .unwrap()
                .len(),
            1
        );
        // Classes restored.
        assert_eq!(loaded.class_members("Interfaces").unwrap(), &[interface]);
        // Indexes restored: transmitter still protected from deletion.
        let mut loaded = loaded;
        assert!(matches!(
            loaded.delete(interface),
            Err(CoreError::TransmitterInUse { .. })
        ));
    }

    #[test]
    fn surrogates_continue_after_reload() {
        let (store, ..) = sample_store();
        let dir = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&store, &kv).unwrap();
        let mut loaded = load_store(&kv).unwrap();
        let fresh = loaded.create_object("If", vec![]).unwrap();
        assert!(
            store.surrogates().all(|s| s != fresh),
            "new surrogate must not collide with persisted ones"
        );
    }

    #[test]
    fn incremental_object_save() {
        let (mut store, interface, _) = sample_store();
        let dir = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&store, &kv).unwrap();

        store.set_attr(interface, "Length", Value::Int(99)).unwrap();
        let tx = kv.begin().unwrap();
        save_object(&store, &kv, tx, interface).unwrap();
        kv.commit(tx).unwrap();

        let loaded = load_store(&kv).unwrap();
        assert_eq!(loaded.attr(interface, "Length").unwrap(), Value::Int(99));
    }

    #[test]
    fn load_without_catalog_fails_cleanly() {
        let dir = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(dir.path()).unwrap();
        assert!(matches!(load_store(&kv), Err(CoreError::Storage(_))));
    }

    #[test]
    fn corrupted_store_with_binding_cycle_refused_on_load() {
        use crate::object::ObjectKind;

        let (store, ..) = sample_store();
        let dir = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&store, &kv).unwrap();

        // Forge two records that form an inheritance-binding cycle — the
        // kind of damage an external editor (or bit rot) could introduce.
        let imp = Surrogate(100);
        let rel = Surrogate(101);
        let mut imp_obj = ObjectData::plain(imp, "Impl");
        imp_obj.bindings.insert("AllOf_If".into(), rel);
        let rel_obj = ObjectData {
            surrogate: rel,
            type_name: "AllOf_If".into(),
            kind: ObjectKind::InheritanceRel {
                transmitter: imp,
                inheritor: imp,
                needs_adaptation: false,
            },
            owner: None,
            attrs: Default::default(),
            subclasses: Default::default(),
            bindings: Default::default(),
        };
        let tx = kv.begin().unwrap();
        for obj in [&imp_obj, &rel_obj] {
            kv.put(
                tx,
                object_key(obj.surrogate),
                &serde_json::to_vec(obj).unwrap(),
            )
            .unwrap();
        }
        kv.commit(tx).unwrap();

        let err = match load_store(&kv) {
            Err(e) => e,
            Ok(_) => panic!("corrupted store loaded successfully"),
        };
        assert!(
            matches!(&err, CoreError::Storage(msg) if msg.contains("integrity")),
            "got {err:?}"
        );
    }

    #[test]
    fn survives_crash_via_wal() {
        let (store, interface, implementation) = sample_store();
        let dir = tempfile::tempdir().unwrap();
        {
            let kv = DurableKv::open(dir.path()).unwrap();
            save_store(&store, &kv).unwrap();
            // no checkpoint: drop simulates crash after commit
        }
        let kv = DurableKv::open(dir.path()).unwrap();
        let loaded = load_store(&kv).unwrap();
        assert_eq!(
            loaded.attr(implementation, "Length").unwrap(),
            Value::Int(5)
        );
        assert_eq!(loaded.class_members("Interfaces").unwrap(), &[interface]);
    }
}

#[cfg(test)]
mod large_object_tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::{AttrDef, ObjectTypeDef};
    use crate::value::Value;

    #[test]
    fn objects_exceeding_a_page_persist() {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "Polyline".into(),
            attributes: vec![AttrDef::new(
                "Points",
                Domain::ListOf(Box::new(Domain::Point)),
            )],
            ..Default::default()
        })
        .unwrap();
        let mut store = ObjectStore::new(c).unwrap();
        // ~5000 points ≈ 100+ KiB of JSON — far beyond one 8 KiB page.
        let points: Vec<Value> = (0..5000).map(|i| Value::Point { x: i, y: -i }).collect();
        let poly = store
            .create_object("Polyline", vec![("Points", Value::List(points.clone()))])
            .unwrap();

        let dir = tempfile::tempdir().unwrap();
        let kv = DurableKv::open(dir.path()).unwrap();
        save_store(&store, &kv).unwrap();
        let reloaded = load_store(&kv).unwrap();
        assert_eq!(reloaded.attr(poly, "Points").unwrap(), Value::List(points));
    }
}
