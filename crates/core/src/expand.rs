//! Expansion of composite objects (§6): a materialized view of an object
//! with all inherited attributes resolved and all components expanded.
//!
//! Expansion serves two purposes in the paper: presenting a composite with
//! its components materialized during design, and defining the footprint of
//! *expansion locking* — the set of objects whose data is visible in the
//! expansion and therefore must be read-locked (`ccdb-txn` uses
//! [`expansion_footprint`]).

use std::collections::BTreeSet;

use crate::error::CoreResult;
use crate::object::ObjectKind;
use crate::schema::ItemSource;
use crate::store::ObjectStore;
use crate::surrogate::Surrogate;
use crate::value::Value;

/// A materialized (snapshot) view of an object.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpandedObject {
    /// The expanded object.
    pub surrogate: Surrogate,
    /// Its type.
    pub type_name: String,
    /// Attribute name → (resolved value, came-through-inheritance flag).
    pub attrs: Vec<(String, Value, bool)>,
    /// Subclass name → (expanded members, inherited flag).
    pub subclasses: Vec<(String, Vec<ExpandedObject>, bool)>,
}

impl ExpandedObject {
    /// Total number of objects in this expansion (including self).
    pub fn object_count(&self) -> usize {
        1 + self
            .subclasses
            .iter()
            .flat_map(|(_, members, _)| members.iter())
            .map(ExpandedObject::object_count)
            .sum::<usize>()
    }

    /// Approximate materialized size in bytes (attribute payloads).
    pub fn byte_size(&self) -> usize {
        self.attrs
            .iter()
            .map(|(n, v, _)| n.len() + v.byte_size())
            .sum::<usize>()
            + self
                .subclasses
                .iter()
                .flat_map(|(_, members, _)| members.iter())
                .map(ExpandedObject::byte_size)
                .sum::<usize>()
    }

    /// Render as an indented tree (used by the figure reproductions).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        out.push_str(&format!("{pad}{} : {}\n", self.surrogate, self.type_name));
        for (name, value, inherited) in &self.attrs {
            let marker = if *inherited { " (inherited)" } else { "" };
            out.push_str(&format!("{pad}  .{name} = {value}{marker}\n"));
        }
        for (name, members, inherited) in &self.subclasses {
            let marker = if *inherited { " (inherited)" } else { "" };
            out.push_str(&format!("{pad}  [{name}]{marker}\n"));
            for m in members {
                m.render_into(out, indent + 2);
            }
        }
    }
}

/// Expand `obj` down to `max_depth` nesting levels (`usize::MAX` for full).
pub fn expand(store: &ObjectStore, obj: Surrogate, max_depth: usize) -> CoreResult<ExpandedObject> {
    let o = store.object(obj)?;
    let type_name = o.type_name.clone();
    let mut attrs = Vec::new();
    let mut subclasses = Vec::new();

    // Attribute names: local (declared on the object's own type) followed by
    // inherited (from the effective schema).
    let (attr_names, subclass_names) = declared_items(store, &type_name)?;
    for (name, inherited) in attr_names {
        let value = store.attr(obj, &name)?;
        attrs.push((name, value, inherited));
    }
    if max_depth > 0 {
        for (name, inherited) in subclass_names {
            let members = store.subclass_members(obj, &name)?;
            let mut expanded = Vec::with_capacity(members.len());
            for m in members {
                expanded.push(expand(store, m, max_depth - 1)?);
            }
            subclasses.push((name, expanded, inherited));
        }
    }
    Ok(ExpandedObject {
        surrogate: obj,
        type_name,
        attrs,
        subclasses,
    })
}

/// All objects whose data is visible in the full expansion of `obj`: the
/// object itself, its (transitive) subobjects, and every (transitive)
/// transmitter reached through inheritance bindings. This is exactly the
/// read-lock footprint of §6's lock inheritance.
pub fn expansion_footprint(store: &ObjectStore, obj: Surrogate) -> CoreResult<BTreeSet<Surrogate>> {
    let mut seen = BTreeSet::new();
    let mut stack = vec![obj];
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        let o = store.object(s)?;
        stack.extend(o.all_subclass_members());
        for rel in o.bindings.values() {
            if let Some(t) = store.object(*rel)?.transmitter() {
                stack.push(t);
            }
        }
        // Relationship members among subobjects pull in their participants'
        // visibility only if those participants are already in the tree;
        // participants outside the tree are not part of the object's data.
        if let ObjectKind::Relationship { .. } = o.kind {
            // nothing extra: participants are referenced, not contained
        }
    }
    Ok(seen)
}

/// `(name, inherited?)` pairs for attributes and subclasses of a type.
type NamedItems = Vec<(String, bool)>;

fn declared_items(store: &ObjectStore, type_name: &str) -> CoreResult<(NamedItems, NamedItems)> {
    let catalog = store.catalog();
    // Plain object types have effective schemas; relationship types only
    // local items.
    if catalog.object_type(type_name).is_ok() {
        let eff = catalog.effective_schema(type_name)?;
        let attrs = eff
            .attrs
            .iter()
            .map(|(n, _, s)| (n.clone(), s != &ItemSource::Local))
            .collect();
        let mut subclasses: Vec<(String, bool)> = eff
            .subclasses
            .iter()
            .map(|(n, _, s)| (n.clone(), s != &ItemSource::Local))
            .collect();
        // Subrels are local-only.
        for sr in &catalog.object_type(type_name)?.subrels {
            subclasses.push((sr.name.clone(), false));
        }
        Ok((attrs, subclasses))
    } else if let Ok(def) = catalog.rel_type(type_name) {
        Ok((
            def.attributes
                .iter()
                .map(|a| (a.name.clone(), false))
                .collect(),
            def.subclasses
                .iter()
                .map(|sc| (sc.name.clone(), false))
                .collect(),
        ))
    } else {
        let def = catalog.inher_rel_type(type_name)?;
        Ok((
            def.attributes
                .iter()
                .map(|a| (a.name.clone(), false))
                .collect(),
            vec![],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef, SubclassSpec};

    /// Interface with pins; implementation inherits; composite holds
    /// sub-implementations.
    fn setup() -> (ObjectStore, Surrogate, Surrogate) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "Pin".into(),
            attributes: vec![AttrDef::new("Id", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("Length", Domain::Int)],
            subclasses: vec![SubclassSpec {
                name: "Pins".into(),
                element_type: "Pin".into(),
            }],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["Length".into(), "Pins".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("Cost", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        let mut store = ObjectStore::new(c).unwrap();
        let interface = store
            .create_object("If", vec![("Length", Value::Int(7))])
            .unwrap();
        store
            .create_subobject(interface, "Pins", vec![("Id", Value::Int(1))])
            .unwrap();
        store
            .create_subobject(interface, "Pins", vec![("Id", Value::Int(2))])
            .unwrap();
        let implementation = store
            .create_object("Impl", vec![("Cost", Value::Int(3))])
            .unwrap();
        store
            .bind("AllOf_If", interface, implementation, vec![])
            .unwrap();
        (store, interface, implementation)
    }

    #[test]
    fn expansion_materializes_inherited_data() {
        let (store, _if_, impl_) = setup();
        let e = expand(&store, impl_, usize::MAX).unwrap();
        assert_eq!(e.type_name, "Impl");
        let (_, cost, inh) = e.attrs.iter().find(|(n, _, _)| n == "Cost").unwrap();
        assert_eq!((cost, *inh), (&Value::Int(3), false));
        let (_, len, inh) = e.attrs.iter().find(|(n, _, _)| n == "Length").unwrap();
        assert_eq!((len, *inh), (&Value::Int(7), true));
        let (_, pins, inh) = e.subclasses.iter().find(|(n, _, _)| n == "Pins").unwrap();
        assert!(inh);
        assert_eq!(pins.len(), 2);
        assert_eq!(e.object_count(), 3);
        assert!(e.byte_size() > 0);
    }

    #[test]
    fn depth_limit_cuts_subtrees() {
        let (store, interface, _) = setup();
        let shallow = expand(&store, interface, 0).unwrap();
        assert!(shallow.subclasses.is_empty());
        assert_eq!(shallow.object_count(), 1);
    }

    #[test]
    fn footprint_includes_transmitters_and_subobjects() {
        let (store, interface, impl_) = setup();
        let fp = expansion_footprint(&store, impl_).unwrap();
        assert!(fp.contains(&impl_));
        assert!(
            fp.contains(&interface),
            "transmitter is read when expanding"
        );
        // The interface's pins are in the footprint too.
        assert_eq!(fp.len(), 4, "impl + if + 2 pins, got {fp:?}");
    }

    #[test]
    fn render_marks_inherited_items() {
        let (store, _, impl_) = setup();
        let text = expand(&store, impl_, usize::MAX).unwrap().render();
        assert!(text.contains("Length = 7 (inherited)"), "{text}");
        assert!(text.contains(".Cost = 3\n"), "{text}");
        assert!(text.contains("[Pins] (inherited)"), "{text}");
    }

    #[test]
    fn unbound_inheritor_expands_with_missing_values() {
        let (mut store, _, _) = setup();
        let unbound = store
            .create_object("Impl", vec![("Cost", Value::Int(1))])
            .unwrap();
        let e = expand(&store, unbound, usize::MAX).unwrap();
        let (_, len, _) = e.attrs.iter().find(|(n, _, _)| n == "Length").unwrap();
        assert_eq!(len, &Value::Missing);
        let (_, pins, _) = e.subclasses.iter().find(|(n, _, _)| n == "Pins").unwrap();
        assert!(pins.is_empty());
    }
}
