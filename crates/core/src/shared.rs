//! A thread-safe, shareable MVCC front-end over [`ObjectStore`].
//!
//! The paper's value-inheritance model is read-dominated: every `attr()`
//! read walks the binding chain (§4), while writes are comparatively rare
//! transmitter updates. Earlier revisions shared one `Arc<RwLock<_>>`, so
//! every read still serialized on the lock word under load (E12). This
//! version removes the reader/writer lock from the read path entirely:
//!
//! - the store is **epoch-published**: [`SharedStore::snapshot`] pins the
//!   current immutable `Arc<ObjectStore>` with one (probed) read-lock of a
//!   pointer-sized cell — held for nanoseconds — and the reader then runs
//!   against that snapshot for as long as it likes, never blocking and
//!   never being blocked by writers;
//! - writers serialize on a **master copy** behind an exclusive lock,
//!   stamp the cycle with a fresh monotonic version, mutate, then publish
//!   `Arc::new(master.clone())` — a structural-sharing clone
//!   ([`crate::snapshot`]) whose cost is bounded by shard/chunk counts,
//!   not store size. Publish latency and snapshot age are recorded as
//!   `ccdb_core_snapshot_*` metrics;
//! - the resolution value cache is **shared across snapshots** and stays
//!   correct via version stamps and per-shard invalidation watermarks
//!   ([`crate::rescache`]), so cached reads stay one map lookup;
//! - a **panic inside a write closure rolls the master back** to the last
//!   published version (cheap COW clone) and clears the resolution cache,
//!   so no torn write cycle is ever published; the panic then propagates
//!   to the caller while every other handle keeps full service.
//!
//! Visibility guarantee: `write` publishes before returning, and every
//! subsequent `read`/`snapshot` pins the newest published version — so a
//! thread always reads its own completed writes, and concurrent readers
//! see each write atomically (all of a cycle's mutations or none).
//!
//! [`SharedStore::par_select`] and [`SharedStore::par_check_all`] fan a
//! scan out over scoped threads sharing **one** pinned snapshot — the
//! multi-threaded read path measured by experiments E11/E17.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use parking_lot::RwLock;

use crate::error::CoreResult;
use crate::expr::{eval, Env, Expr};
use crate::lockprobe;
use crate::metrics::core_metrics;
use crate::schema::Catalog;
use crate::store::{ObjectStore, Violation};
use crate::surrogate::Surrogate;
use crate::value::Value;

struct Shared {
    /// The published snapshot. Readers take the (probed) shared lock only
    /// long enough to clone the `Arc`; the writer's publish step takes the
    /// exclusive lock only long enough to swap the pointer. Shared-mode
    /// wait on this lock is therefore the MVCC "snapshot acquire" cost and
    /// stays ~0 under any load.
    published: RwLock<Arc<ObjectStore>>,
    /// The master copy writers mutate, serialized by its (probed,
    /// exclusive-only) lock.
    master: RwLock<ObjectStore>,
    /// Next write-cycle version. Monotonic and never reused — a rolled-back
    /// cycle burns its version, so stale rescache fills stamped with an
    /// aborted version can never be mistaken for published data.
    next_version: AtomicU64,
    /// Time origin for the snapshot-age gauge.
    created: Instant,
    /// Nanoseconds (since `created`) of the most recent publish.
    last_publish_ns: AtomicU64,
}

/// A cloneable handle to a store shared across threads. All clones see the
/// same store; dropping the last clone drops the store.
#[derive(Clone)]
pub struct SharedStore {
    inner: Arc<Shared>,
}

impl SharedStore {
    /// Create a shared store over a validated catalog.
    pub fn new(catalog: Catalog) -> CoreResult<Self> {
        Ok(SharedStore::from_store(ObjectStore::new(catalog)?))
    }

    /// Wrap an already-populated store. The store's current contents become
    /// version 0 (published immediately); the first write cycle is
    /// version 1.
    pub fn from_store(store: ObjectStore) -> Self {
        SharedStore {
            inner: Arc::new(Shared {
                published: RwLock::new(Arc::new(store.clone())),
                master: RwLock::new(store),
                next_version: AtomicU64::new(1),
                created: Instant::now(),
                last_publish_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Pin the currently-published snapshot. One probed shared-lock
    /// acquisition (mode `shared` in the `core.storelock` metrics/spans,
    /// charged to [`lockprobe::thread_snapshot_wait_ns`]) plus one `Arc`
    /// clone; the returned snapshot is immutable and valid for as long as
    /// the caller holds it, entirely outside any lock.
    pub fn snapshot(&self) -> Arc<ObjectStore> {
        let snap = Arc::clone(&lockprobe::probed_read(&self.inner.published));
        if ccdb_obs::enabled() {
            let now = ns_since(self.inner.created);
            let last = self.inner.last_publish_ns.load(Ordering::Relaxed);
            core_metrics()
                .snapshot_age_ms
                .set((now.saturating_sub(last) / 1_000_000) as i64);
        }
        snap
    }

    /// The version of the currently-published snapshot.
    pub fn published_version(&self) -> u64 {
        self.inner.published.read().version()
    }

    /// Run `f` against a pinned snapshot. Readers never block writers and
    /// are never blocked by them; the snapshot is immutable for the whole
    /// closure ([`SharedStore::snapshot`] semantics).
    pub fn read<R>(&self, f: impl FnOnce(&ObjectStore) -> R) -> R {
        f(&self.snapshot())
    }

    /// Run `f` as one exclusive write cycle: serialize on the master lock,
    /// stamp a fresh version, mutate, publish. If `f` panics the master is
    /// rolled back to the last published version, the resolution cache is
    /// cleared (fills stamped with the aborted version must not survive),
    /// and the panic propagates — nothing of the torn cycle is ever
    /// published.
    pub fn write<R>(&self, f: impl FnOnce(&mut ObjectStore) -> R) -> R {
        let mut guard = lockprobe::probed_write(&self.inner.master);
        let version = self.inner.next_version.fetch_add(1, Ordering::Relaxed);
        guard.set_version(version);
        match catch_unwind(AssertUnwindSafe(|| f(&mut guard))) {
            Ok(out) => {
                let t0 = Instant::now();
                let snap = Arc::new(guard.clone());
                *self.inner.published.write() = snap;
                drop(guard);
                self.inner
                    .last_publish_ns
                    .store(ns_since(self.inner.created), Ordering::Relaxed);
                if ccdb_obs::enabled() {
                    let m = core_metrics();
                    m.snapshot_publish_ns
                        .observe(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    m.snapshot_publishes.inc();
                    m.snapshot_version.set(version as i64);
                    m.snapshot_age_ms.set(0);
                }
                out
            }
            Err(payload) => {
                let last_good = Arc::clone(&self.inner.published.read());
                *guard = (*last_good).clone();
                guard.clear_resolution_cache();
                core_metrics().snapshot_rollbacks.inc();
                drop(guard);
                resume_unwind(payload)
            }
        }
    }

    /// Recover the inner store if this is the last handle. Snapshots still
    /// pinned elsewhere keep their (structurally shared) versions alive but
    /// cannot observe the returned master.
    pub fn try_into_inner(self) -> Result<ObjectStore, SharedStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(shared) => Ok(shared.master.into_inner()),
            Err(inner) => Err(SharedStore { inner }),
        }
    }

    /// Resolved attribute read against a pinned snapshot (cached reads cost
    /// one lookup; no store-wide lock is held while resolving).
    pub fn attr(&self, obj: Surrogate, name: &str) -> CoreResult<Value> {
        self.read(|st| st.attr(obj, name))
    }

    /// Local attribute write (one write cycle; the resolution cache for the
    /// written object and its inheritor closure is invalidated before the
    /// new version is published).
    pub fn set_attr(&self, obj: Surrogate, name: &str, value: Value) -> CoreResult<()> {
        self.write(|st| st.set_attr(obj, name, value))
    }

    /// Bind an inheritor to a transmitter (one write cycle).
    pub fn bind(
        &self,
        rel_type: &str,
        transmitter: Surrogate,
        inheritor: Surrogate,
        rel_attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        self.write(|st| st.bind(rel_type, transmitter, inheritor, rel_attrs))
    }

    /// Dissolve an inheritance binding (one write cycle).
    pub fn unbind(&self, rel_obj: Surrogate) -> CoreResult<()> {
        self.write(|st| st.unbind(rel_obj))
    }

    /// Parallel [`ObjectStore::select`]: evaluate `predicate` over all
    /// objects of `type_name` on up to `threads` scoped threads, all
    /// sharing **one** pinned snapshot — the scan is consistent by
    /// construction, writers proceed concurrently, and results are in
    /// surrogate order, identical to the sequential scan.
    pub fn par_select(
        &self,
        type_name: &str,
        predicate: &Expr,
        threads: usize,
    ) -> CoreResult<Vec<Surrogate>> {
        let snap = self.snapshot();
        snap.catalog().object_type(type_name)?;
        // The extent is unordered; sort so the chunks are deterministic.
        let mut candidates = snap.extent_of(type_name);
        candidates.sort();
        let chunks = partition(&candidates, threads);
        let mut hits: Vec<Surrogate> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|part| {
                    let snap = &snap;
                    scope.spawn(move || -> CoreResult<Vec<Surrogate>> {
                        let mut out = Vec::new();
                        for s in part {
                            if let Value::Bool(true) = eval(&**snap, s, &mut Env::new(), predicate)?
                            {
                                out.push(s);
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("select worker panicked"))
                .collect::<CoreResult<Vec<_>>>()
        })?
        .into_iter()
        .flatten()
        .collect();
        hits.sort();
        Ok(hits)
    }

    /// Parallel [`ObjectStore::check_all`]: constraint-check every object on
    /// up to `threads` scoped threads sharing one pinned snapshot.
    /// Violations come back in the same (surrogate) order as the sequential
    /// check.
    pub fn par_check_all(&self, threads: usize) -> CoreResult<Vec<Violation>> {
        let snap = self.snapshot();
        let mut surrogates: Vec<Surrogate> = snap.surrogates().collect();
        surrogates.sort();
        let chunks = partition(&surrogates, threads);
        let out = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|part| {
                    let snap = &snap;
                    scope.spawn(move || -> CoreResult<Vec<Violation>> {
                        let mut out = Vec::new();
                        for s in part {
                            out.extend(snap.check_constraints(s)?);
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("check worker panicked"))
                .collect::<CoreResult<Vec<_>>>()
        })?;
        Ok(out.into_iter().flatten().collect())
    }
}

fn ns_since(origin: Instant) -> u64 {
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Split `items` into at most `threads` contiguous, order-preserving chunks.
fn partition(items: &[Surrogate], threads: usize) -> Vec<Vec<Surrogate>> {
    let threads = threads.max(1);
    if items.is_empty() {
        return vec![];
    }
    let chunk = items.len().div_ceil(threads);
    items.chunks(chunk).map(<[Surrogate]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::{BinOp, PathExpr};
    use crate::schema::{AttrDef, InherRelTypeDef, ObjectTypeDef};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("X", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["X".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("Local", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c
    }

    fn populated(n: usize) -> (SharedStore, Surrogate, Vec<Surrogate>) {
        let mut st = ObjectStore::new(catalog()).unwrap();
        let interface = st.create_object("If", vec![("X", Value::Int(7))]).unwrap();
        let imps: Vec<Surrogate> = (0..n)
            .map(|k| {
                let i = st
                    .create_object("Impl", vec![("Local", Value::Int(k as i64))])
                    .unwrap();
                st.bind("AllOf_If", interface, i, vec![]).unwrap();
                i
            })
            .collect();
        (SharedStore::from_store(st), interface, imps)
    }

    fn local_lt(limit: i64) -> Expr {
        Expr::bin(
            BinOp::Lt,
            Expr::Path(PathExpr::self_path(&["Local"])),
            Expr::int(limit),
        )
    }

    #[test]
    fn par_select_matches_sequential() {
        let (shared, _, _) = populated(64);
        let pred = local_lt(20);
        let seq = shared.read(|st| st.select("Impl", &pred)).unwrap();
        for threads in [1, 2, 4, 8] {
            assert_eq!(shared.par_select("Impl", &pred, threads).unwrap(), seq);
        }
        assert_eq!(seq.len(), 20);
    }

    #[test]
    fn par_check_all_matches_sequential() {
        let (shared, _, _) = populated(16);
        let seq = shared.read(|st| st.check_all()).unwrap();
        for threads in [1, 3, 8] {
            assert_eq!(shared.par_check_all(threads).unwrap(), seq);
        }
    }

    #[test]
    fn concurrent_reads_see_writer_updates_instantly() {
        let (shared, interface, imps) = populated(8);
        // Warm the cache so readers start on the hit path.
        for &i in &imps {
            assert_eq!(shared.attr(i, "X").unwrap(), Value::Int(7));
        }
        thread::scope(|scope| {
            let writer = {
                let shared = shared.clone();
                scope.spawn(move || {
                    for v in 0..200 {
                        shared.set_attr(interface, "X", Value::Int(v)).unwrap();
                    }
                })
            };
            for &i in &imps[..4] {
                let shared = shared.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        // Any interleaving must observe some written value.
                        match shared.attr(i, "X").unwrap() {
                            Value::Int(v) => assert!((0..200).contains(&v) || v == 7),
                            other => panic!("unexpected {other}"),
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        // After the writer finished, every inheritor resolves the final
        // value — each write published its version before returning, and a
        // fresh read pins the newest snapshot.
        for &i in &imps {
            assert_eq!(shared.attr(i, "X").unwrap(), Value::Int(199));
        }
    }

    #[test]
    fn panic_inside_write_does_not_poison_the_store() {
        let (shared, interface, imps) = populated(2);
        // A handler panics in the middle of a write cycle...
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.write(|_st| panic!("handler bug inside the write cycle"));
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // ...and every other handle still gets full service: reads,
        // writes, and reads-after-writes all succeed.
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(7));
        shared.set_attr(interface, "X", Value::Int(42)).unwrap();
        assert_eq!(shared.attr(imps[1], "X").unwrap(), Value::Int(42));
        // Same for a panic on the (lock-free) read path.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.read(|_st| panic!("reader bug against a pinned snapshot"));
        }));
        assert!(result.is_err());
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(42));
    }

    #[test]
    fn panic_mid_write_publishes_nothing_from_the_torn_cycle() {
        let (shared, interface, imps) = populated(2);
        let before = shared.published_version();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.write(|st| {
                // First mutation lands, then the handler dies: neither may
                // become visible.
                st.set_attr(interface, "X", Value::Int(666)).unwrap();
                panic!("die after a partial mutation");
            });
        }));
        assert!(result.is_err());
        assert_eq!(shared.published_version(), before, "nothing published");
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(7));
        // The rolled-back master keeps serving writes with fresh versions.
        shared.set_attr(interface, "X", Value::Int(8)).unwrap();
        assert!(shared.published_version() > before);
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(8));
    }

    #[test]
    fn storelock_span_appears_in_traces() {
        use ccdb_obs::trace;
        let (shared, _, imps) = populated(1);
        trace::set_sample_rate(1.0);
        trace::set_tracing(true);
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(7));
        shared.write(|_st| {});
        trace::set_tracing(false);
        let spans = trace::snapshot_spans();
        let modes: Vec<&str> = spans
            .iter()
            .filter(|s| s.name == "core.storelock")
            .filter_map(|s| match s.field("mode") {
                Some(ccdb_obs::FieldValue::Str(m)) => Some(*m),
                _ => None,
            })
            .collect();
        assert!(
            modes.contains(&"shared"),
            "snapshot acquisition traced: {modes:?}"
        );
        assert!(
            modes.contains(&"exclusive"),
            "write acquisition traced: {modes:?}"
        );
    }

    #[test]
    fn pinned_snapshot_is_immutable_while_writes_proceed() {
        let (shared, interface, imps) = populated(2);
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(7));
        let pinned = shared.snapshot();
        let v0 = pinned.version();
        for v in 0..5 {
            shared
                .set_attr(interface, "X", Value::Int(100 + v))
                .unwrap();
        }
        // The pinned snapshot still resolves the old value (its rescache
        // view is version-gated), while fresh reads see the newest.
        assert_eq!(pinned.attr(imps[0], "X").unwrap(), Value::Int(7));
        assert_eq!(pinned.version(), v0);
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(104));
        assert!(shared.published_version() > v0);
    }

    #[test]
    fn try_into_inner_roundtrip() {
        let (shared, interface, _) = populated(2);
        let clone = shared.clone();
        assert!(clone.try_into_inner().is_err(), "two handles alive");
        let st = shared.try_into_inner().ok().expect("last handle unwraps");
        assert_eq!(st.attr(interface, "X").unwrap(), Value::Int(7));
    }
}
