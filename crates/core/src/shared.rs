//! A thread-safe, shareable front-end over [`ObjectStore`].
//!
//! The paper's value-inheritance model is read-dominated: every `attr()`
//! read walks the binding chain (§4), while writes are comparatively rare
//! transmitter updates. [`SharedStore`] exploits that shape:
//!
//! - the store lives behind an `Arc<RwLock<_>>`, so **readers run fully in
//!   parallel** (shared lock) and writers serialize (exclusive lock);
//! - reads go through the store's resolution value cache
//!   ([`ObjectStore::attr`] memoization), so a hot cached read under the
//!   shared lock costs one map lookup — the store-level lock itself is
//!   never exclusive on the read path;
//! - cache **invalidation happens inside the store's write methods**, under
//!   the same exclusive lock as the write, so no reader can observe a stale
//!   value after a writer's lock is released.
//!
//! [`SharedStore::par_select`] and [`SharedStore::par_check_all`] fan a
//! scan out over scoped threads, each holding its own shared guard — the
//! multi-threaded read path measured by experiment E11.
//!
//! **Lock poisoning**: a panic inside a `read`/`write` closure must not
//! brick the store for every other handle — the server wraps this type, and
//! one bad request taking down all sessions would be an availability bug.
//! The `parking_lot` lock recovers the guard instead of propagating a
//! poison error, so later readers and writers proceed normally; the
//! panicking closure's own invariants are its caller's problem (the server
//! additionally isolates handler panics with `catch_unwind`).

use std::sync::Arc;
use std::thread;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::CoreResult;
use crate::expr::{eval, Env, Expr};
use crate::lockprobe::{self, Probed};
use crate::schema::Catalog;
use crate::store::{ObjectStore, Violation};
use crate::surrogate::Surrogate;
use crate::value::Value;

/// A cloneable handle to a store shared across threads. All clones see the
/// same store; dropping the last clone drops the store.
#[derive(Clone)]
pub struct SharedStore {
    inner: Arc<RwLock<ObjectStore>>,
}

impl SharedStore {
    /// Create a shared store over a validated catalog.
    pub fn new(catalog: Catalog) -> CoreResult<Self> {
        Ok(SharedStore::from_store(ObjectStore::new(catalog)?))
    }

    /// Wrap an already-populated store.
    pub fn from_store(store: ObjectStore) -> Self {
        SharedStore {
            inner: Arc::new(RwLock::new(store)),
        }
    }

    /// Shared guard acquisition through the lock probe
    /// ([`crate::lockprobe`]): wait/hold histograms, contention counters
    /// and a `core.storelock` span come for free on every call site.
    fn guard_read(&self) -> Probed<RwLockReadGuard<'_, ObjectStore>> {
        lockprobe::probed_read(&self.inner)
    }

    /// Exclusive guard acquisition through the lock probe.
    fn guard_write(&self) -> Probed<RwLockWriteGuard<'_, ObjectStore>> {
        lockprobe::probed_write(&self.inner)
    }

    /// Run `f` with shared (read) access. Many readers proceed in parallel.
    pub fn read<R>(&self, f: impl FnOnce(&ObjectStore) -> R) -> R {
        f(&self.guard_read())
    }

    /// Run `f` with exclusive (write) access.
    pub fn write<R>(&self, f: impl FnOnce(&mut ObjectStore) -> R) -> R {
        f(&mut self.guard_write())
    }

    /// Recover the inner store if this is the last handle.
    pub fn try_into_inner(self) -> Result<ObjectStore, SharedStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner()),
            Err(inner) => Err(SharedStore { inner }),
        }
    }

    /// Resolved attribute read (shared lock; cached reads cost one lookup).
    pub fn attr(&self, obj: Surrogate, name: &str) -> CoreResult<Value> {
        self.guard_read().attr(obj, name)
    }

    /// Local attribute write (exclusive lock; invalidates the resolution
    /// cache for the written object and its inheritor closure before the
    /// lock is released).
    pub fn set_attr(&self, obj: Surrogate, name: &str, value: Value) -> CoreResult<()> {
        self.guard_write().set_attr(obj, name, value)
    }

    /// Bind an inheritor to a transmitter (exclusive lock).
    pub fn bind(
        &self,
        rel_type: &str,
        transmitter: Surrogate,
        inheritor: Surrogate,
        rel_attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        self.guard_write()
            .bind(rel_type, transmitter, inheritor, rel_attrs)
    }

    /// Dissolve an inheritance binding (exclusive lock).
    pub fn unbind(&self, rel_obj: Surrogate) -> CoreResult<()> {
        self.guard_write().unbind(rel_obj)
    }

    /// Parallel [`ObjectStore::select`]: evaluate `predicate` over all
    /// objects of `type_name` on up to `threads` scoped threads, each under
    /// its own shared guard. Results are in surrogate order, identical to
    /// the sequential scan.
    pub fn par_select(
        &self,
        type_name: &str,
        predicate: &Expr,
        threads: usize,
    ) -> CoreResult<Vec<Surrogate>> {
        let mut candidates: Vec<Surrogate> = {
            let g = self.guard_read();
            g.catalog().object_type(type_name)?;
            g.extent_of(type_name)
            // Guard dropped before fan-out: a queued writer must not be able
            // to wedge itself between this guard and the workers' guards.
        };
        // The extent is unordered; sort so the chunks are deterministic.
        candidates.sort();
        let chunks = partition(&candidates, threads);
        let mut hits: Vec<Surrogate> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|part| {
                    scope.spawn(move || -> CoreResult<Vec<Surrogate>> {
                        let g = self.guard_read();
                        let mut out = Vec::new();
                        for s in part {
                            if let Value::Bool(true) = eval(&*g, s, &mut Env::new(), predicate)? {
                                out.push(s);
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("select worker panicked"))
                .collect::<CoreResult<Vec<_>>>()
        })?
        .into_iter()
        .flatten()
        .collect();
        hits.sort();
        Ok(hits)
    }

    /// Parallel [`ObjectStore::check_all`]: constraint-check every object on
    /// up to `threads` scoped threads. Violations come back in the same
    /// (surrogate) order as the sequential check.
    pub fn par_check_all(&self, threads: usize) -> CoreResult<Vec<Violation>> {
        let mut surrogates: Vec<Surrogate> = {
            let g = self.guard_read();
            g.surrogates().collect()
        };
        surrogates.sort();
        let chunks = partition(&surrogates, threads);
        let out = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|part| {
                    scope.spawn(move || -> CoreResult<Vec<Violation>> {
                        let g = self.guard_read();
                        let mut out = Vec::new();
                        for s in part {
                            out.extend(g.check_constraints(s)?);
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("check worker panicked"))
                .collect::<CoreResult<Vec<_>>>()
        })?;
        Ok(out.into_iter().flatten().collect())
    }
}

/// Split `items` into at most `threads` contiguous, order-preserving chunks.
fn partition(items: &[Surrogate], threads: usize) -> Vec<Vec<Surrogate>> {
    let threads = threads.max(1);
    if items.is_empty() {
        return vec![];
    }
    let chunk = items.len().div_ceil(threads);
    items.chunks(chunk).map(<[Surrogate]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::{BinOp, PathExpr};
    use crate::schema::{AttrDef, InherRelTypeDef, ObjectTypeDef};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("X", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["X".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("Local", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c
    }

    fn populated(n: usize) -> (SharedStore, Surrogate, Vec<Surrogate>) {
        let mut st = ObjectStore::new(catalog()).unwrap();
        let interface = st.create_object("If", vec![("X", Value::Int(7))]).unwrap();
        let imps: Vec<Surrogate> = (0..n)
            .map(|k| {
                let i = st
                    .create_object("Impl", vec![("Local", Value::Int(k as i64))])
                    .unwrap();
                st.bind("AllOf_If", interface, i, vec![]).unwrap();
                i
            })
            .collect();
        (SharedStore::from_store(st), interface, imps)
    }

    fn local_lt(limit: i64) -> Expr {
        Expr::bin(
            BinOp::Lt,
            Expr::Path(PathExpr::self_path(&["Local"])),
            Expr::int(limit),
        )
    }

    #[test]
    fn par_select_matches_sequential() {
        let (shared, _, _) = populated(64);
        let pred = local_lt(20);
        let seq = shared.read(|st| st.select("Impl", &pred)).unwrap();
        for threads in [1, 2, 4, 8] {
            assert_eq!(shared.par_select("Impl", &pred, threads).unwrap(), seq);
        }
        assert_eq!(seq.len(), 20);
    }

    #[test]
    fn par_check_all_matches_sequential() {
        let (shared, _, _) = populated(16);
        let seq = shared.read(|st| st.check_all()).unwrap();
        for threads in [1, 3, 8] {
            assert_eq!(shared.par_check_all(threads).unwrap(), seq);
        }
    }

    #[test]
    fn concurrent_reads_see_writer_updates_instantly() {
        let (shared, interface, imps) = populated(8);
        // Warm the cache so readers start on the hit path.
        for &i in &imps {
            assert_eq!(shared.attr(i, "X").unwrap(), Value::Int(7));
        }
        thread::scope(|scope| {
            let writer = {
                let shared = shared.clone();
                scope.spawn(move || {
                    for v in 0..200 {
                        shared.set_attr(interface, "X", Value::Int(v)).unwrap();
                    }
                })
            };
            for &i in &imps[..4] {
                let shared = shared.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        // Any interleaving must observe some written value.
                        match shared.attr(i, "X").unwrap() {
                            Value::Int(v) => assert!((0..200).contains(&v) || v == 7),
                            other => panic!("unexpected {other}"),
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        // After the writer finished, every inheritor resolves the final
        // value — the invalidation left no stale entry behind.
        for &i in &imps {
            assert_eq!(shared.attr(i, "X").unwrap(), Value::Int(199));
        }
    }

    #[test]
    fn panic_inside_write_does_not_poison_the_store() {
        let (shared, interface, imps) = populated(2);
        // A handler panics while holding the exclusive lock...
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.write(|_st| panic!("handler bug while holding the write lock"));
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // ...and every other handle still gets full service: reads,
        // writes, and reads-after-writes all succeed.
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(7));
        shared.set_attr(interface, "X", Value::Int(42)).unwrap();
        assert_eq!(shared.attr(imps[1], "X").unwrap(), Value::Int(42));
        // Same for a panic under the shared lock.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.read(|_st| panic!("reader bug while holding the read lock"));
        }));
        assert!(result.is_err());
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(42));
    }

    #[test]
    fn storelock_span_appears_in_traces() {
        use ccdb_obs::trace;
        let (shared, _, imps) = populated(1);
        trace::set_sample_rate(1.0);
        trace::set_tracing(true);
        assert_eq!(shared.attr(imps[0], "X").unwrap(), Value::Int(7));
        shared.write(|_st| {});
        trace::set_tracing(false);
        let spans = trace::snapshot_spans();
        let modes: Vec<&str> = spans
            .iter()
            .filter(|s| s.name == "core.storelock")
            .filter_map(|s| match s.field("mode") {
                Some(ccdb_obs::FieldValue::Str(m)) => Some(*m),
                _ => None,
            })
            .collect();
        assert!(
            modes.contains(&"shared"),
            "read acquisition traced: {modes:?}"
        );
        assert!(
            modes.contains(&"exclusive"),
            "write acquisition traced: {modes:?}"
        );
    }

    #[test]
    fn try_into_inner_roundtrip() {
        let (shared, interface, _) = populated(2);
        let clone = shared.clone();
        assert!(clone.try_into_inner().is_err(), "two handles alive");
        let st = shared.try_into_inner().ok().expect("last handle unwraps");
        assert_eq!(st.attr(interface, "X").unwrap(), Value::Int(7));
    }
}
