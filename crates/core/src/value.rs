//! Runtime attribute values and their conformance to [`Domain`]s.

use serde::{Deserialize, Serialize};

use crate::domain::Domain;
use crate::surrogate::Surrogate;

/// A runtime value stored in (or computed from) an object attribute.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    /// Absent value: unset attribute, or a permeable attribute read through
    /// an *unbound* inheritor (paper §4.1: the special case in which only
    /// the attribute structure is inherited).
    Missing,
    /// Integer.
    Int(i64),
    /// Real number.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Enumeration literal, e.g. `IN`, `NAND`, `wood`.
    Enum(String),
    /// 2-d point.
    Point {
        /// X coordinate.
        x: i64,
        /// Y coordinate.
        y: i64,
    },
    /// Ordered list.
    List(Vec<Value>),
    /// Set (stored sorted by canonical order, duplicates removed).
    Set(Vec<Value>),
    /// Record with named fields (sorted by name).
    Record(Vec<(String, Value)>),
    /// Rectangular matrix.
    Matrix(Vec<Vec<Value>>),
    /// Reference to another object.
    Ref(Surrogate),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Missing, Missing) => true,
            (Int(a), Int(b)) => a == b,
            (Real(a), Real(b)) => a.to_bits() == b.to_bits(),
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Enum(a), Enum(b)) => a == b,
            (Point { x: ax, y: ay }, Point { x: bx, y: by }) => ax == bx && ay == by,
            (List(a), List(b)) => a == b,
            (Set(a), Set(b)) => a == b,
            (Record(a), Record(b)) => a == b,
            (Matrix(a), Matrix(b)) => a == b,
            (Ref(a), Ref(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Value {
    /// Construct a set value: sorts canonically and removes duplicates.
    pub fn set(mut items: Vec<Value>) -> Value {
        items.sort_by(|a, b| a.canonical_cmp(b));
        items.dedup();
        Value::Set(items)
    }

    /// Construct a record value with fields sorted by name.
    pub fn record(mut fields: Vec<(String, Value)>) -> Value {
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Record(fields)
    }

    /// Total order used to canonicalize sets and compare values in
    /// constraint expressions. Cross-variant comparisons order by variant.
    pub fn canonical_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Missing => 0,
                Int(_) => 1,
                Real(_) => 2,
                Bool(_) => 3,
                Str(_) => 4,
                Enum(_) => 5,
                Point { .. } => 6,
                List(_) => 7,
                Set(_) => 8,
                Record(_) => 9,
                Matrix(_) => 10,
                Ref(_) => 11,
            }
        }
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.total_cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Enum(a), Enum(b)) => a.cmp(b),
            (Point { x: ax, y: ay }, Point { x: bx, y: by }) => (ax, ay).cmp(&(bx, by)),
            (List(a), List(b)) | (Set(a), Set(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.canonical_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Record(a), Record(b)) => {
                for ((na, va), (nb, vb)) in a.iter().zip(b.iter()) {
                    let o = na.cmp(nb).then_with(|| va.canonical_cmp(vb));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Matrix(a), Matrix(b)) => {
                for (ra, rb) in a.iter().zip(b.iter()) {
                    for (x, y) in ra.iter().zip(rb.iter()) {
                        let o = x.canonical_cmp(y);
                        if o != Ordering::Equal {
                            return o;
                        }
                    }
                    let o = ra.len().cmp(&rb.len());
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Ref(a), Ref(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Does this value conform to `domain`? [`Value::Missing`] conforms to
    /// every domain (attributes may be unset).
    pub fn conforms_to(&self, domain: &Domain) -> bool {
        match (self, domain) {
            (Value::Missing, _) => true,
            (Value::Int(_), Domain::Int) => true,
            (Value::Real(_), Domain::Real) => true,
            (Value::Int(_), Domain::Real) => true, // integers widen to real
            (Value::Bool(_), Domain::Bool) => true,
            (Value::Str(_), Domain::Text) => true,
            (Value::Enum(lit), Domain::Enum(lits)) => lits.iter().any(|l| l == lit),
            (Value::Point { .. }, Domain::Point) => true,
            (Value::Record(fields), Domain::Record(defs)) => {
                // Every value field must be declared and conform; declared
                // fields may be absent (treated as Missing).
                fields
                    .iter()
                    .all(|(name, v)| defs.iter().any(|(dn, dd)| dn == name && v.conforms_to(dd)))
            }
            (Value::List(items), Domain::ListOf(d)) => items.iter().all(|v| v.conforms_to(d)),
            (Value::Set(items), Domain::SetOf(d)) => items.iter().all(|v| v.conforms_to(d)),
            (Value::Matrix(rows), Domain::MatrixOf(d)) => {
                let rect = rows.windows(2).all(|w| w[0].len() == w[1].len());
                rect && rows.iter().flatten().all(|v| v.conforms_to(d))
            }
            (Value::Ref(_), Domain::Ref(_)) => true, // type checked by the store
            _ => false,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the permeability
    /// and storage-amplification experiments (E3, E9).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Missing => 1,
            Value::Int(_) | Value::Real(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) | Value::Enum(s) => s.len() + 8,
            Value::Point { .. } => 16,
            Value::List(v) | Value::Set(v) => 8 + v.iter().map(Value::byte_size).sum::<usize>(),
            Value::Record(fs) => {
                8 + fs
                    .iter()
                    .map(|(n, v)| n.len() + v.byte_size())
                    .sum::<usize>()
            }
            Value::Matrix(rows) => 8 + rows.iter().flatten().map(Value::byte_size).sum::<usize>(),
            Value::Ref(_) => 8,
        }
    }

    /// Integer view (used by the expression evaluator).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Reference view.
    pub fn as_ref_surrogate(&self) -> Option<Surrogate> {
        match self {
            Value::Ref(s) => Some(*s),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Missing => write!(f, "⊥"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Enum(e) => write!(f, "{e}"),
            Value::Point { x, y } => write!(f, "({x}, {y})"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Record(fields) => {
                write!(f, "(")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, ")")
            }
            Value::Matrix(rows) => write!(
                f,
                "matrix[{}x{}]",
                rows.len(),
                rows.first().map_or(0, Vec::len)
            ),
            Value::Ref(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_simple() {
        assert!(Value::Int(3).conforms_to(&Domain::Int));
        assert!(!Value::Int(3).conforms_to(&Domain::Bool));
        assert!(
            Value::Int(3).conforms_to(&Domain::Real),
            "ints widen to real"
        );
        assert!(!Value::Real(3.0).conforms_to(&Domain::Int));
        assert!(Value::Missing.conforms_to(&Domain::Int));
        assert!(Value::Str("x".into()).conforms_to(&Domain::Text));
    }

    #[test]
    fn conformance_enum() {
        let d = Domain::Enum(vec!["IN".into(), "OUT".into()]);
        assert!(Value::Enum("IN".into()).conforms_to(&d));
        assert!(!Value::Enum("SIDEWAYS".into()).conforms_to(&d));
        assert!(!Value::Str("IN".into()).conforms_to(&d));
    }

    #[test]
    fn conformance_structured() {
        let pins = Domain::SetOf(Box::new(Domain::Record(vec![
            ("PinId".into(), Domain::Int),
            (
                "InOut".into(),
                Domain::Enum(vec!["IN".into(), "OUT".into()]),
            ),
        ])));
        let v = Value::set(vec![
            Value::record(vec![
                ("PinId".into(), Value::Int(1)),
                ("InOut".into(), Value::Enum("IN".into())),
            ]),
            Value::record(vec![
                ("PinId".into(), Value::Int(2)),
                ("InOut".into(), Value::Enum("OUT".into())),
            ]),
        ]);
        assert!(v.conforms_to(&pins));
        let bad = Value::set(vec![Value::record(vec![(
            "PinId".into(),
            Value::Bool(true),
        )])]);
        assert!(!bad.conforms_to(&pins));
    }

    #[test]
    fn matrix_must_be_rectangular() {
        let d = Domain::MatrixOf(Box::new(Domain::Bool));
        let rect = Value::Matrix(vec![
            vec![Value::Bool(true), Value::Bool(false)],
            vec![Value::Bool(false), Value::Bool(true)],
        ]);
        assert!(rect.conforms_to(&d));
        let ragged = Value::Matrix(vec![vec![Value::Bool(true)], vec![]]);
        assert!(!ragged.conforms_to(&d));
    }

    #[test]
    fn set_constructor_sorts_and_dedups() {
        let s = Value::set(vec![Value::Int(3), Value::Int(1), Value::Int(3)]);
        assert_eq!(s, Value::Set(vec![Value::Int(1), Value::Int(3)]));
    }

    #[test]
    fn record_constructor_sorts_fields() {
        let r = Value::record(vec![
            ("b".into(), Value::Int(2)),
            ("a".into(), Value::Int(1)),
        ]);
        assert_eq!(
            r,
            Value::Record(vec![
                ("a".into(), Value::Int(1)),
                ("b".into(), Value::Int(2))
            ])
        );
    }

    #[test]
    fn equality_and_ordering() {
        assert_eq!(Value::Real(1.5), Value::Real(1.5));
        assert_ne!(Value::Real(1.5), Value::Real(1.6));
        assert_ne!(Value::Int(1), Value::Real(1.0), "no cross-variant equality");
        assert!(Value::Int(1).canonical_cmp(&Value::Int(2)).is_lt());
        assert!(Value::Str("a".into())
            .canonical_cmp(&Value::Str("b".into()))
            .is_lt());
    }

    #[test]
    fn byte_size_grows_with_content() {
        let small = Value::Int(1);
        let big = Value::List(vec![Value::Int(1); 100]);
        assert!(big.byte_size() > small.byte_size() * 50);
    }

    #[test]
    fn serde_roundtrip() {
        let v = Value::record(vec![
            ("Pins".into(), Value::set(vec![Value::Ref(Surrogate(3))])),
            ("Pos".into(), Value::Point { x: 1, y: -2 }),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Point { x: 1, y: 2 }.to_string(), "(1, 2)");
        assert_eq!(
            Value::set(vec![Value::Int(2), Value::Int(1)]).to_string(),
            "{1, 2}"
        );
        assert_eq!(Value::Missing.to_string(), "⊥");
    }
}
