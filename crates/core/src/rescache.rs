//! Lock-striped resolution value cache.
//!
//! The read path of the store is dominated by memoized [`crate::ObjectStore::attr`]
//! lookups; with a single `RwLock` around the whole memo table, every
//! concurrent cache hit still contends on one lock word. This module
//! stripes the table into N shards keyed by a surrogate hash, so hits on
//! different objects take different locks and scale with cores, while
//! invalidation sweeps lock **only the shards the affected closure maps
//! to** instead of the whole cache.
//!
//! Enable/disable semantics are atomic with respect to concurrent fills:
//! a fill re-checks the enabled flag *under its shard's write lock*, and
//! `set_enabled(false)` clears every shard under that same lock, so once
//! disable returns no entry exists and no in-flight fill can resurrect
//! one (see [`ShardedResCache::set_enabled`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::surrogate::Surrogate;
use crate::value::Value;

/// surrogate → attribute → memoized resolved value (one shard's view).
type ShardMap = HashMap<Surrogate, HashMap<String, Value>>;

/// Default shard count for [`ShardedResCache`] (rounded up to a power of
/// two). Sixteen shards keep contention negligible for the thread counts
/// the E13 sweep covers while costing nothing measurable at one thread.
pub const DEFAULT_RESOLUTION_CACHE_SHARDS: usize = 16;

/// A resolution value cache striped over N `RwLock`-guarded shards.
pub(crate) struct ShardedResCache {
    shards: Box<[RwLock<ShardMap>]>,
    /// `shards.len() - 1`; the count is always a power of two.
    mask: u64,
    enabled: AtomicBool,
    /// Exact live entry count, maintained under the shard locks; lets the
    /// write path skip the inheritor-closure traversal when the cache is
    /// empty without touching any shard lock.
    entries: AtomicU64,
}

impl ShardedResCache {
    /// Build a cache with `shards` stripes (clamped to ≥ 1, rounded up to
    /// the next power of two so shard selection is a mask, not a modulo).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedResCache {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
            enabled: AtomicBool::new(true),
            entries: AtomicU64::new(0),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `s` maps to. Fibonacci hashing scatters the sequential
    /// surrogates a store issues across shards instead of clustering them.
    #[inline]
    pub fn shard_of(&self, s: Surrogate) -> usize {
        ((s.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask) as usize
    }

    /// Is caching currently enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable the cache. Disabling is **atomic with respect to
    /// concurrent fills**: the flag is stored first, then every shard is
    /// cleared under its write lock. A fill that raced ahead of the flag
    /// store holds its shard lock while inserting, so the clear (which
    /// waits for that lock) removes the entry; a fill that acquires its
    /// shard lock after the clear re-reads the flag under the lock and
    /// aborts. Either way, when this returns no stale entry is readable
    /// and none can appear later.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
        if !enabled {
            for shard in self.shards.iter() {
                let mut map = shard.write();
                let dropped: u64 = map.values().map(|per| per.len() as u64).sum();
                map.clear();
                self.entries.fetch_sub(dropped, Ordering::Relaxed);
            }
        }
    }

    /// Cached value for `(obj, name)`, taking only the owning shard's
    /// shared lock — concurrent hits on other shards never contend.
    pub fn get(&self, obj: Surrogate, name: &str) -> Option<Value> {
        self.shards[self.shard_of(obj)]
            .read()
            .get(&obj)
            .and_then(|per_obj| per_obj.get(name))
            .cloned()
    }

    /// Memoize `(obj, name) → value`. No-op when disabled; the flag is
    /// re-checked under the shard write lock (see [`Self::set_enabled`]).
    pub fn fill(&self, obj: Surrogate, name: &str, value: &Value) {
        let mut shard = self.shards[self.shard_of(obj)].write();
        if !self.enabled.load(Ordering::SeqCst) {
            return;
        }
        if shard
            .entry(obj)
            .or_default()
            .insert(name.to_string(), value.clone())
            .is_none()
        {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop the memoized entries of every surrogate in `closure` — all of
    /// them for `item: None`, only that attribute's for `Some(name)`.
    /// Locks only the shards the closure maps to, each exactly once.
    /// Returns `(entries_removed, shards_locked)`.
    pub fn invalidate(&self, closure: &[Surrogate], item: Option<&str>) -> (u64, u64) {
        let mut by_shard: Vec<Vec<Surrogate>> = vec![Vec::new(); self.shards.len()];
        for &s in closure {
            by_shard[self.shard_of(s)].push(s);
        }
        let mut removed = 0u64;
        let mut locked = 0u64;
        for (idx, members) in by_shard.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            locked += 1;
            let mut shard = self.shards[idx].write();
            for s in members {
                match item {
                    Some(name) => {
                        if let Some(per_obj) = shard.get_mut(s) {
                            if per_obj.remove(name).is_some() {
                                removed += 1;
                            }
                            if per_obj.is_empty() {
                                shard.remove(s);
                            }
                        }
                    }
                    None => {
                        if let Some(per_obj) = shard.remove(s) {
                            removed += per_obj.len() as u64;
                        }
                    }
                }
            }
        }
        self.entries.fetch_sub(removed, Ordering::Relaxed);
        (removed, locked)
    }

    /// Total memoized entries. Snapshots one shard length at a time — no
    /// point during the sum is more than one shard lock held, so heavy
    /// read traffic on other shards proceeds unimpeded.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(HashMap::len).sum::<usize>())
            .sum()
    }

    /// Cheap emptiness check off the exact entry counter (no locks).
    pub fn is_empty(&self) -> bool {
        self.entries.load(Ordering::Relaxed) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardedResCache::new(0).shard_count(), 1);
        assert_eq!(ShardedResCache::new(1).shard_count(), 1);
        assert_eq!(ShardedResCache::new(3).shard_count(), 4);
        assert_eq!(ShardedResCache::new(16).shard_count(), 16);
        assert_eq!(ShardedResCache::new(17).shard_count(), 32);
    }

    #[test]
    fn fill_get_invalidate_roundtrip() {
        let c = ShardedResCache::new(4);
        assert!(c.is_empty());
        for i in 0..32u64 {
            c.fill(Surrogate(i), "A", &v(i as i64));
            c.fill(Surrogate(i), "B", &v(-(i as i64)));
        }
        assert_eq!(c.len(), 64);
        assert!(!c.is_empty());
        assert_eq!(c.get(Surrogate(7), "A"), Some(v(7)));
        assert_eq!(c.get(Surrogate(7), "C"), None);

        // Attribute-scoped invalidation drops only that attribute.
        let (removed, locked) = c.invalidate(&[Surrogate(7)], Some("A"));
        assert_eq!(removed, 1);
        assert_eq!(locked, 1);
        assert_eq!(c.get(Surrogate(7), "A"), None);
        assert_eq!(c.get(Surrogate(7), "B"), Some(v(-7)));

        // Whole-object invalidation drops everything for the closure.
        let all: Vec<Surrogate> = (0..32).map(Surrogate).collect();
        let (removed, locked) = c.invalidate(&all, None);
        assert_eq!(removed, 63);
        assert!(locked <= 4);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn sequential_surrogates_scatter_across_shards() {
        let c = ShardedResCache::new(8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(c.shard_of(Surrogate(i)));
        }
        assert!(seen.len() >= 4, "only {} shards used", seen.len());
    }

    #[test]
    fn disable_is_atomic_with_concurrent_fills() {
        // Hammer fills while toggling the cache off; after every disable
        // returns, the cache must be observably empty (no resurrected
        // entry), which is exactly the double-check-under-lock contract.
        let c = Arc::new(ShardedResCache::new(4));
        thread::scope(|scope| {
            let filler = {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.fill(Surrogate(i % 64), "A", &v(i as i64));
                    }
                })
            };
            for _ in 0..50 {
                c.set_enabled(false);
                assert_eq!(c.len(), 0, "entry survived or reappeared after disable");
                c.set_enabled(true);
            }
            filler.join().unwrap();
        });
        // Counter bookkeeping stayed exact through the churn.
        c.set_enabled(false);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
