//! Lock-striped, version-stamped resolution value cache.
//!
//! The read path of the store is dominated by memoized [`crate::ObjectStore::attr`]
//! lookups; with a single `RwLock` around the whole memo table, every
//! concurrent cache hit still contends on one lock word. This module
//! stripes the table into N shards keyed by a surrogate hash, so hits on
//! different objects take different locks and scale with cores, while
//! invalidation sweeps lock **only the shards the affected closure maps
//! to** instead of the whole cache.
//!
//! Enable/disable semantics are atomic with respect to concurrent fills:
//! a fill re-checks the enabled flag *under its shard's write lock*, and
//! `set_enabled(false)` clears every shard under that same lock, so once
//! disable returns no entry exists and no in-flight fill can resurrect
//! one (see [`ShardedResCache::set_enabled`]).
//!
//! ## MVCC versioning
//!
//! Since the cache is shared across every live snapshot of a
//! [`crate::shared::SharedStore`] (it is a memo, not versioned state), two
//! stamps keep readers pinned to old snapshots from observing — or
//! poisoning — newer data:
//!
//! * every entry records the **store version it was computed at**; a reader
//!   only accepts entries stamped at or below its own snapshot version, so
//!   a value filled by the in-progress write cycle is invisible until that
//!   cycle publishes;
//! * every shard records an **invalidation watermark** — the highest
//!   version whose write-path sweep touched the shard; a fill stamped
//!   below the watermark is rejected, so a reader that resolved a value
//!   from an old snapshot *after* a newer write swept the shard cannot
//!   re-insert the stale value.
//!
//! A standalone (non-shared) store always runs at version 0, for which both
//! checks degenerate to the unversioned behavior.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::surrogate::Surrogate;
use crate::value::Value;

/// One shard: surrogate → attribute → (memoized resolved value, version it
/// was resolved at), plus the shard's invalidation watermark.
#[derive(Default)]
struct Shard {
    map: HashMap<Surrogate, HashMap<String, (Value, u64)>>,
    /// Highest store version whose invalidation sweep locked this shard.
    /// Fills stamped below it raced with a newer write and are rejected.
    watermark: u64,
}

/// Default shard count for [`ShardedResCache`] (rounded up to a power of
/// two). Sixteen shards keep contention negligible for the thread counts
/// the E13 sweep covers while costing nothing measurable at one thread.
pub const DEFAULT_RESOLUTION_CACHE_SHARDS: usize = 16;

/// A resolution value cache striped over N `RwLock`-guarded shards.
pub(crate) struct ShardedResCache {
    shards: Box<[RwLock<Shard>]>,
    /// `shards.len() - 1`; the count is always a power of two.
    mask: u64,
    enabled: AtomicBool,
    /// Exact live entry count, maintained under the shard locks; lets the
    /// write path skip the inheritor-closure traversal when the cache is
    /// empty without touching any shard lock.
    entries: AtomicU64,
}

impl ShardedResCache {
    /// Build a cache with `shards` stripes (clamped to ≥ 1, rounded up to
    /// the next power of two so shard selection is a mask, not a modulo).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedResCache {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            mask: (n - 1) as u64,
            enabled: AtomicBool::new(true),
            entries: AtomicU64::new(0),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `s` maps to. Fibonacci hashing scatters the sequential
    /// surrogates a store issues across shards instead of clustering them.
    #[inline]
    pub fn shard_of(&self, s: Surrogate) -> usize {
        ((s.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask) as usize
    }

    /// Is caching currently enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable the cache. Disabling is **atomic with respect to
    /// concurrent fills**: the flag is stored first, then every shard is
    /// cleared under its write lock. A fill that raced ahead of the flag
    /// store holds its shard lock while inserting, so the clear (which
    /// waits for that lock) removes the entry; a fill that acquires its
    /// shard lock after the clear re-reads the flag under the lock and
    /// aborts. Either way, when this returns no stale entry is readable
    /// and none can appear later.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
        if !enabled {
            self.clear();
        }
    }

    /// Drop every entry in every shard (watermarks are kept). Used by the
    /// disable path and by [`crate::shared::SharedStore`]'s write-cycle
    /// rollback, where fills made by the aborted cycle must not survive.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            let dropped: u64 = shard.map.values().map(|per| per.len() as u64).sum();
            shard.map.clear();
            self.entries.fetch_sub(dropped, Ordering::Relaxed);
        }
    }

    /// Cached value for `(obj, name)` as seen from store version
    /// `reader_version`, taking only the owning shard's shared lock —
    /// concurrent hits on other shards never contend. Entries stamped
    /// above the reader's version (filled by a not-yet-published write
    /// cycle) are invisible.
    pub fn get(&self, obj: Surrogate, name: &str, reader_version: u64) -> Option<Value> {
        self.shards[self.shard_of(obj)]
            .read()
            .map
            .get(&obj)
            .and_then(|per_obj| per_obj.get(name))
            .filter(|(_, v)| *v <= reader_version)
            .map(|(value, _)| value.clone())
    }

    /// Memoize `(obj, name) → value` as resolved at store version
    /// `version`. No-op when disabled (the flag is re-checked under the
    /// shard write lock, see [`Self::set_enabled`]), when a newer write's
    /// invalidation already swept the shard (`version < watermark`), or
    /// when a newer-stamped entry is already present.
    pub fn fill(&self, obj: Surrogate, name: &str, value: &Value, version: u64) {
        let mut shard = self.shards[self.shard_of(obj)].write();
        if !self.enabled.load(Ordering::SeqCst) {
            return;
        }
        if version < shard.watermark {
            return;
        }
        let per_obj = shard.map.entry(obj).or_default();
        match per_obj.get(name) {
            Some((_, existing)) if *existing > version => {}
            Some(_) => {
                per_obj.insert(name.to_string(), (value.clone(), version));
            }
            None => {
                per_obj.insert(name.to_string(), (value.clone(), version));
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop the memoized entries of every surrogate in `closure` — all of
    /// them for `item: None`, only that attribute's for `Some(name)` — and
    /// raise each touched shard's watermark to `version` so stale re-fills
    /// from older snapshots are rejected afterwards. Locks only the shards
    /// the closure maps to, each exactly once. Returns
    /// `(entries_removed, shards_locked)`.
    pub fn invalidate(
        &self,
        closure: &[Surrogate],
        item: Option<&str>,
        version: u64,
    ) -> (u64, u64) {
        let mut by_shard: Vec<Vec<Surrogate>> = vec![Vec::new(); self.shards.len()];
        for &s in closure {
            by_shard[self.shard_of(s)].push(s);
        }
        let mut removed = 0u64;
        let mut locked = 0u64;
        for (idx, members) in by_shard.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            locked += 1;
            let mut shard = self.shards[idx].write();
            shard.watermark = shard.watermark.max(version);
            for s in members {
                match item {
                    Some(name) => {
                        if let Some(per_obj) = shard.map.get_mut(s) {
                            if per_obj.remove(name).is_some() {
                                removed += 1;
                            }
                            if per_obj.is_empty() {
                                shard.map.remove(s);
                            }
                        }
                    }
                    None => {
                        if let Some(per_obj) = shard.map.remove(s) {
                            removed += per_obj.len() as u64;
                        }
                    }
                }
            }
        }
        self.entries.fetch_sub(removed, Ordering::Relaxed);
        (removed, locked)
    }

    /// Total memoized entries. Snapshots one shard length at a time — no
    /// point during the sum is more than one shard lock held, so heavy
    /// read traffic on other shards proceeds unimpeded.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().map.values().map(HashMap::len).sum::<usize>())
            .sum()
    }

    /// Cheap emptiness check off the exact entry counter (no locks).
    pub fn is_empty(&self) -> bool {
        self.entries.load(Ordering::Relaxed) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardedResCache::new(0).shard_count(), 1);
        assert_eq!(ShardedResCache::new(1).shard_count(), 1);
        assert_eq!(ShardedResCache::new(3).shard_count(), 4);
        assert_eq!(ShardedResCache::new(16).shard_count(), 16);
        assert_eq!(ShardedResCache::new(17).shard_count(), 32);
    }

    #[test]
    fn fill_get_invalidate_roundtrip() {
        let c = ShardedResCache::new(4);
        assert!(c.is_empty());
        for i in 0..32u64 {
            c.fill(Surrogate(i), "A", &v(i as i64), 0);
            c.fill(Surrogate(i), "B", &v(-(i as i64)), 0);
        }
        assert_eq!(c.len(), 64);
        assert!(!c.is_empty());
        assert_eq!(c.get(Surrogate(7), "A", 0), Some(v(7)));
        assert_eq!(c.get(Surrogate(7), "C", 0), None);

        // Attribute-scoped invalidation drops only that attribute.
        let (removed, locked) = c.invalidate(&[Surrogate(7)], Some("A"), 0);
        assert_eq!(removed, 1);
        assert_eq!(locked, 1);
        assert_eq!(c.get(Surrogate(7), "A", 0), None);
        assert_eq!(c.get(Surrogate(7), "B", 0), Some(v(-7)));

        // Whole-object invalidation drops everything for the closure.
        let all: Vec<Surrogate> = (0..32).map(Surrogate).collect();
        let (removed, locked) = c.invalidate(&all, None, 0);
        assert_eq!(removed, 63);
        assert!(locked <= 4);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn sequential_surrogates_scatter_across_shards() {
        let c = ShardedResCache::new(8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(c.shard_of(Surrogate(i)));
        }
        assert!(seen.len() >= 4, "only {} shards used", seen.len());
    }

    #[test]
    fn entries_from_the_future_are_invisible_to_old_readers() {
        let c = ShardedResCache::new(1);
        // The in-progress write cycle (version 5) fills a value.
        c.fill(Surrogate(1), "A", &v(50), 5);
        // A reader pinned to the already-published version 4 must not see
        // it; readers at or after 5 do.
        assert_eq!(c.get(Surrogate(1), "A", 4), None);
        assert_eq!(c.get(Surrogate(1), "A", 5), Some(v(50)));
        assert_eq!(c.get(Surrogate(1), "A", 9), Some(v(50)));
    }

    #[test]
    fn watermark_rejects_stale_refills_and_keeps_newer_entries() {
        let c = ShardedResCache::new(1);
        // Write cycle 7 invalidates the object (value changed at v7).
        c.invalidate(&[Surrogate(1)], Some("A"), 7);
        // A reader still pinned to snapshot 3 resolved the old value from
        // its old snapshot and tries to memoize it: rejected.
        c.fill(Surrogate(1), "A", &v(30), 3);
        assert_eq!(c.get(Surrogate(1), "A", 3), None);
        assert_eq!(c.get(Surrogate(1), "A", 7), None);
        // The write cycle itself (or any reader at ≥ 7) may fill.
        c.fill(Surrogate(1), "A", &v(70), 7);
        assert_eq!(c.get(Surrogate(1), "A", 7), Some(v(70)));
        // An older-stamped fill never replaces a newer-stamped entry.
        c.fill(Surrogate(1), "A", &v(30), 7);
        c.fill(Surrogate(1), "B", &v(99), 9);
        c.fill(Surrogate(1), "B", &v(11), 8);
        assert_eq!(c.get(Surrogate(1), "B", 9), Some(v(99)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disable_is_atomic_with_concurrent_fills() {
        // Hammer fills while toggling the cache off; after every disable
        // returns, the cache must be observably empty (no resurrected
        // entry), which is exactly the double-check-under-lock contract.
        let c = Arc::new(ShardedResCache::new(4));
        thread::scope(|scope| {
            let filler = {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.fill(Surrogate(i % 64), "A", &v(i as i64), 0);
                    }
                })
            };
            for _ in 0..50 {
                c.set_enabled(false);
                assert_eq!(c.len(), 0, "entry survived or reappeared after disable");
                c.set_enabled(true);
            }
            filler.join().unwrap();
        });
        // Counter bookkeeping stayed exact through the churn.
        c.set_enabled(false);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
