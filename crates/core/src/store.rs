//! The object store: objects, classes, complex objects, relationship
//! objects, and the **value-inheritance engine** (§4).
//!
//! Value inheritance is *resolved, not materialized*: reading an attribute
//! that reaches an object through an inheritance binding walks to the
//! transmitter (transitively, through interface hierarchies), so transmitter
//! updates are instantly visible in every inheritor and the data exists once
//! (§2: "a view to the component is granted to the composite object").
//! Inherited data is **read-only in the inheritor**; transmitter-side
//! updates raise the `needs_adaptation` flag on every affected
//! inheritance-relationship object and append to the adaptation log — the
//! paper's consistency-control bookkeeping on the relationship.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ccdb_obs::{event, trace, Counter, Event, FieldValue};
use parking_lot::Mutex;

use crate::error::{CoreError, CoreResult};
use crate::expr::{eval, BinOp, Env, Expr, ObjectView, PathRoot, REL_VAR};
use crate::metrics::core_metrics;
use crate::object::{ObjectData, ObjectKind, Owner};
use crate::rescache::{ShardedResCache, DEFAULT_RESOLUTION_CACHE_SHARDS};
use crate::schema::{
    Catalog, Constraint, EffectiveSchema, ItemSource, ParticipantSpec, SubrelSpec,
};
use crate::snapshot::{AppendLog, CowMap};
use crate::surrogate::{Surrogate, SurrogateGen};
use crate::value::Value;

/// A named class: a set of objects of one type (§3; several classes may hold
/// objects of the same type).
#[derive(Clone, Debug)]
pub struct ClassDef {
    /// Object type of the members.
    pub type_name: String,
    /// Member surrogates in insertion order.
    pub members: Vec<Surrogate>,
}

/// A recorded transmitter-side update affecting an inheritance binding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AdaptationEvent {
    /// The inheritance-relationship object whose flag was raised.
    pub rel_object: Surrogate,
    /// The transmitter that changed.
    pub transmitter: Surrogate,
    /// The inheritor that may need manual adaptation.
    pub inheritor: Surrogate,
    /// The permeable attribute or subclass that changed.
    pub item: String,
    /// Logical timestamp (store-wide monotonic counter).
    pub at: u64,
}

/// Counters for the resolution experiments (E2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of attribute reads answered locally.
    pub local_reads: u64,
    /// Number of attribute reads that walked at least one inheritance hop.
    pub inherited_reads: u64,
    /// Total inheritance hops walked.
    pub hops: u64,
    /// Attribute reads answered from the resolution value cache.
    pub rescache_hits: u64,
    /// Attribute reads that walked the chain and filled the cache.
    pub rescache_misses: u64,
    /// Cache entries dropped by write-path invalidation.
    pub rescache_invalidations: u64,
}

/// Upper bound on inheritance hops walked by one resolution. `bind` refuses
/// to create object-level cycles, so a healthy store never comes close; the
/// cap turns a corrupt or hand-edited persisted store (loaded through a
/// side channel) into a clean [`CoreError::EvalError`] instead of a hang.
pub const MAX_RESOLUTION_DEPTH: u64 = 512;

/// A failed integrity constraint.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The object the constraint was checked on.
    pub object: Surrogate,
    /// Constraint label.
    pub constraint: String,
    /// Extra detail (e.g. an evaluation error).
    pub detail: Option<String>,
}

/// Everything one cascade delete removed, for [`ObjectStore::undelete`].
#[derive(Clone, Debug, Default)]
pub struct DeletionRecord {
    /// Full snapshots of every removed object (subobjects, relationship
    /// objects, and inheritance-relationship objects alike).
    pub objects: Vec<ObjectData>,
    /// `(class, member)` named-class memberships that were removed.
    pub classes: Vec<(String, Surrogate)>,
}

impl DeletionRecord {
    /// Surrogates of the removed objects (deduplicated, sorted).
    pub fn surrogates(&self) -> Vec<Surrogate> {
        let mut v: Vec<Surrogate> = self.objects.iter().map(|o| o.surrogate).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// The in-memory object store. Persistence is provided by
/// [`crate::persist`]; concurrency control by `ccdb-txn` on top.
///
/// The big collections are copy-on-write ([`crate::snapshot`]): cloning the
/// store shares every untouched object/index/log chunk with the clone, which
/// is what makes [`crate::shared::SharedStore`]'s per-write snapshot
/// publication cheap. The schema memo, resolution value cache, and stats
/// counters are `Arc`-shared across clones (they are caches/telemetry over
/// immutable schema, not versioned data).
pub struct ObjectStore {
    catalog: Arc<Catalog>,
    gen: SurrogateGen,
    objects: CowMap<Surrogate, ObjectData>,
    classes: BTreeMap<String, ClassDef>,
    /// transmitter → inheritance-relationship objects it feeds.
    inheritors_of: CowMap<Surrogate, Vec<Surrogate>>,
    /// object → relationship objects having it as a participant.
    participant_in: CowMap<Surrogate, Vec<Surrogate>>,
    adaptation_log: AppendLog<AdaptationEvent>,
    clock: u64,
    /// MVCC version stamp: 0 for a standalone store; set by
    /// [`crate::shared::SharedStore`] to the (monotonic, never-reused)
    /// version a write cycle is building. Resolution-cache entries are
    /// stamped with it and snapshot readers only accept entries at or below
    /// their own version.
    version: u64,
    /// Per-object `attr → version` stamps of transactional-visible writes,
    /// consulted by commit-time write-write conflict detection
    /// ([`ObjectStore::write_stamp`]). Only maintained once the store is
    /// version-managed (`version > 0`).
    write_stamps: CowMap<Surrogate, HashMap<String, u64>>,
    /// Memoized effective schemas (the catalog is immutable once the store
    /// exists). Disable with [`ObjectStore::set_schema_cache`] for the E2
    /// ablation.
    eff_cache: Arc<Mutex<HashMap<String, Arc<EffectiveSchema>>>>,
    cache_enabled: Arc<AtomicBool>,
    /// Memoized [`ObjectStore::attr`] results, lock-striped by surrogate
    /// hash so concurrent hits on different objects never contend
    /// ([`crate::rescache`]). Invalidated *precisely* on writes — the
    /// written object's entries plus the transitive inheritor closure, the
    /// same traversal [`ObjectStore::propagate_adaptation`] walks — so
    /// transmitter updates stay instantly visible (§4 view semantics), and
    /// a sweep locks only the shards the closure maps to. Disable with
    /// [`ObjectStore::set_resolution_cache`] for the E11 ablation.
    res_cache: Arc<ShardedResCache>,
    /// Class-extent secondary index: type name → live surrogates of that
    /// exact type. Maintained by [`ObjectStore::index_object`] /
    /// [`ObjectStore::unindex_object`], which wrap every insertion into and
    /// removal from `objects`, so `select` iterates one type's extent
    /// instead of the whole store.
    extent: CowMap<String, HashSet<Surrogate>>,
    /// Ablation switch for E1: when off, transmitter updates skip the
    /// adaptation-flag walk (losing the paper's notification semantics).
    adaptation_enabled: bool,
    // Per-instance resolution counters (the `StoreStats` view), Arc-shared
    // across COW clones so snapshot reads feed the same stats. Global
    // `ccdb_core_*` registry metrics are dual-written via `core_metrics()`.
    local_reads: Arc<Counter>,
    inherited_reads: Arc<Counter>,
    hops: Arc<Counter>,
    rescache_hits: Arc<Counter>,
    rescache_misses: Arc<Counter>,
    rescache_invalidations: Arc<Counter>,
}

impl Clone for ObjectStore {
    /// O(shards + chunks + classes) structural-sharing clone — the snapshot
    /// publication step. The clone shares the schema memo, the resolution
    /// value cache, and the stats counters with the original (they are
    /// caches over immutable schema / process telemetry, not versioned
    /// state); all object data is copy-on-write.
    fn clone(&self) -> Self {
        ObjectStore {
            catalog: Arc::clone(&self.catalog),
            gen: self.gen.clone(),
            objects: self.objects.clone(),
            classes: self.classes.clone(),
            inheritors_of: self.inheritors_of.clone(),
            participant_in: self.participant_in.clone(),
            adaptation_log: self.adaptation_log.clone(),
            clock: self.clock,
            version: self.version,
            write_stamps: self.write_stamps.clone(),
            eff_cache: Arc::clone(&self.eff_cache),
            cache_enabled: Arc::clone(&self.cache_enabled),
            res_cache: Arc::clone(&self.res_cache),
            extent: self.extent.clone(),
            adaptation_enabled: self.adaptation_enabled,
            local_reads: Arc::clone(&self.local_reads),
            inherited_reads: Arc::clone(&self.inherited_reads),
            hops: Arc::clone(&self.hops),
            rescache_hits: Arc::clone(&self.rescache_hits),
            rescache_misses: Arc::clone(&self.rescache_misses),
            rescache_invalidations: Arc::clone(&self.rescache_invalidations),
        }
    }
}

impl ObjectStore {
    /// Create a store over a validated catalog, with the default
    /// resolution-cache shard count
    /// ([`DEFAULT_RESOLUTION_CACHE_SHARDS`]).
    pub fn new(catalog: Catalog) -> CoreResult<Self> {
        Self::with_resolution_cache_shards(catalog, DEFAULT_RESOLUTION_CACHE_SHARDS)
    }

    /// Create a store whose resolution value cache is striped over
    /// `shards` locks (clamped to ≥ 1 and rounded up to a power of two).
    /// Shard count is a pure performance knob — the E13 sweep compares
    /// counts, and the shadow-store property test runs at 1/4/16 to show
    /// resolution semantics are identical at every count.
    pub fn with_resolution_cache_shards(catalog: Catalog, shards: usize) -> CoreResult<Self> {
        catalog.validate()?;
        let res_cache = Arc::new(ShardedResCache::new(shards));
        core_metrics()
            .rescache_shard_count
            .set(res_cache.shard_count() as i64);
        Ok(ObjectStore {
            catalog: Arc::new(catalog),
            gen: SurrogateGen::new(),
            objects: CowMap::new(),
            classes: BTreeMap::new(),
            inheritors_of: CowMap::new(),
            participant_in: CowMap::new(),
            adaptation_log: AppendLog::new(),
            clock: 0,
            version: 0,
            write_stamps: CowMap::new(),
            eff_cache: Arc::new(Mutex::new(HashMap::new())),
            cache_enabled: Arc::new(AtomicBool::new(true)),
            res_cache,
            extent: CowMap::new(),
            adaptation_enabled: true,
            local_reads: Arc::new(Counter::new()),
            inherited_reads: Arc::new(Counter::new()),
            hops: Arc::new(Counter::new()),
            rescache_hits: Arc::new(Counter::new()),
            rescache_misses: Arc::new(Counter::new()),
            rescache_invalidations: Arc::new(Counter::new()),
        })
    }

    /// The catalog this store was created with.
    pub fn catalog(&self) -> &Catalog {
        self.catalog.as_ref()
    }

    /// The MVCC version this store instance represents: 0 for a standalone
    /// store, otherwise the version stamp assigned by
    /// [`crate::shared::SharedStore`] (monotonic, never reused — an aborted
    /// write cycle burns its version).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamp the version the next mutations belong to. Called by
    /// [`crate::shared::SharedStore`] at the start of every write cycle,
    /// before any mutation runs.
    pub fn set_version(&mut self, v: u64) {
        self.version = v;
    }

    /// The version of the last version-managed write to `attr` of `obj`
    /// (0 = never written under version management). Commit-time
    /// write-write conflict detection compares this against a
    /// transaction's begin version (first committer wins).
    pub fn write_stamp(&self, obj: Surrogate, attr: &str) -> u64 {
        self.write_stamps
            .get(&obj)
            .and_then(|m| m.get(attr))
            .copied()
            .unwrap_or(0)
    }

    /// Enable/disable the effective-schema memo (ablation for experiment E2).
    pub fn set_schema_cache(&self, enabled: bool) {
        self.cache_enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.eff_cache.lock().clear();
        }
    }

    /// Enable/disable the resolution value cache (ablation for experiment
    /// E11). Disabling clears it *atomically with respect to concurrent
    /// fills* — the fill path re-checks the flag under the shard write
    /// lock, so once this returns no stale entry is readable and none can
    /// reappear ([`crate::rescache::ShardedResCache::set_enabled`]).
    /// Re-enabling starts cold. Correctness is unaffected either way —
    /// with the cache off every read walks the binding chain, exactly the
    /// paper's resolved-not-materialized model.
    pub fn set_resolution_cache(&self, enabled: bool) {
        self.res_cache.set_enabled(enabled);
    }

    /// Is the resolution value cache currently enabled?
    pub fn resolution_cache_enabled(&self) -> bool {
        self.res_cache.enabled()
    }

    /// Number of memoized resolution entries (tests/diagnostics). Sums
    /// per-shard snapshots one lock at a time, so heavy read traffic on
    /// the other shards is never stalled behind the sum.
    pub fn resolution_cache_len(&self) -> usize {
        self.res_cache.len()
    }

    /// Number of stripes in the resolution value cache (a power of two).
    pub fn resolution_cache_shards(&self) -> usize {
        self.res_cache.shard_count()
    }

    /// Which cache stripe `s` maps to (tests/diagnostics — lets a test
    /// pick inheritors that provably live in different shards).
    pub fn resolution_cache_shard_of(&self, s: Surrogate) -> usize {
        self.res_cache.shard_of(s)
    }

    /// Drop every memoized resolution (watermarks survive). Used by the
    /// MVCC rollback path: fills stamped with an aborted write-cycle
    /// version must not outlive the rollback.
    pub(crate) fn clear_resolution_cache(&self) {
        self.res_cache.clear();
    }

    /// Replace this store's resolution value cache with a private, empty
    /// one. A COW clone shares the cache with its origin by default —
    /// transaction workspaces call this so speculative fills and
    /// invalidations from uncommitted writes never touch the published
    /// store's shared cache.
    pub fn detach_resolution_cache(&mut self) {
        self.res_cache = Arc::new(ShardedResCache::new(8));
    }

    /// Drop the memoized resolutions of `root` and of every object that
    /// (transitively) inherits through it. With `item: Some(name)` the sweep
    /// follows only relationships permeable for `name` and drops only that
    /// attribute's entries — the exact traversal
    /// [`ObjectStore::propagate_adaptation`] walks for a transmitter update.
    /// With `None` (bind/unbind/delete/undelete: whole-object resolution
    /// changed) it follows every binding and drops every entry of the
    /// closure.
    fn invalidate_resolution(&self, root: Surrogate, item: Option<&str>) {
        if !self.res_cache.enabled() || self.res_cache.is_empty() {
            return;
        }
        let mut tspan = trace::span("core.rescache.invalidate");
        if let Some(s) = &mut tspan {
            s.u64("root", root.0);
            match item {
                Some(name) => s.field("item", FieldValue::Owned(name.to_string())),
                None => s.str("item", "*"),
            }
        }
        // Collect the affected closure first — a read-only traversal of the
        // binding graph holding no cache locks — then sweep only the shards
        // that closure maps to, each locked exactly once.
        let mut closure = Vec::new();
        let mut frontier = vec![root];
        let mut seen = HashSet::new();
        while let Some(t) = frontier.pop() {
            if !seen.insert(t) {
                continue;
            }
            closure.push(t);
            for rel in self.inheritors_of.get(&t).map(Vec::as_slice).unwrap_or(&[]) {
                let Some(o) = self.objects.get(rel) else {
                    continue;
                };
                if let Some(name) = item {
                    if !self.catalog.is_permeable(&o.type_name, name) {
                        continue;
                    }
                }
                if let Some(i) = o.inheritor() {
                    frontier.push(i);
                }
            }
        }
        let (removed, shards_locked) = self.res_cache.invalidate(&closure, item, self.version);
        if let Some(s) = &mut tspan {
            s.u64("swept", closure.len() as u64);
            s.u64("removed", removed);
            s.u64("shards", shards_locked);
        }
        core_metrics().rescache_shard_sweeps.add(shards_locked);
        if removed > 0 {
            self.rescache_invalidations.add(removed);
            core_metrics().rescache_invalidations.add(removed);
        }
    }

    /// Effective schema of a type, memoized.
    fn effective(&self, type_name: &str) -> CoreResult<Arc<EffectiveSchema>> {
        if self.cache_enabled.load(Ordering::Relaxed) {
            if let Some(e) = self.eff_cache.lock().get(type_name) {
                return Ok(Arc::clone(e));
            }
        }
        let eff = Arc::new(self.catalog.effective_schema(type_name)?);
        if self.cache_enabled.load(Ordering::Relaxed) {
            self.eff_cache
                .lock()
                .insert(type_name.to_string(), Arc::clone(&eff));
        }
        Ok(eff)
    }

    /// Snapshot the resolution counters (this store only; the process-wide
    /// aggregates live in the `ccdb-obs` global registry).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            local_reads: self.local_reads.get(),
            inherited_reads: self.inherited_reads.get(),
            hops: self.hops.get(),
            rescache_hits: self.rescache_hits.get(),
            rescache_misses: self.rescache_misses.get(),
            rescache_invalidations: self.rescache_invalidations.get(),
        }
    }

    /// Reset the resolution counters (this store only; the global registry
    /// is untouched).
    pub fn reset_stats(&self) {
        self.local_reads.reset();
        self.inherited_reads.reset();
        self.hops.reset();
        self.rescache_hits.reset();
        self.rescache_misses.reset();
        self.rescache_invalidations.reset();
    }

    /// Number of live objects (of all kinds).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Raw object access.
    pub fn object(&self, s: Surrogate) -> CoreResult<&ObjectData> {
        self.objects.get(&s).ok_or(CoreError::NoSuchObject(s))
    }

    fn object_mut(&mut self, s: Surrogate) -> CoreResult<&mut ObjectData> {
        self.objects.get_mut(&s).ok_or(CoreError::NoSuchObject(s))
    }

    /// All live surrogates (unordered).
    pub fn surrogates(&self) -> impl Iterator<Item = Surrogate> + '_ {
        self.objects.keys().copied()
    }

    // ------------------------------------------------------------------
    // Classes
    // ------------------------------------------------------------------

    /// Create a named class for objects of `type_name`.
    pub fn create_class(&mut self, name: &str, type_name: &str) -> CoreResult<()> {
        self.catalog.object_type(type_name)?;
        if self.classes.contains_key(name) {
            return Err(CoreError::Duplicate {
                kind: "class",
                name: name.into(),
            });
        }
        self.classes.insert(
            name.to_string(),
            ClassDef {
                type_name: type_name.into(),
                members: vec![],
            },
        );
        Ok(())
    }

    /// Members of a named class.
    pub fn class_members(&self, name: &str) -> CoreResult<&[Surrogate]> {
        self.classes
            .get(name)
            .map(|c| c.members.as_slice())
            .ok_or_else(|| CoreError::Unknown {
                kind: "class",
                name: name.into(),
            })
    }

    /// Names of the classes `obj` is a member of (sorted by class name).
    pub fn classes_of(&self, obj: Surrogate) -> Vec<&str> {
        self.classes
            .iter()
            .filter(|(_, def)| def.members.contains(&obj))
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Add an existing top-level object to a class of matching type.
    pub fn add_to_class(&mut self, class: &str, obj: Surrogate) -> CoreResult<()> {
        let ty = self.object(obj)?.type_name.clone();
        let c = self
            .classes
            .get_mut(class)
            .ok_or_else(|| CoreError::Unknown {
                kind: "class",
                name: class.into(),
            })?;
        if c.type_name != ty {
            return Err(CoreError::TypeMismatch {
                expected: c.type_name.clone(),
                got: ty,
                role: format!("member of class `{class}`"),
            });
        }
        if !c.members.contains(&obj) {
            c.members.push(obj);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Object creation
    // ------------------------------------------------------------------

    /// The one way objects enter `self.objects`: inserts the object and
    /// records it in its type's extent index, so the two can never
    /// disagree ([`ObjectStore::verify_integrity`] cross-checks them).
    fn insert_object(&mut self, obj: ObjectData) {
        self.extent
            .entry_or_default(obj.type_name.clone())
            .insert(obj.surrogate);
        self.objects.insert(obj.surrogate, obj);
    }

    /// The one way objects leave `self.objects`: removes the object and
    /// drops it from its type's extent index.
    fn remove_object(&mut self, s: Surrogate) -> Option<ObjectData> {
        let obj = self.objects.remove(&s)?;
        if let Some(members) = self.extent.get_mut(&obj.type_name) {
            members.remove(&s);
            if members.is_empty() {
                self.extent.remove(&obj.type_name);
            }
        }
        Some(obj)
    }

    /// Live surrogates of exactly `type_name` (the class-extent index),
    /// in unspecified order. Empty if the type has no live objects.
    pub fn extent_of(&self, type_name: &str) -> Vec<Surrogate> {
        self.extent
            .get(type_name)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Create a top-level object of `type_name` with initial local
    /// attribute values.
    pub fn create_object(
        &mut self,
        type_name: &str,
        attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        self.catalog.object_type(type_name)?;
        let s = self.gen.issue();
        let obj = ObjectData::plain(s, type_name);
        self.insert_object(obj);
        for (name, value) in attrs {
            self.set_attr(s, name, value)?;
        }
        Ok(s)
    }

    /// Create an object directly into a named class.
    pub fn create_in_class(
        &mut self,
        class: &str,
        attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        let ty = self
            .classes
            .get(class)
            .map(|c| c.type_name.clone())
            .ok_or_else(|| CoreError::Unknown {
                kind: "class",
                name: class.into(),
            })?;
        let s = self.create_object(&ty, attrs)?;
        self.add_to_class(class, s)?;
        Ok(s)
    }

    /// Create a subobject in a **local** subclass of `parent`. Members of
    /// inherited subclasses belong to the transmitter and cannot be created
    /// here (read-only view).
    pub fn create_subobject(
        &mut self,
        parent: Surrogate,
        subclass: &str,
        attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        let parent_ty = self.object(parent)?.type_name.clone();
        let spec = self
            .local_subclass_spec(&parent_ty, subclass)
            .map(|s| s.element_type.clone());
        let elem_ty = match spec {
            Some(t) => t,
            None => {
                // Is it inherited? Then it is read-only in this object.
                let eff = self.effective(&parent_ty).ok();
                if eff.as_ref().and_then(|e| e.subclass(subclass)).is_some() {
                    return Err(CoreError::InheritedReadOnly {
                        object: parent,
                        attr: subclass.into(),
                    });
                }
                return Err(CoreError::NoSuchSubclass {
                    object: parent,
                    subclass: subclass.into(),
                });
            }
        };
        let s = self.gen.issue();
        let mut obj = ObjectData::plain(s, &elem_ty);
        obj.owner = Some(Owner {
            parent,
            subclass: subclass.to_string(),
        });
        self.insert_object(obj);
        self.object_mut(parent)?
            .subclasses
            .entry(subclass.to_string())
            .or_default()
            .push(s);
        for (name, value) in attrs {
            self.set_attr(s, name, value)?;
        }
        Ok(s)
    }

    /// Create a top-level relationship object.
    pub fn create_rel(
        &mut self,
        rel_type: &str,
        participants: Vec<(&str, Vec<Surrogate>)>,
        attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        let specs = self.catalog.rel_type(rel_type)?.participants.clone();
        let mut map = BTreeMap::new();
        for (role, members) in &participants {
            map.insert(role.to_string(), members.clone());
        }
        self.check_participants(rel_type, &specs, &map)?;
        let s = self.gen.issue();
        let obj = ObjectData::relationship(s, rel_type, map.clone());
        self.insert_object(obj);
        for members in map.values() {
            for m in members {
                self.participant_in.entry_or_default(*m).push(s);
            }
        }
        for (name, value) in attrs {
            self.set_attr(s, name, value)?;
        }
        Ok(s)
    }

    /// Create a relationship object inside a local subrel class of `parent`
    /// (e.g. a `Wires` member of a `Gate`).
    pub fn create_subrel(
        &mut self,
        parent: Surrogate,
        subrel: &str,
        participants: Vec<(&str, Vec<Surrogate>)>,
        attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        let parent_ty = self.object(parent)?.type_name.clone();
        let spec = self
            .local_subrel_spec(&parent_ty, subrel)
            .ok_or_else(|| CoreError::NoSuchSubclass {
                object: parent,
                subclass: subrel.into(),
            })?
            .clone();
        let s = self.create_rel(&spec.rel_type, participants, attrs)?;
        self.object_mut(s)?.owner = Some(Owner {
            parent,
            subclass: subrel.to_string(),
        });
        self.object_mut(parent)?
            .subclasses
            .entry(subrel.to_string())
            .or_default()
            .push(s);
        Ok(s)
    }

    /// Create a subobject in a local subclass of a **relationship** object
    /// (§5: `ScrewingType` embeds `Bolt` and `Nut` subclasses).
    pub fn create_rel_subobject(
        &mut self,
        rel_obj: Surrogate,
        subclass: &str,
        attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        let rel_ty = self.object(rel_obj)?.type_name.clone();
        let def = self.catalog.rel_type(&rel_ty)?;
        let elem_ty = def
            .subclasses
            .iter()
            .find(|sc| sc.name == subclass)
            .map(|sc| sc.element_type.clone())
            .ok_or_else(|| CoreError::NoSuchSubclass {
                object: rel_obj,
                subclass: subclass.into(),
            })?;
        let s = self.gen.issue();
        let mut obj = ObjectData::plain(s, &elem_ty);
        obj.owner = Some(Owner {
            parent: rel_obj,
            subclass: subclass.to_string(),
        });
        self.insert_object(obj);
        self.object_mut(rel_obj)?
            .subclasses
            .entry(subclass.to_string())
            .or_default()
            .push(s);
        for (name, value) in attrs {
            self.set_attr(s, name, value)?;
        }
        Ok(s)
    }

    fn check_participants(
        &self,
        rel_type: &str,
        specs: &[ParticipantSpec],
        provided: &BTreeMap<String, Vec<Surrogate>>,
    ) -> CoreResult<()> {
        for spec in specs {
            let members = provided.get(&spec.name).map(Vec::as_slice).unwrap_or(&[]);
            if !spec.many && members.len() != 1 {
                return Err(CoreError::InvalidSchema {
                    type_name: rel_type.into(),
                    reason: format!(
                        "participant `{}` needs exactly one object, got {}",
                        spec.name,
                        members.len()
                    ),
                });
            }
            if let Some(required) = &spec.required_type {
                for m in members {
                    let got = &self.object(*m)?.type_name;
                    if got != required {
                        return Err(CoreError::TypeMismatch {
                            expected: required.clone(),
                            got: got.clone(),
                            role: format!("participant `{}` of `{rel_type}`", spec.name),
                        });
                    }
                }
            } else {
                for m in members {
                    self.object(*m)?;
                }
            }
        }
        for role in provided.keys() {
            if !specs.iter().any(|s| &s.name == role) {
                return Err(CoreError::InvalidSchema {
                    type_name: rel_type.into(),
                    reason: format!("unknown participant role `{role}`"),
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Inheritance bindings
    // ------------------------------------------------------------------

    /// Bind `inheritor` to `transmitter` through inheritance-relationship
    /// type `rel_type`, creating the relationship object (returned).
    pub fn bind(
        &mut self,
        rel_type: &str,
        transmitter: Surrogate,
        inheritor: Surrogate,
        rel_attrs: Vec<(&str, Value)>,
    ) -> CoreResult<Surrogate> {
        let mut tspan = trace::span("core.bind");
        if let Some(s) = &mut tspan {
            s.field("rel_type", FieldValue::Owned(rel_type.to_string()));
            s.u64("transmitter", transmitter.0);
            s.u64("inheritor", inheritor.0);
        }
        let def = self.catalog.inher_rel_type(rel_type)?.clone();
        let trans_ty = self.object(transmitter)?.type_name.clone();
        if trans_ty != def.transmitter_type {
            return Err(CoreError::TypeMismatch {
                expected: def.transmitter_type.clone(),
                got: trans_ty,
                role: format!("transmitter of `{rel_type}`"),
            });
        }
        // The declared `inheritor:` type is the *canonical* inheritor; any
        // type that explicitly states `inheritor-in:` may bind (the paper's
        // §5 WeightCarrying_Structure embeds anonymous Girders/Plates member
        // types as further inheritors of AllOf_GirderIf/AllOf_PlateIf).
        let inh_ty = self.object(inheritor)?.type_name.clone();
        let inh_def = self.catalog.object_type(&inh_ty)?;
        if !inh_def.inheritor_in.iter().any(|r| r == rel_type) {
            return Err(CoreError::NotAnInheritor {
                type_name: inh_ty,
                rel_type: rel_type.into(),
            });
        }
        if self.object(inheritor)?.bindings.contains_key(rel_type) {
            return Err(CoreError::AlreadyBound {
                object: inheritor,
                rel_type: rel_type.into(),
            });
        }
        // Object-level cycle check: does `transmitter` (transitively)
        // inherit from `inheritor`?
        if transmitter == inheritor || self.transitively_inherits_from(transmitter, inheritor)? {
            return Err(CoreError::InheritanceCycle { object: inheritor });
        }
        // Validate the relationship attributes *before* mutating anything:
        // an invalid attribute must not leave a half-created binding behind.
        for (name, value) in &rel_attrs {
            let Some(a) = def.attributes.iter().find(|a| a.name.as_str() == *name) else {
                return Err(CoreError::NoSuchAttribute {
                    object: inheritor,
                    attr: (*name).into(),
                });
            };
            if !value.conforms_to(&a.domain) {
                return Err(CoreError::DomainMismatch {
                    attr: (*name).into(),
                    expected: a.domain.describe(),
                    got: format!("{value}"),
                });
            }
        }
        let s = self.gen.issue();
        let obj = ObjectData::inheritance(s, rel_type, transmitter, inheritor);
        self.insert_object(obj);
        self.object_mut(inheritor)?
            .bindings
            .insert(rel_type.to_string(), s);
        self.inheritors_of.entry_or_default(transmitter).push(s);
        for (name, value) in rel_attrs {
            self.set_attr(s, name, value)?;
        }
        // The inheritor (and anything inheriting through it) now resolves
        // through the new binding.
        self.invalidate_resolution(inheritor, None);
        core_metrics().bind.inc();
        event::emit(|| {
            Event::now(
                "core.bind",
                vec![
                    ("rel", FieldValue::U64(s.0)),
                    ("transmitter", FieldValue::U64(transmitter.0)),
                    ("inheritor", FieldValue::U64(inheritor.0)),
                ],
            )
        });
        Ok(s)
    }

    /// Remove an inheritance binding given its relationship object.
    pub fn unbind(&mut self, rel_obj: Surrogate) -> CoreResult<()> {
        let mut tspan = trace::span("core.unbind");
        if let Some(s) = &mut tspan {
            s.u64("rel_obj", rel_obj.0);
        }
        let (transmitter, inheritor, rel_ty) = {
            let o = self.object(rel_obj)?;
            match &o.kind {
                ObjectKind::InheritanceRel {
                    transmitter,
                    inheritor,
                    ..
                } => (*transmitter, *inheritor, o.type_name.clone()),
                _ => {
                    return Err(CoreError::TypeMismatch {
                        expected: "inheritance relationship".into(),
                        got: o.type_name.clone(),
                        role: "unbind target".into(),
                    })
                }
            }
        };
        if let Some(list) = self.inheritors_of.get_mut(&transmitter) {
            list.retain(|r| *r != rel_obj);
            if list.is_empty() {
                self.inheritors_of.remove(&transmitter);
            }
        }
        if let Some(inh) = self.objects.get_mut(&inheritor) {
            inh.bindings.remove(&rel_ty);
        }
        self.remove_object(rel_obj);
        // The inheritor (and its transitive inheritors) lost a resolution
        // path; the relationship object's own attrs are gone too.
        self.invalidate_resolution(inheritor, None);
        self.invalidate_resolution(rel_obj, None);
        core_metrics().unbind.inc();
        event::emit(|| {
            Event::now(
                "core.unbind",
                vec![
                    ("rel", FieldValue::U64(rel_obj.0)),
                    ("transmitter", FieldValue::U64(transmitter.0)),
                    ("inheritor", FieldValue::U64(inheritor.0)),
                ],
            )
        });
        Ok(())
    }

    fn transitively_inherits_from(&self, from: Surrogate, target: Surrogate) -> CoreResult<bool> {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            let obj = self.object(cur)?;
            for rel in obj.bindings.values() {
                if let Some(t) = self.object(*rel)?.transmitter() {
                    if t == target {
                        return Ok(true);
                    }
                    stack.push(t);
                }
            }
        }
        Ok(false)
    }

    /// The inheritance-relationship objects fed by `transmitter`.
    pub fn inheritance_rels_of(&self, transmitter: Surrogate) -> &[Surrogate] {
        self.inheritors_of
            .get(&transmitter)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The relationship objects in which `obj` participates (any role).
    pub fn relationships_of(&self, obj: Surrogate) -> &[Surrogate] {
        self.participant_in
            .get(&obj)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The binding relationship object of `inheritor` in `rel_type`, if any.
    pub fn binding_of(&self, inheritor: Surrogate, rel_type: &str) -> Option<Surrogate> {
        self.objects
            .get(&inheritor)
            .and_then(|o| o.bindings.get(rel_type))
            .copied()
    }

    // ------------------------------------------------------------------
    // Attribute access (value inheritance lives here)
    // ------------------------------------------------------------------

    fn local_attr_domain(&self, type_name: &str, attr: &str) -> Option<crate::domain::Domain> {
        if let Ok(def) = self.catalog.object_type(type_name) {
            return def
                .attributes
                .iter()
                .find(|a| a.name == attr)
                .map(|a| a.domain.clone());
        }
        if let Ok(def) = self.catalog.rel_type(type_name) {
            return def
                .attributes
                .iter()
                .find(|a| a.name == attr)
                .map(|a| a.domain.clone());
        }
        if let Ok(def) = self.catalog.inher_rel_type(type_name) {
            return def
                .attributes
                .iter()
                .find(|a| a.name == attr)
                .map(|a| a.domain.clone());
        }
        None
    }

    fn local_subclass_spec(
        &self,
        type_name: &str,
        name: &str,
    ) -> Option<&crate::schema::SubclassSpec> {
        if let Ok(def) = self.catalog.object_type(type_name) {
            if let Some(sc) = def.subclasses.iter().find(|sc| sc.name == name) {
                return Some(sc);
            }
        }
        if let Ok(def) = self.catalog.rel_type(type_name) {
            if let Some(sc) = def.subclasses.iter().find(|sc| sc.name == name) {
                return Some(sc);
            }
        }
        None
    }

    fn local_subrel_spec(&self, type_name: &str, name: &str) -> Option<&SubrelSpec> {
        // Mirror `local_subclass_spec`: relationship types may own subrels
        // too (a relationship object is a full object, §3/§5).
        if let Ok(def) = self.catalog.object_type(type_name) {
            if let Some(sr) = def.subrels.iter().find(|sr| sr.name == name) {
                return Some(sr);
            }
        }
        if let Ok(def) = self.catalog.rel_type(type_name) {
            if let Some(sr) = def.subrels.iter().find(|sr| sr.name == name) {
                return Some(sr);
            }
        }
        None
    }

    /// Effective attribute read with value-inheritance resolution.
    ///
    /// Local attributes answer directly; inherited attributes walk the
    /// binding chain to the transmitter. An *unbound* inheritor yields
    /// [`Value::Missing`] — it inherits only the structure (§4.1).
    pub fn attr(&self, obj: Surrogate, name: &str) -> CoreResult<Value> {
        // One relaxed load and a branch when tracing is off (the same
        // quiescent pattern as SpanTimer); hop spans below are only
        // attempted when this root span exists.
        let mut tspan = trace::span("core.attr");
        if let Some(s) = &mut tspan {
            s.u64("object", obj.0);
            s.field("attr", FieldValue::Owned(name.to_string()));
        }
        let caching = self.res_cache.enabled();
        if caching {
            // Hits take only the owning shard's shared lock, so concurrent
            // cached readers (SharedStore::par_select, E11b/E13a) neither
            // serialize nor contend across shards.
            if let Some(v) = self.res_cache.get(obj, name, self.version) {
                self.rescache_hits.inc();
                core_metrics().rescache_hits.inc();
                if let Some(s) = &mut tspan {
                    s.str("rescache", "hit");
                }
                return Ok(v);
            }
        }
        // Iterative chain walk with *batched* counter updates: bookkeeping
        // happens once per read, not once per hop, keeping instrumentation
        // overhead on the resolution hot path within noise.
        let mut cur = obj;
        let mut depth = 0u64;
        let mut inherited = false;
        let value = loop {
            let o = self.object(cur)?;
            if self.local_attr_domain(&o.type_name, name).is_some() {
                break o.attrs.get(name).cloned().unwrap_or(Value::Missing);
            }
            // Not local: find the inheritance source in the effective schema.
            let eff = self.effective(&o.type_name)?;
            match eff.attr(name) {
                Some((_, ItemSource::Inherited { via_rel, .. })) => {
                    inherited = true;
                    match o.bindings.get(via_rel) {
                        Some(rel_obj) => {
                            let from = cur;
                            cur = self
                                .object(*rel_obj)?
                                .transmitter()
                                .ok_or_else(|| CoreError::EvalError("corrupt binding".into()))?;
                            depth += 1;
                            if tspan.is_some() {
                                let mut hop = trace::span("core.attr.hop");
                                if let Some(h) = &mut hop {
                                    h.u64("hop", depth);
                                    h.u64("from", from.0);
                                    h.field("via_rel", FieldValue::Owned(via_rel.clone()));
                                    h.u64("rel_obj", rel_obj.0);
                                    h.u64("transmitter", cur.0);
                                    h.str(
                                        "permeable",
                                        if self.catalog.is_permeable(via_rel, name) {
                                            "yes"
                                        } else {
                                            "no"
                                        },
                                    );
                                }
                            }
                            if depth > MAX_RESOLUTION_DEPTH {
                                return Err(CoreError::EvalError(format!(
                                    "resolution of `{name}` on {obj} exceeded \
                                     {MAX_RESOLUTION_DEPTH} hops — binding cycle in a corrupt \
                                     store?"
                                )));
                            }
                        }
                        None => {
                            if let Some(s) = &mut tspan {
                                s.str("unbound", "yes");
                            }
                            break Value::Missing; // unbound inheritor (§4.1)
                        }
                    }
                }
                Some((_, ItemSource::Local)) => unreachable!("local handled above"),
                None => {
                    return Err(CoreError::NoSuchAttribute {
                        object: cur,
                        attr: name.into(),
                    })
                }
            }
        };
        if let Some(s) = &mut tspan {
            if caching {
                s.str("rescache", "miss");
            }
            s.u64("hops", depth);
            s.u64("resolved_from", cur.0);
        }
        if caching {
            self.rescache_misses.inc();
            core_metrics().rescache_misses.inc();
            self.res_cache.fill(obj, name, &value, self.version);
        }
        let m = core_metrics();
        if inherited {
            self.inherited_reads.inc();
            m.inherited_reads.inc();
            if depth > 0 {
                self.hops.add(depth);
                m.hops.add(depth);
            }
        } else {
            self.local_reads.inc();
            m.local_reads.inc();
        }
        if ccdb_obs::enabled() {
            m.hop_hist.observe(depth);
        }
        Ok(value)
    }

    /// The chain of `(object, item)` pairs consulted when resolving `item`
    /// (attribute or subclass) on `obj`: starts at `obj` and follows
    /// inheritance bindings to the providing transmitter. This is exactly
    /// the set a transaction must read-lock (§6 lock inheritance —
    /// "the parts of the component which are visible in the composite
    /// object have to be read-locked").
    pub fn resolution_chain(
        &self,
        obj: Surrogate,
        item: &str,
    ) -> CoreResult<Vec<(Surrogate, String)>> {
        let chain = self.resolution_chain_inner(obj, item)?;
        core_metrics().resolution_chains.inc();
        if ccdb_obs::enabled() {
            let hops = (chain.len() - 1) as u64;
            core_metrics().hop_hist.observe(hops);
            event::emit(|| {
                Event::now(
                    "core.resolution.chain",
                    vec![
                        ("object", FieldValue::U64(obj.0)),
                        ("item", FieldValue::Owned(item.to_string())),
                        ("hops", FieldValue::U64(hops)),
                    ],
                )
            });
        }
        Ok(chain)
    }

    fn resolution_chain_inner(
        &self,
        obj: Surrogate,
        item: &str,
    ) -> CoreResult<Vec<(Surrogate, String)>> {
        let mut chain = vec![(obj, item.to_string())];
        let mut cur = obj;
        loop {
            let o = self.object(cur)?;
            if self.local_attr_domain(&o.type_name, item).is_some()
                || self.local_subclass_spec(&o.type_name, item).is_some()
                || self.local_subrel_spec(&o.type_name, item).is_some()
            {
                return Ok(chain);
            }
            let eff = self.effective(&o.type_name)?;
            let via = match (eff.attr(item), eff.subclass(item)) {
                (Some((_, ItemSource::Inherited { via_rel, .. })), _) => via_rel.clone(),
                (_, Some((_, ItemSource::Inherited { via_rel, .. }))) => via_rel.clone(),
                _ => {
                    return Err(CoreError::NoSuchAttribute {
                        object: cur,
                        attr: item.into(),
                    })
                }
            };
            match o.bindings.get(&via) {
                Some(rel_obj) => {
                    let t = self
                        .object(*rel_obj)?
                        .transmitter()
                        .ok_or_else(|| CoreError::EvalError("corrupt binding".into()))?;
                    chain.push((t, item.to_string()));
                    cur = t;
                    if chain.len() as u64 > MAX_RESOLUTION_DEPTH {
                        return Err(CoreError::EvalError(format!(
                            "resolution chain of `{item}` on {obj} exceeded \
                             {MAX_RESOLUTION_DEPTH} hops — binding cycle in a corrupt store?"
                        )));
                    }
                }
                None => return Ok(chain), // unbound: chain ends here
            }
        }
    }

    /// Write a **local** attribute. Writing an inherited attribute is
    /// rejected ([`CoreError::InheritedReadOnly`]); a successful write to a
    /// permeable attribute of a transmitter marks every (transitively)
    /// affected inheritance-relationship object as needing adaptation.
    pub fn set_attr(&mut self, obj: Surrogate, name: &str, value: Value) -> CoreResult<()> {
        let ty = self.object(obj)?.type_name.clone();
        match self.local_attr_domain(&ty, name) {
            Some(domain) => {
                if !value.conforms_to(&domain) {
                    return Err(CoreError::DomainMismatch {
                        attr: name.into(),
                        expected: domain.describe(),
                        got: format!("{value}"),
                    });
                }
                self.object_mut(obj)?.attrs.insert(name.to_string(), value);
                if self.version > 0 {
                    self.write_stamps
                        .entry_or_default(obj)
                        .insert(name.to_string(), self.version);
                }
                core_metrics().set_attr.inc();
                self.invalidate_resolution(obj, Some(name));
                self.propagate_adaptation(obj, name)?;
                Ok(())
            }
            None => {
                // Inherited → read-only; unknown → no such attribute.
                if let Ok(eff) = self.effective(&ty) {
                    if eff.attr(name).is_some() {
                        return Err(CoreError::InheritedReadOnly {
                            object: obj,
                            attr: name.into(),
                        });
                    }
                }
                Err(CoreError::NoSuchAttribute {
                    object: obj,
                    attr: name.into(),
                })
            }
        }
    }

    /// Enable/disable adaptation tracking (ablation for experiment E1).
    /// With tracking off, inheritors still see updates instantly (view
    /// semantics are resolution-based) but no flags/events are recorded.
    pub fn set_adaptation_tracking(&mut self, enabled: bool) {
        self.adaptation_enabled = enabled;
    }

    /// Raise `needs_adaptation` on every inheritance-relationship object
    /// through which `item` of `transmitter` is (transitively) visible.
    fn propagate_adaptation(&mut self, transmitter: Surrogate, item: &str) -> CoreResult<()> {
        if !self.adaptation_enabled {
            return Ok(());
        }
        let mut tspan = trace::span("core.adaptation.propagate");
        if let Some(s) = &mut tspan {
            s.u64("transmitter", transmitter.0);
            s.field("item", FieldValue::Owned(item.to_string()));
        }
        let mut flagged = 0u64;
        let mut frontier = vec![transmitter];
        let mut seen = HashSet::new();
        while let Some(t) = frontier.pop() {
            if !seen.insert(t) {
                continue;
            }
            let rels: Vec<Surrogate> = self.inheritors_of.get(&t).cloned().unwrap_or_default();
            for rel in rels {
                let (rel_ty, inheritor) = {
                    let o = self.object(rel)?;
                    (o.type_name.clone(), o.inheritor().unwrap_or_default())
                };
                if !self.catalog.is_permeable(&rel_ty, item) {
                    continue;
                }
                self.clock += 1;
                let at = self.clock;
                if let Some(o) = self.objects.get_mut(&rel) {
                    if let ObjectKind::InheritanceRel {
                        needs_adaptation, ..
                    } = &mut o.kind
                    {
                        *needs_adaptation = true;
                    }
                }
                self.adaptation_log.push(AdaptationEvent {
                    rel_object: rel,
                    transmitter: t,
                    inheritor,
                    item: item.to_string(),
                    at,
                });
                core_metrics().adaptation_events.inc();
                flagged += 1;
                if tspan.is_some() {
                    let mut flag = trace::span("core.adaptation.flag");
                    if let Some(fs) = &mut flag {
                        fs.u64("rel_obj", rel.0);
                        fs.u64("transmitter", t.0);
                        fs.u64("inheritor", inheritor.0);
                        fs.field("via_rel", FieldValue::Owned(rel_ty.clone()));
                    }
                }
                // The inheritor may re-transmit the same item further up.
                frontier.push(inheritor);
            }
        }
        if let Some(s) = &mut tspan {
            s.u64("fanout", flagged);
        }
        if flagged > 0 && ccdb_obs::enabled() {
            core_metrics().adaptation_fanout.observe(flagged);
            event::emit(|| {
                Event::now(
                    "core.adaptation.propagate",
                    vec![
                        ("transmitter", FieldValue::U64(transmitter.0)),
                        ("item", FieldValue::Owned(item.to_string())),
                        ("fanout", FieldValue::U64(flagged)),
                    ],
                )
            });
        }
        Ok(())
    }

    /// Adaptation events since a given logical time.
    pub fn adaptation_events_since(&self, at: u64) -> Vec<AdaptationEvent> {
        let idx = self.adaptation_log.partition_point(|e| e.at <= at);
        self.adaptation_log.tail_from(idx)
    }

    /// All adaptation events.
    pub fn adaptation_log(&self) -> Vec<AdaptationEvent> {
        self.adaptation_log.iter().cloned().collect()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Does this inheritance-relationship object currently flag a needed
    /// adaptation?
    pub fn needs_adaptation(&self, rel_obj: Surrogate) -> CoreResult<bool> {
        match &self.object(rel_obj)?.kind {
            ObjectKind::InheritanceRel {
                needs_adaptation, ..
            } => Ok(*needs_adaptation),
            _ => Err(CoreError::TypeMismatch {
                expected: "inheritance relationship".into(),
                got: self.object(rel_obj)?.type_name.clone(),
                role: "adaptation flag".into(),
            }),
        }
    }

    /// Clear the adaptation flag after the inheritor was (manually) adapted.
    pub fn acknowledge_adaptation(&mut self, rel_obj: Surrogate) -> CoreResult<()> {
        match &mut self.object_mut(rel_obj)?.kind {
            ObjectKind::InheritanceRel {
                needs_adaptation, ..
            } => {
                *needs_adaptation = false;
                Ok(())
            }
            _ => Err(CoreError::TypeMismatch {
                expected: "inheritance relationship".into(),
                got: "other".into(),
                role: "adaptation flag".into(),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Subclass access (with inheritance)
    // ------------------------------------------------------------------

    /// Effective subclass members: local members, or — for an inherited
    /// subclass — the transmitter's members (a read-only view).
    pub fn subclass_members(&self, obj: Surrogate, name: &str) -> CoreResult<Vec<Surrogate>> {
        let o = self.object(obj)?;
        if self.local_subclass_spec(&o.type_name, name).is_some()
            || self.local_subrel_spec(&o.type_name, name).is_some()
        {
            return Ok(o.subclasses.get(name).cloned().unwrap_or_default());
        }
        let eff = self.effective(&o.type_name)?;
        match eff.subclass(name) {
            Some((_, ItemSource::Inherited { via_rel, .. })) => match o.bindings.get(via_rel) {
                Some(rel_obj) => {
                    let transmitter = self
                        .object(*rel_obj)?
                        .transmitter()
                        .ok_or_else(|| CoreError::EvalError("corrupt binding".into()))?;
                    self.hops.inc();
                    core_metrics().hops.inc();
                    self.subclass_members(transmitter, name)
                }
                None => Ok(vec![]), // unbound inheritor: structure only
            },
            Some((_, ItemSource::Local)) => unreachable!("local handled above"),
            None => Err(CoreError::NoSuchSubclass {
                object: obj,
                subclass: name.into(),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Delete an object and cascade over its subobjects/subrels (§3: "all
    /// subobjects depend on the complex object, they are deleted with the
    /// complex object"). Relationship objects referencing a deleted object
    /// are deleted too. A transmitter with live inheritors is protected —
    /// unbind first or use [`ObjectStore::delete_force`].
    pub fn delete(&mut self, obj: Surrogate) -> CoreResult<()> {
        self.check_deletable(obj)?;
        self.delete_unchecked_rec(obj, &mut None)
    }

    /// Like [`ObjectStore::delete`], but returns a [`DeletionRecord`] from
    /// which [`ObjectStore::undelete`] can restore everything removed —
    /// the basis of transactional cascade delete in `ccdb-txn`.
    pub fn delete_recorded(&mut self, obj: Surrogate) -> CoreResult<DeletionRecord> {
        self.check_deletable(obj)?;
        let mut rec = DeletionRecord::default();
        {
            let mut sink = Some(&mut rec);
            self.delete_unchecked_rec(obj, &mut sink)?;
        }
        Ok(rec)
    }

    /// Restore everything a [`DeletionRecord`] removed: the objects, their
    /// memberships in surviving owners and classes, inheritance bindings,
    /// and relationship back-references. Membership *order* within a
    /// surviving owner's subclass is not preserved (restored members are
    /// appended).
    pub fn undelete(&mut self, rec: DeletionRecord) -> CoreResult<()> {
        let mut restored: Vec<Surrogate> = Vec::new();
        for o in &rec.objects {
            if !self.objects.contains_key(&o.surrogate) {
                self.insert_object(o.clone());
                restored.push(o.surrogate);
            }
        }
        for s in &restored {
            let o = self.objects.get(s).expect("just restored").clone();
            match &o.kind {
                ObjectKind::InheritanceRel {
                    transmitter,
                    inheritor,
                    ..
                } => {
                    let list = self.inheritors_of.entry_or_default(*transmitter);
                    if !list.contains(s) {
                        list.push(*s);
                    }
                    if let Some(inh) = self.objects.get_mut(inheritor) {
                        inh.bindings.insert(o.type_name.clone(), *s);
                    }
                    // A surviving inheritor may have cached `Missing` while
                    // unbound; the restored binding re-routes its reads.
                    self.invalidate_resolution(*inheritor, None);
                }
                ObjectKind::Relationship { participants } => {
                    for members in participants.values() {
                        for m in members {
                            let list = self.participant_in.entry_or_default(*m);
                            if !list.contains(s) {
                                list.push(*s);
                            }
                        }
                    }
                }
                ObjectKind::Plain => {}
            }
            if let Some(owner) = &o.owner {
                if let Some(p) = self.objects.get_mut(&owner.parent) {
                    let list = p.subclasses.entry(owner.subclass.clone()).or_default();
                    if !list.contains(s) {
                        list.push(*s);
                    }
                }
            }
        }
        for (class, member) in &rec.classes {
            if let Some(c) = self.classes.get_mut(class) {
                if !c.members.contains(member) {
                    c.members.push(*member);
                }
            }
        }
        Ok(())
    }

    fn check_deletable(&self, obj: Surrogate) -> CoreResult<()> {
        // Protect transmitters anywhere in the doomed subtree.
        let doomed = self.collect_subtree(obj)?;
        for d in &doomed {
            let ext: Vec<Surrogate> = self
                .inheritance_rels_of(*d)
                .iter()
                .filter(|r| {
                    // An inheritor inside the same doomed subtree is fine.
                    self.objects
                        .get(r)
                        .and_then(|o| o.inheritor())
                        .map(|i| !doomed.contains(&i))
                        .unwrap_or(false)
                })
                .copied()
                .collect();
            if !ext.is_empty() {
                return Err(CoreError::TransmitterInUse {
                    object: *d,
                    inheritors: ext.len(),
                });
            }
        }
        Ok(())
    }

    /// Delete even if the object (or a subobject) still transmits: bindings
    /// are dissolved and the affected inheritors are flagged for adaptation.
    pub fn delete_force(&mut self, obj: Surrogate) -> CoreResult<()> {
        let doomed = self.collect_subtree(obj)?;
        for d in doomed {
            for rel in self.inheritance_rels_of(d).to_vec() {
                let inheritor = self.object(rel)?.inheritor().unwrap_or_default();
                self.clock += 1;
                self.adaptation_log.push(AdaptationEvent {
                    rel_object: rel,
                    transmitter: d,
                    inheritor,
                    item: "<deleted>".to_string(),
                    at: self.clock,
                });
                core_metrics().adaptation_events.inc();
                self.unbind(rel)?;
            }
        }
        self.delete_unchecked_rec(obj, &mut None)
    }

    fn collect_subtree(&self, root: Surrogate) -> CoreResult<Vec<Surrogate>> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            let o = self.object(s)?;
            out.push(s);
            stack.extend(o.all_subclass_members());
        }
        Ok(out)
    }

    fn delete_unchecked_rec(
        &mut self,
        obj: Surrogate,
        rec: &mut Option<&mut DeletionRecord>,
    ) -> CoreResult<()> {
        let o = self.object(obj)?.clone();
        if let Some(r) = rec.as_deref_mut() {
            // Snapshot before any mutation (children detach from `o`'s
            // clone-source later, but this clone keeps the full lists).
            r.objects.push(o.clone());
            for (name, c) in &self.classes {
                if c.members.contains(&obj) {
                    r.classes.push((name.clone(), obj));
                }
            }
        }

        // Cascade into subobjects and subrels first.
        for member in o.all_subclass_members().collect::<Vec<_>>() {
            if self.objects.contains_key(&member) {
                self.delete_unchecked_rec(member, rec)?;
            }
        }
        // Dissolve own inheritance bindings (this object as inheritor).
        for rel in o.bindings.values().copied().collect::<Vec<_>>() {
            if self.objects.contains_key(&rel) {
                if let Some(r) = rec.as_deref_mut() {
                    r.objects.push(self.object(rel)?.clone());
                }
                self.unbind(rel)?;
            }
        }
        // Delete relationship objects having this object as a participant.
        for rel in self.participant_in.remove(&obj).unwrap_or_default() {
            if self.objects.contains_key(&rel) {
                self.delete_unchecked_rec(rel, rec)?;
            }
        }
        // If this *is* an inheritance-relationship object, unbind cleanly.
        if matches!(o.kind, ObjectKind::InheritanceRel { .. }) {
            if self.objects.contains_key(&obj) {
                self.unbind(obj)?;
            }
            return Ok(());
        }
        // If a relationship object: drop participant back-references.
        if let ObjectKind::Relationship { participants } = &o.kind {
            for members in participants.values() {
                for m in members {
                    if let Some(list) = self.participant_in.get_mut(m) {
                        list.retain(|r| *r != obj);
                    }
                }
            }
        }
        // Detach from owner.
        if let Some(owner) = &o.owner {
            if let Some(p) = self.objects.get_mut(&owner.parent) {
                if let Some(list) = p.subclasses.get_mut(&owner.subclass) {
                    list.retain(|m| *m != obj);
                }
            }
        }
        // Detach from classes.
        for c in self.classes.values_mut() {
            c.members.retain(|m| *m != obj);
        }
        self.remove_object(obj);
        self.invalidate_resolution(obj, None);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Constraint checking
    // ------------------------------------------------------------------

    /// Check all constraints applying to `obj`: its type's constraints, the
    /// `where` clauses of subrel members it owns, and — for relationship
    /// objects — the relationship type's constraints.
    pub fn check_constraints(&self, obj: Surrogate) -> CoreResult<Vec<Violation>> {
        let o = self.object(obj)?;
        let mut out = Vec::new();
        let constraints: Vec<Constraint> = if let Ok(def) = self.catalog.object_type(&o.type_name) {
            def.constraints.clone()
        } else if let Ok(def) = self.catalog.rel_type(&o.type_name) {
            def.constraints.clone()
        } else if let Ok(def) = self.catalog.inher_rel_type(&o.type_name) {
            def.constraints.clone()
        } else {
            vec![]
        };
        for c in &constraints {
            self.check_one(obj, c, &mut Env::new(), &mut out);
        }
        // Subrel member `where` clauses (object-type and rel-type owners
        // alike — relationship objects may own subrels too).
        let subrel_specs: Vec<SubrelSpec> = if let Ok(def) = self.catalog.object_type(&o.type_name)
        {
            def.subrels.clone()
        } else if let Ok(def) = self.catalog.rel_type(&o.type_name) {
            def.subrels.clone()
        } else {
            vec![]
        };
        for sr in &subrel_specs {
            for member in o.subclasses.get(&sr.name).cloned().unwrap_or_default() {
                for c in &sr.member_constraints {
                    let mut env = Env::with(REL_VAR, member);
                    self.check_one(obj, c, &mut env, &mut out);
                }
            }
        }
        Ok(out)
    }

    fn check_one(
        &self,
        obj: Surrogate,
        constraint: &Constraint,
        env: &mut Env,
        out: &mut Vec<Violation>,
    ) {
        match eval(self, obj, env, &constraint.expr) {
            Ok(Value::Bool(true)) => {}
            Ok(Value::Bool(false)) => out.push(Violation {
                object: obj,
                constraint: constraint.name.clone(),
                detail: None,
            }),
            Ok(other) => out.push(Violation {
                object: obj,
                constraint: constraint.name.clone(),
                detail: Some(format!("constraint evaluated to non-boolean {other}")),
            }),
            Err(e) => out.push(Violation {
                object: obj,
                constraint: constraint.name.clone(),
                detail: Some(e.to_string()),
            }),
        }
    }

    /// All objects of `type_name` whose effective data satisfies the
    /// boolean predicate (used for top-down component selection, §6, and
    /// ad-hoc queries). Results are in surrogate order.
    ///
    /// Iterates only the type's class-extent index, not the whole store,
    /// so the cost scales with that type's population (E13b). A pure
    /// equality predicate `Attr = literal` on an effective-schema
    /// attribute additionally skips the expression interpreter and
    /// compares resolved values directly.
    pub fn select(&self, type_name: &str, predicate: &Expr) -> CoreResult<Vec<Surrogate>> {
        self.catalog.object_type(type_name)?;
        let Some(extent) = self.extent.get(type_name) else {
            return Ok(Vec::new());
        };
        let mut hits: Vec<Surrogate> = Vec::new();
        if let Some((name, lit)) = eq_attr_literal(predicate) {
            // Equivalence to the interpreted path: `eval` resolves a
            // single-segment self path through the same `attr` call and
            // `BinOp::Eq` is plain `Value == Value`. Gated on the attribute
            // existing in the effective schema so unknown attributes still
            // surface the interpreter's `NoSuchAttribute`.
            if self.effective(type_name)?.attr(name).is_some() {
                for &s in extent {
                    if self.attr(s, name)? == *lit {
                        hits.push(s);
                    }
                }
                hits.sort();
                return Ok(hits);
            }
        }
        for &s in extent {
            if let Value::Bool(true) = eval(self, s, &mut Env::new(), predicate)? {
                hits.push(s);
            }
        }
        hits.sort();
        Ok(hits)
    }

    /// Check every object in the store; returns all violations.
    pub fn check_all(&self) -> CoreResult<Vec<Violation>> {
        let mut surrogates: Vec<Surrogate> = self.objects.keys().copied().collect();
        surrogates.sort();
        let mut out = Vec::new();
        for s in surrogates {
            out.extend(self.check_constraints(s)?);
        }
        Ok(out)
    }

    /// Verify the store's structural invariants; returns human-readable
    /// descriptions of any violations (empty = healthy). Checked:
    /// subclass members exist and back-link their owner; bindings point to
    /// live inheritance-relationship objects naming this object as
    /// inheritor; the `inheritors_of`/`participant_in` indexes agree with
    /// the objects; class members exist and have the class's type; the
    /// class-extent index and the live objects agree in both directions.
    pub fn verify_integrity(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (s, o) in self.objects.iter() {
            for (subclass, members) in &o.subclasses {
                for m in members {
                    match self.objects.get(m) {
                        None => problems.push(format!("{s}.{subclass} lists dead member {m}")),
                        Some(mo) => {
                            let ok = mo
                                .owner
                                .as_ref()
                                .map(|w| w.parent == *s && &w.subclass == subclass)
                                .unwrap_or(false);
                            if !ok {
                                problems
                                    .push(format!("{m} does not back-link owner {s}.{subclass}"));
                            }
                        }
                    }
                }
            }
            for (rel_type, rel) in &o.bindings {
                match self.objects.get(rel) {
                    None => problems.push(format!("{s} binding {rel_type} → dead {rel}")),
                    Some(r) => {
                        if r.inheritor() != Some(*s) {
                            problems.push(format!(
                                "{s} binding {rel_type} → {rel} names a different inheritor"
                            ));
                        }
                        match r.transmitter() {
                            Some(t) if self.objects.contains_key(&t) => {
                                let indexed = self
                                    .inheritors_of
                                    .get(&t)
                                    .map(|l| l.contains(rel))
                                    .unwrap_or(false);
                                if !indexed {
                                    problems.push(format!("inheritors_of[{t}] misses rel {rel}"));
                                }
                            }
                            _ => problems.push(format!("{rel} has a dead transmitter")),
                        }
                    }
                }
            }
            if let ObjectKind::Relationship { participants } = &o.kind {
                for members in participants.values() {
                    for m in members {
                        if !self.objects.contains_key(m) {
                            problems.push(format!("{s} references dead participant {m}"));
                        } else if !self
                            .participant_in
                            .get(m)
                            .map(|l| l.contains(s))
                            .unwrap_or(false)
                        {
                            problems.push(format!("participant_in[{m}] misses rel {s}"));
                        }
                    }
                }
            }
        }
        for (t, rels) in self.inheritors_of.iter() {
            for rel in rels {
                let ok = self
                    .objects
                    .get(rel)
                    .and_then(ObjectData::transmitter)
                    .map(|tt| tt == *t)
                    .unwrap_or(false);
                if !ok {
                    problems.push(format!("inheritors_of[{t}] lists stale rel {rel}"));
                }
            }
        }
        for (name, class) in &self.classes {
            for m in &class.members {
                match self.objects.get(m) {
                    None => problems.push(format!("class `{name}` lists dead member {m}")),
                    Some(o) if o.type_name != class.type_name => {
                        problems.push(format!("class `{name}` member {m} has wrong type"))
                    }
                    _ => {}
                }
            }
        }
        // Object-level binding cycles: `bind` refuses to create them, but a
        // corrupt or hand-edited persisted store can contain one, which
        // would (absent the resolution depth cap) loop reads forever.
        for (s, o) in self.objects.iter() {
            if !o.bindings.is_empty() && self.transitively_inherits_from(*s, *s).unwrap_or(false) {
                problems.push(format!("{s} lies on an inheritance-binding cycle"));
            }
        }
        // Class-extent index ↔ objects agreement (both directions).
        for (s, o) in self.objects.iter() {
            let indexed = self
                .extent
                .get(&o.type_name)
                .map(|m| m.contains(s))
                .unwrap_or(false);
            if !indexed {
                problems.push(format!("extent[{}] misses {s}", o.type_name));
            }
        }
        for (ty, members) in self.extent.iter() {
            for m in members {
                match self.objects.get(m) {
                    None => problems.push(format!("extent[{ty}] lists dead {m}")),
                    Some(o) if &o.type_name != ty => {
                        problems.push(format!("extent[{ty}] lists {m} of type {}", o.type_name))
                    }
                    _ => {}
                }
            }
        }
        problems
    }

    // ------------------------------------------------------------------
    // Internals shared with persistence
    // ------------------------------------------------------------------

    pub(crate) fn objects_map(&self) -> impl Iterator<Item = (&Surrogate, &ObjectData)> + '_ {
        self.objects.iter()
    }

    pub(crate) fn classes_map(&self) -> &BTreeMap<String, ClassDef> {
        &self.classes
    }

    pub(crate) fn restore(
        catalog: Catalog,
        objects: Vec<ObjectData>,
        classes: Vec<(String, String, Vec<Surrogate>)>,
    ) -> CoreResult<Self> {
        let mut store = ObjectStore::new(catalog)?;
        let mut max = 0;
        for o in objects {
            max = max.max(o.surrogate.0);
            // Rebuild indexes.
            match &o.kind {
                ObjectKind::InheritanceRel { transmitter, .. } => {
                    store
                        .inheritors_of
                        .entry_or_default(*transmitter)
                        .push(o.surrogate);
                }
                ObjectKind::Relationship { participants } => {
                    for members in participants.values() {
                        for m in members {
                            store.participant_in.entry_or_default(*m).push(o.surrogate);
                        }
                    }
                }
                ObjectKind::Plain => {}
            }
            store.insert_object(o);
        }
        for (name, type_name, members) in classes {
            store.classes.insert(name, ClassDef { type_name, members });
        }
        store.gen = SurrogateGen::resume_after(max);
        Ok(store)
    }
}

/// Matches the [`ObjectStore::select`] fast-path shape: an equality between
/// a single-segment `self` path and a literal (either operand order).
fn eq_attr_literal(predicate: &Expr) -> Option<(&str, &Value)> {
    let Expr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = predicate
    else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Path(p), Expr::Lit(v)) | (Expr::Lit(v), Expr::Path(p))
            if p.root == PathRoot::SelfObject && p.segments.len() == 1 =>
        {
            Some((p.segments[0].as_str(), v))
        }
        _ => None,
    }
}

impl ObjectView for ObjectStore {
    fn view_attr(&self, obj: Surrogate, name: &str) -> CoreResult<Value> {
        self.attr(obj, name)
    }

    fn view_subclass(&self, obj: Surrogate, name: &str) -> CoreResult<Vec<Surrogate>> {
        self.subclass_members(obj, name)
    }

    fn view_participants(&self, obj: Surrogate, role: &str) -> CoreResult<Vec<Surrogate>> {
        let o = self.object(obj)?;
        // Inheritance-relationship objects expose their two ends as the
        // implicit roles `transmitter` and `inheritor`, so constraints on
        // inher-rel types can navigate both sides.
        if let ObjectKind::InheritanceRel {
            transmitter,
            inheritor,
            ..
        } = &o.kind
        {
            match role {
                "transmitter" => return Ok(vec![*transmitter]),
                "inheritor" => return Ok(vec![*inheritor]),
                _ => {
                    return Err(CoreError::EvalError(format!(
                        "no participant role `{role}` on {obj}"
                    )))
                }
            }
        }
        match o.participants(role) {
            Some(m) => Ok(m.to_vec()),
            None => {
                // Role declared but unset → empty.
                if let Ok(def) = self.catalog.rel_type(&o.type_name) {
                    if def.participants.iter().any(|p| p.name == role) {
                        return Ok(vec![]);
                    }
                }
                Err(CoreError::EvalError(format!(
                    "no participant role `{role}` on {obj}"
                )))
            }
        }
    }

    fn view_has_attr(&self, obj: Surrogate, name: &str) -> bool {
        let Some(o) = self.objects.get(&obj) else {
            return false;
        };
        if self.local_attr_domain(&o.type_name, name).is_some() {
            return true;
        }
        self.effective(&o.type_name)
            .map(|e| e.attr(name).is_some())
            .unwrap_or(false)
    }

    fn view_has_subclass(&self, obj: Surrogate, name: &str) -> bool {
        let Some(o) = self.objects.get(&obj) else {
            return false;
        };
        if self.local_subclass_spec(&o.type_name, name).is_some()
            || self.local_subrel_spec(&o.type_name, name).is_some()
        {
            return true;
        }
        self.effective(&o.type_name)
            .map(|e| e.subclass(name).is_some())
            .unwrap_or(false)
    }

    fn view_has_participant(&self, obj: Surrogate, name: &str) -> bool {
        let Some(o) = self.objects.get(&obj) else {
            return false;
        };
        match &o.kind {
            ObjectKind::Relationship { participants } => {
                participants.contains_key(name)
                    || self
                        .catalog
                        .rel_type(&o.type_name)
                        .map(|d| d.participants.iter().any(|p| p.name == name))
                        .unwrap_or(false)
            }
            ObjectKind::InheritanceRel { .. } => {
                matches!(name, "transmitter" | "inheritor")
            }
            ObjectKind::Plain => false,
        }
    }
}

#[cfg(test)]
#[path = "store_tests.rs"]
mod tests;
